"""Warm explanation workers: snapshot-based spin-up, checkout execution.

The serving story the last PRs built toward: a worker is one
:class:`~repro.core.service.ExplanationSession` — a compiled program
bound to a materialized instance with its
:class:`~repro.engine.provenance_index.ProvenanceIndex` already built —
kept **warm** so requests pay only the memoized serving path.

Spin-up is cheap by construction:

* all workers share one :class:`~repro.core.service.ExplanationService`,
  so the program/glossary compile runs once (workers 2..N hit the
  compile cache) and every session shares the bounded explanation LRU;
* each worker rehydrates its database from one ``repro-db/1`` snapshot
  string (:func:`repro.io.loads_database`) — the snapshot preserves the
  interned symbol ids and insertion sequences, so every worker holds a
  byte-identical columnar instance and serves byte-identical
  explanations;
* the provenance index is materialized eagerly during spin-up, not on
  the first unlucky request.

Execution uses a checkout queue: a request borrows a worker for its
lifetime and returns it, so one session never serves two requests'
recursions at once (its caches are thread-safe, but checkout keeps
per-worker telemetry and the pool's capacity story simple).  Per-worker
spin-up seconds land in ``serve.worker_warm_start`` — the number the
restart story is judged by.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Iterable, TypeVar

from ..apps.base import KGApplication
from ..core.service import ExplanationService, ExplanationSession
from ..datalog.atoms import Fact
from ..engine.database import Database
from ..engine.incremental import (
    UpdateOutcome,
    extensional_facts,
    resolve_delta,
)
from ..io import dumps_database, loads_database
from ..obs.metrics import ServiceMetrics
from .. import obs
from .protocol import UpdateRequest, error_payload, update_payload
from .routes import PARSERS, serve_session_request

T = TypeVar("T")


class WorkerPool:
    """A fixed set of warm sessions behind a checkout queue."""

    def __init__(
        self,
        application: KGApplication,
        snapshot: str,
        workers: int = 2,
        strategy: str = "planned",
        llm: object | None = None,
        metrics: ServiceMetrics | None = None,
        default_deadline_s: float = 10.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.application = application
        self.snapshot = snapshot
        self.strategy = strategy
        self.default_deadline_s = default_deadline_s
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.service = ExplanationService(
            llm=llm, metrics=self.metrics, max_workers=workers,
        )
        self.warm_start_s: list[float] = []
        self.boot_rows: list[dict] = []
        self._workers: list[ExplanationSession] = []
        self._available: "queue.SimpleQueue[ExplanationSession]" = (
            queue.SimpleQueue()
        )
        self._update_lock = threading.Lock()
        for _ in range(workers):
            self._spin_up_one()

    @classmethod
    def from_database(
        cls,
        application: KGApplication,
        database: Database,
        **kwargs: object,
    ) -> "WorkerPool":
        """Snapshot ``database`` once and spin the pool up from it —
        the normal construction path (the CLI and tests hold a live
        database, not a snapshot file)."""
        return cls(application, dumps_database(database), **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Spin-up
    # ------------------------------------------------------------------
    def _spin_up_one(self) -> None:
        index = len(self._workers)
        started = time.perf_counter()
        database = loads_database(self.snapshot)
        loaded = time.perf_counter()
        session = self.service.session(
            self.application, database, strategy=self.strategy
        )
        session.result.index  # materialize before taking traffic
        done = time.perf_counter()
        # Two phases behind the historical warm-start total: rehydrating
        # the repro-db/1 snapshot, then building the session (compile
        # cache hit or miss, chase, provenance index).
        snapshot_load_s = loaded - started
        boot_s = done - loaded
        elapsed = done - started
        self.warm_start_s.append(elapsed)
        self.boot_rows.append({
            "worker": index,
            "snapshot_load_s": round(snapshot_load_s, 6),
            "boot_s": round(boot_s, 6),
            "total_s": round(elapsed, 6),
        })
        self.metrics.observe("serve.worker_snapshot_load", snapshot_load_s)
        self.metrics.observe("serve.worker_boot", boot_s)
        self.metrics.observe("serve.worker_warm_start", elapsed)
        obs.get_profiler().record(
            f"serve.worker_boot[{index}]", wall_s=elapsed
        )
        self._workers.append(session)
        self._available.put(session)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, task: Callable[[ExplanationSession], T], timeout_s: float = 30.0
    ) -> T:
        """Check a worker out, run ``task`` against its session, return it.

        ``timeout_s`` bounds the checkout wait — the executor is sized to
        the pool, so a wait only happens when a caller bypasses the
        executor; it must not hang forever if it does.
        """
        try:
            worker = self._available.get(timeout=timeout_s)
        except queue.Empty:
            raise RuntimeError(
                f"no worker became available within {timeout_s:.1f}s "
                f"(pool size {len(self._workers)})"
            )
        try:
            return task(worker)
        finally:
            self._available.put(worker)

    def serve(
        self,
        route: str,
        body: bytes,
        record=None,
        timeout_s: float = 30.0,
    ) -> tuple[int, dict]:
        """Parse ``body`` for ``route`` and serve it: (status, payload).

        The backend-agnostic entry point the HTTP server calls — the
        process-backed pool overrides it to ship the same work over a
        pipe.  A :class:`~repro.serve.protocol.ProtocolError` from the
        parser propagates (the server answers 400); ``update`` targets
        the whole pool, every other route borrows one worker.
        """
        request = PARSERS[route](body)
        if isinstance(request, UpdateRequest):
            if record is not None:
                record.set(
                    adds=len(request.adds), retracts=len(request.retracts)
                )
            try:
                outcome = self.update(
                    request.adds, request.retracts, timeout_s=timeout_s
                )
            except ValueError as error:
                # A semantically invalid delta (e.g. retracting a
                # derived fact) is the client's mistake, not server
                # unhealth.
                self.metrics.incr("serve.bad_requests")
                return 400, error_payload("bad_request", str(error))
            if record is not None:
                record.set(mode=outcome.mode)
            return 200, update_payload(outcome)

        def task(session: ExplanationSession) -> tuple[int, dict]:
            return serve_session_request(
                session, request,
                default_deadline_s=self.default_deadline_s,
                metrics=self.metrics,
            )

        return self.run(task, timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def update(
        self,
        adds: Iterable[Fact] = (),
        retracts: Iterable[Fact] = (),
        timeout_s: float = 30.0,
    ) -> UpdateOutcome:
        """Apply one extensional delta to every warm worker.

        All workers are checked out first — an update never races a
        request against a half-updated pool, and in-flight requests
        finish against the pre-update instance before the delta lands.
        The update lock serializes concurrent updates (two updates each
        holding part of the pool would deadlock on the rest).  Every
        session applies the same delta incrementally, so the pool stays
        byte-identical across workers; the stored snapshot is refreshed
        to the post-update EDB for any future spin-up.
        """
        adds = tuple(adds)
        retracts = tuple(retracts)
        with self._update_lock:
            checked_out: list[ExplanationSession] = []
            try:
                for _ in range(len(self._workers)):
                    try:
                        checked_out.append(
                            self._available.get(timeout=timeout_s)
                        )
                    except queue.Empty:
                        raise RuntimeError(
                            f"could not drain the pool within "
                            f"{timeout_s:.1f}s for an update "
                            f"({len(checked_out)}/{len(self._workers)} "
                            "workers held)"
                        )
                # Validate once before touching any worker: a rejected
                # delta (e.g. retracting a derived fact) must leave the
                # pool untouched, not half-updated.
                resolve_delta(
                    checked_out[0].result.chase_result, adds, retracts
                )
                outcome: UpdateOutcome | None = None
                for session in checked_out:
                    outcome = session.update(adds=adds, retracts=retracts)
                assert outcome is not None  # pool is never empty
                self.snapshot = dumps_database(
                    Database(
                        extensional_facts(checked_out[0].result.chase_result)
                    )
                )
                self.metrics.incr("serve.updates")
                return outcome
            finally:
                for session in checked_out:
                    self._available.put(session)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def snapshot_stats(self) -> dict:
        return {
            "workers": len(self._workers),
            "strategy": self.strategy,
            "warm_start_s": [round(s, 6) for s in self.warm_start_s],
            "warm_start_max_s": round(max(self.warm_start_s), 6),
            "boot_rows": [dict(row) for row in self.boot_rows],
            "fingerprint": (
                self._workers[0].compiled.fingerprint
                if self._workers else None
            ),
        }

    def shutdown(self) -> None:
        self.service.shutdown()
