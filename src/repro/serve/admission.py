"""Request admission: a bounded queue plus breaker-driven shedding.

Overload policy in one sentence: **shed at the door, never in the
kitchen**.  Admission is checked before any work is queued, and a
rejected request costs one counter bump and a ``503`` with a
``Retry-After`` header — the two signals a well-behaved client needs.

Two independent reasons to shed:

* **queue saturation** — at most ``limit`` requests may be admitted
  (in flight or queued for a worker) at once.  The bound is what turns
  a latency problem into a fast failure instead of an unbounded queue
  that serves every request late;
* **open circuit** — the server's
  :class:`~repro.resilience.breaker.CircuitBreaker` is driven by the
  SLO evaluator (:meth:`~repro.obs.slo.SLOEvaluator.drive_breaker`):
  sustained p99/error-budget breaches open it, and while it is open
  every admission sheds, giving the workers a cooldown to drain.  The
  half-open probe trickle is what closes it again.

Counters land in the server's registry (``serve.shed_queue`` /
``serve.shed_breaker``), the live depth in the ``serve.queue_depth``
gauge, and each shed appends a flight event when a recorder is ambient.
"""

from __future__ import annotations

import threading

from .. import obs
from ..obs.metrics import ServiceMetrics
from ..resilience.breaker import OPEN, CircuitBreaker


class ShedRequest(Exception):
    """The request was not admitted; answer 503 with ``Retry-After``."""

    def __init__(self, reason: str, retry_after_s: float):
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Bounded admission with circuit-breaker shedding."""

    def __init__(
        self,
        limit: int,
        breaker: CircuitBreaker,
        metrics: ServiceMetrics,
        retry_after_s: float = 1.0,
    ):
        if limit < 0:
            raise ValueError(f"admission limit must be >= 0, got {limit}")
        self.limit = limit
        self.breaker = breaker
        self.metrics = metrics
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._admitted = 0

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def admit(self) -> "_AdmissionToken":
        """Admit one request or raise :class:`ShedRequest`.

        The breaker is consulted first — an open circuit sheds even an
        empty queue (the point of the cooldown is to stop *accepting*
        work, not merely to stop queuing it).
        """
        if self.breaker.state == OPEN:
            self.metrics.incr("serve.shed_breaker")
            obs.flight_event("shed", reason="breaker_open")
            # Retry after the breaker's *remaining* cooldown, not the
            # full one — a request shed 25s into a 30s cooldown should
            # come back in 5s, not 30.
            raise ShedRequest(
                "circuit open (sustained SLO breach); backing off",
                max(self.retry_after_s, self.breaker.cooldown_remaining_s()),
            )
        with self._lock:
            if self._admitted >= self.limit:
                self.metrics.incr("serve.shed_queue")
                obs.flight_event(
                    "shed", reason="queue_full", depth=self._admitted
                )
                raise ShedRequest(
                    f"admission queue full ({self._admitted}/{self.limit})",
                    self.retry_after_s,
                )
            self._admitted += 1
            self.metrics.set_gauge("serve.queue_depth", float(self._admitted))
        return _AdmissionToken(self)

    def _release(self) -> None:
        with self._lock:
            self._admitted -= 1
            self.metrics.set_gauge("serve.queue_depth", float(self._admitted))

    @property
    def depth(self) -> int:
        with self._lock:
            return self._admitted

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "depth": self.depth,
            "breaker": self.breaker.snapshot(),
        }


class _AdmissionToken:
    """Context manager releasing one admission slot on exit."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_AdmissionToken":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()
