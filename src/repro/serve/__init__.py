"""``repro.serve`` — the network-facing explanation service.

The serving layer the last four PRs built toward: a dependency-light
asyncio HTTP server (:mod:`repro.serve.server`) over a pool of warm
explanation workers (:mod:`repro.serve.workers`), with bounded
admission and SLO-driven shedding (:mod:`repro.serve.admission`) and a
canonical wire protocol whose response bodies are byte-identical to
in-process serialization (:mod:`repro.serve.protocol`).

Quick start::

    from repro.apps.company_control import build_application
    from repro.serve import ExplanationServer, ServeConfig

    app, scenario = build_application()
    server = ExplanationServer(
        app, database=scenario.database,
        config=ServeConfig(port=8080, workers=4),
    )
    server.run()          # blocks; SIGINT/SIGTERM shut down cleanly

or, from the shell, ``repro-explain serve --app company_control``.
See ``docs/SERVING.md`` for the full cookbook.
"""

from .admission import AdmissionController, ShedRequest
from .protocol import (
    SERVE_FORMAT,
    BatchRequest,
    ExplainRequest,
    ProtocolError,
    UpdateRequest,
    WhyNotRequest,
    batch_payload,
    encode_body,
    error_payload,
    explanation_payload,
    outcome_payload,
    parse_batch_request,
    parse_explain_request,
    parse_update_request,
    parse_whynot_request,
    update_payload,
    whynot_payload,
)
from .procpool import ProcessWorkerPool
from .routes import (
    PARSERS,
    serve_batch,
    serve_explain,
    serve_session_request,
    serve_whynot,
)
from .server import (
    DEFAULT_SLO_CONFIG,
    ExplanationServer,
    ServeConfig,
    ServerHandle,
)
from .workers import WorkerPool

__all__ = [
    "AdmissionController",
    "BatchRequest",
    "DEFAULT_SLO_CONFIG",
    "ExplainRequest",
    "ExplanationServer",
    "PARSERS",
    "ProcessWorkerPool",
    "ProtocolError",
    "SERVE_FORMAT",
    "ServeConfig",
    "ServerHandle",
    "ShedRequest",
    "UpdateRequest",
    "WhyNotRequest",
    "WorkerPool",
    "batch_payload",
    "encode_body",
    "error_payload",
    "explanation_payload",
    "outcome_payload",
    "parse_batch_request",
    "parse_explain_request",
    "parse_update_request",
    "parse_whynot_request",
    "serve_batch",
    "serve_explain",
    "serve_session_request",
    "serve_whynot",
    "update_payload",
    "whynot_payload",
]
