"""Process-backed serving workers: N processes, one warm session each.

The thread-backed :class:`~repro.serve.workers.WorkerPool` keeps every
session on one interpreter, so explanation work serializes behind the
GIL no matter how many workers the pool holds.  This module scales the
same serving contract across cores: each worker is a **separate
process** booted from the shared ``repro-db/1`` snapshot, answering the
same routes through the same :mod:`repro.serve.routes` functions — so
HTTP responses are byte-identical to the thread backend by construction
(there is exactly one serializer, imported on both sides of the pipe).

Design rules, in the order they bit:

* **spawn-safe, no pickled sessions** — the child receives only the
  application, the snapshot string and scalar config over the spawn
  boundary, then builds its own session exactly like a thread worker
  (``loads_database`` → compile → chase → provenance index).  Sessions,
  caches and indexes never cross a process boundary;
* **one pipe per worker, checkout dispatch** — a request borrows a
  worker handle (pipe + process) from the same kind of checkout queue
  the thread pool uses, writes one ``("serve", route, body)`` message,
  and reads one response.  Pipes are not thread-safe; checkout is the
  mutual exclusion;
* **telemetry ships with every response** — the child runs a private
  delta-enabled :class:`~repro.obs.metrics.ServiceMetrics` and a private
  :class:`~repro.obs.flight.FlightRecorder` (query ids prefixed
  ``w<i>-`` so they stay globally unique); each response carries the
  metrics recorded since the last drain plus the closed flight records,
  and the parent folds them into the server's registry/ring — `GET
  /metrics` and `GET /flight` aggregate the whole pool exactly as they
  do in-process;
* **updates broadcast under the drain lock** — ``POST /update`` drains
  every handle (no request can race a half-updated pool), sends the
  same delta to all children, and requires their answers to agree.
  Children validate against identical state, so a rejected delta
  rejects identically everywhere and no child applies anything.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import threading
import time
from typing import Iterable

from ..apps.base import KGApplication
from ..datalog.atoms import Fact
from ..obs.flight import FlightRecorder
from ..obs.metrics import ServiceMetrics
from .protocol import ProtocolError, parse_update_request
from .workers import WorkerPool

#: Worker-side flight ring: small, because records ship to the parent
#: after every response and the ring only buffers between drains.
_CHILD_FLIGHT_CAPACITY = 64


# ----------------------------------------------------------------------
# Child process
# ----------------------------------------------------------------------

def _worker_main(conn, spec: tuple) -> None:
    """The worker process body: boot one warm session, answer the pipe.

    ``spec`` is the picklable boot tuple shipped through the spawn
    boundary: (application, snapshot, strategy, worker index, default
    deadline, llm).  The child reuses :class:`WorkerPool` with a single
    worker, which buys boot timing, route serving and incremental
    updates without a second implementation.
    """
    from .. import obs  # local import keeps the spawn preamble minimal

    application, snapshot, strategy, index, default_deadline_s, llm = spec
    metrics = ServiceMetrics()
    metrics.enable_delta()
    flight = FlightRecorder(
        capacity=_CHILD_FLIGHT_CAPACITY, enabled=True,
        id_prefix=f"w{index}-",
    )
    try:
        with obs.observed(metrics=metrics, flight=flight):
            pool = WorkerPool(
                application, snapshot, workers=1, strategy=strategy,
                llm=llm, metrics=metrics,
                default_deadline_s=default_deadline_s,
            )
            conn.send((
                "ready",
                {
                    "warm_start_s": list(pool.warm_start_s),
                    "boot_rows": [dict(row) for row in pool.boot_rows],
                    "fingerprint": pool.snapshot_stats()["fingerprint"],
                    "metrics": metrics.drain_delta(),
                    "flights": flight.drain(),
                },
            ))
            _serve_loop(conn, pool, metrics, flight)
    except EOFError:
        pass  # parent went away; exit quietly
    except Exception as error:  # boot failed: tell the parent why
        try:
            conn.send(("boot_error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _serve_loop(conn, pool: WorkerPool, metrics, flight) -> None:
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message[0] == "stop":
            return
        assert message[0] == "serve", message
        _route, route, body = message
        meta: dict = {}
        try:
            with flight.record(f"serve.{route}") as record:
                meta["query_id"] = record.query_id
                status, payload = pool.serve(route, body, record=record)
                record.set(http_status=status)
            kind = "ok"
        except ProtocolError as error:
            kind, status, payload = "protocol_error", error.status, str(error)
        except Exception as error:
            kind, status, payload = (
                "error", 500, f"{type(error).__name__}: {error}"
            )
        if kind == "ok" and route == "update" and status == 200:
            # The parent refreshes its stored snapshot from worker 0 so
            # future boots start from the post-update EDB.
            meta["snapshot"] = pool.snapshot
        meta["metrics"] = metrics.drain_delta()
        meta["flights"] = flight.drain()
        conn.send((kind, status, payload, meta))


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------

class _WorkerHandle:
    """One worker process plus its parent-side pipe end."""

    __slots__ = ("index", "process", "conn")

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn

    def request(self, message: tuple, timeout_s: float) -> tuple:
        self.conn.send(message)
        if not self.conn.poll(timeout_s):
            raise RuntimeError(
                f"worker process {self.index} did not answer within "
                f"{timeout_s:.1f}s"
            )
        return self.conn.recv()


class ProcessWorkerPool:
    """N worker processes behind a checkout queue (the ``process``
    backend of ``repro-explain serve``).

    Drop-in for :class:`WorkerPool` where the server touches it:
    ``serve``, ``update``, ``snapshot_stats``, ``warm_start_s``,
    ``__len__``, ``shutdown``.  ``llm`` must be picklable (the bundled
    template/stub clients are); live network clients should stay on the
    thread backend or be reconstructed per process by a picklable
    factory object.
    """

    backend = "process"

    def __init__(
        self,
        application: KGApplication,
        snapshot: str,
        workers: int = 2,
        strategy: str = "planned",
        llm: object | None = None,
        metrics: ServiceMetrics | None = None,
        default_deadline_s: float = 10.0,
        flight: FlightRecorder | None = None,
        boot_timeout_s: float = 120.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.application = application
        self.snapshot = snapshot
        self.strategy = strategy
        self.default_deadline_s = default_deadline_s
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.flight = flight
        self.warm_start_s: list[float] = []
        self.boot_rows: list[dict] = []
        self._fingerprint: str | None = None
        self._handles: list[_WorkerHandle] = []
        self._available: "queue.SimpleQueue[_WorkerHandle]" = (
            queue.SimpleQueue()
        )
        self._update_lock = threading.Lock()
        context = multiprocessing.get_context("spawn")
        try:
            for index in range(workers):
                parent_conn, child_conn = context.Pipe()
                spec = (
                    application, snapshot, strategy, index,
                    default_deadline_s, llm,
                )
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    name=f"repro-serve-w{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()  # the child holds its own copy
                self._handles.append(
                    _WorkerHandle(index, process, parent_conn)
                )
            for handle in self._handles:
                self._await_ready(handle, boot_timeout_s)
                self._available.put(handle)
        except BaseException:
            self.shutdown()
            raise

    @classmethod
    def from_database(cls, application, database, **kwargs):
        from ..io import dumps_database

        return cls(application, dumps_database(database), **kwargs)

    def _await_ready(self, handle: _WorkerHandle, timeout_s: float) -> None:
        if not handle.conn.poll(timeout_s):
            raise RuntimeError(
                f"worker process {handle.index} did not become ready "
                f"within {timeout_s:.1f}s"
            )
        message = handle.conn.recv()
        if message[0] != "ready":
            raise RuntimeError(
                f"worker process {handle.index} failed to boot: "
                f"{message[1]}"
            )
        meta = message[1]
        self.warm_start_s.extend(meta["warm_start_s"])
        for row in meta["boot_rows"]:
            row = dict(row)
            row["worker"] = handle.index
            self.boot_rows.append(row)
        self._fingerprint = meta["fingerprint"]
        self._merge_meta(meta)

    # ------------------------------------------------------------------
    # Telemetry merge
    # ------------------------------------------------------------------
    def _merge_meta(self, meta: dict) -> None:
        payload = meta.get("metrics")
        if payload:
            self.metrics.merge_delta(payload)
        flights = meta.get("flights")
        if flights and self.flight is not None:
            self.flight.ingest(flights)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        route: str,
        body: bytes,
        record=None,
        timeout_s: float = 30.0,
    ) -> tuple[int, dict]:
        """Dispatch one request to a worker process: (status, payload).

        Mirrors :meth:`WorkerPool.serve` exactly — including raising
        :class:`ProtocolError` for malformed bodies — so the HTTP server
        is backend-blind.
        """
        if route == "update":
            parse_update_request(body)  # ProtocolError propagates
            return self._broadcast_update(body, record, timeout_s)
        try:
            handle = self._available.get(timeout=timeout_s)
        except queue.Empty:
            raise RuntimeError(
                f"no worker process became available within "
                f"{timeout_s:.1f}s (pool size {len(self._handles)})"
            )
        try:
            kind, status, payload, meta = handle.request(
                ("serve", route, body), timeout_s
            )
        finally:
            self._available.put(handle)
        self._merge_meta(meta)
        if record is not None:
            record.set(worker=handle.index)
            worker_qid = meta.get("query_id")
            if worker_qid:
                record.set(worker_query_id=worker_qid)
        if kind == "protocol_error":
            raise ProtocolError(payload, status=status)
        if kind == "error":
            raise RuntimeError(payload)
        return status, payload

    def _broadcast_update(
        self, body: bytes, record, timeout_s: float
    ) -> tuple[int, dict]:
        """Send one update body to every worker under the drain lock."""
        with self._update_lock:
            held: list[_WorkerHandle] = []
            try:
                for _ in range(len(self._handles)):
                    try:
                        held.append(self._available.get(timeout=timeout_s))
                    except queue.Empty:
                        raise RuntimeError(
                            f"could not drain the process pool within "
                            f"{timeout_s:.1f}s for an update "
                            f"({len(held)}/{len(self._handles)} workers held)"
                        )
                held.sort(key=lambda handle: handle.index)
                responses = []
                for handle in held:
                    kind, status, payload, meta = handle.request(
                        ("serve", "update", body), timeout_s
                    )
                    self._merge_meta(meta)
                    if kind == "error":
                        raise RuntimeError(
                            f"worker {handle.index} failed mid-update: "
                            f"{payload}"
                        )
                    responses.append((status, payload, meta))
                statuses = {status for status, _payload, _meta in responses}
                if len(statuses) != 1:
                    raise RuntimeError(
                        f"update diverged across workers "
                        f"(statuses {sorted(statuses)})"
                    )
                status, payload, meta = responses[0]
                if status == 200:
                    self.snapshot = meta["snapshot"]
                    if record is not None:
                        record.set(mode=payload.get("mode"))
                return status, payload
            finally:
                for handle in held:
                    self._available.put(handle)

    def update(
        self,
        adds: Iterable[Fact] = (),
        retracts: Iterable[Fact] = (),
        timeout_s: float = 30.0,
    ) -> dict:
        """Programmatic update: broadcast the delta, return the payload.

        Unlike the thread pool this returns the serialized
        ``update_payload`` dict (the child's :class:`UpdateOutcome`
        holds a full chase result and never crosses the pipe).  A
        rejected delta raises :class:`ValueError` like the thread pool.
        """
        body = json.dumps({
            "adds": [str(fact) for fact in adds],
            "retracts": [str(fact) for fact in retracts],
        }).encode("utf-8")
        status, payload = self.serve("update", body, timeout_s=timeout_s)
        if status != 200:
            raise ValueError(payload.get("message", "update rejected"))
        return payload

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._handles)

    def snapshot_stats(self) -> dict:
        return {
            "workers": len(self._handles),
            "strategy": self.strategy,
            "backend": self.backend,
            "warm_start_s": [round(s, 6) for s in self.warm_start_s],
            "warm_start_max_s": (
                round(max(self.warm_start_s), 6) if self.warm_start_s else 0.0
            ),
            "boot_rows": [dict(row) for row in self.boot_rows],
            "fingerprint": self._fingerprint,
        }

    def shutdown(self, timeout_s: float = 10.0) -> None:
        for handle in self._handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout_s
        for handle in self._handles:
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(remaining)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            handle.conn.close()
        self._handles = []
