"""The serve wire protocol: request schemas and canonical JSON bodies.

Everything that crosses the HTTP boundary is defined here, in one place,
so the server, the load harness, the smoke tests and the byte-parity
sweep all speak the same dialect:

* **requests** are parsed into frozen dataclasses
  (:class:`ExplainRequest`, :class:`BatchRequest`, :class:`WhyNotRequest`,
  :class:`UpdateRequest`)
  with typed validation errors (:class:`ProtocolError` carries the HTTP
  status the server should answer with);
* **responses** are canonical ``repro-serve/1`` payloads rendered by
  :func:`encode_body` — ``json.dumps`` with sorted keys and a trailing
  newline, so an HTTP-served explanation is *byte-identical* to the same
  payload serialized from a direct in-process
  :class:`~repro.core.service.ExplanationService` call.  The parity
  gates in ``benchmarks/bench_service_load.py`` and
  ``tests/test_serve.py`` compare those bytes, not parsed values.

The protocol is deliberately small: a query is the textual ground atom
(``"Control(A, C)"``) parsed by :func:`repro.io.parse_fact`, and an
explanation travels as its text plus the reasoning-path names (plus the
full audit record on request) — the same surfaces the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.explain import Explanation
from ..core.service import BatchOutcome
from ..core.whynot import WhyNotAnswer
from ..datalog.atoms import Fact
from ..datalog.errors import ParseError
from ..io import parse_fact

#: Version tag carried by every response body.
SERVE_FORMAT = "repro-serve/1"


class ProtocolError(ValueError):
    """A malformed request; ``status`` is the HTTP answer it deserves."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# Request schemas
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExplainRequest:
    """``POST /explain``: one query, optional deadline and audit flag."""

    query: Fact
    prefer_enhanced: bool = True
    deadline_s: float | None = None
    audit: bool = False


@dataclass(frozen=True)
class BatchRequest:
    """``POST /explain/batch``: many queries under one optional budget."""

    queries: tuple[Fact, ...]
    prefer_enhanced: bool = True
    deadline_s: float | None = None


@dataclass(frozen=True)
class WhyNotRequest:
    """``POST /whynot``: one absent fact to probe."""

    query: Fact


@dataclass(frozen=True)
class UpdateRequest:
    """``POST /update``: an extensional add/retract delta."""

    adds: tuple[Fact, ...] = ()
    retracts: tuple[Fact, ...] = ()


def _decode_json(body: bytes) -> dict:
    if not body:
        raise ProtocolError("empty request body (expected a JSON object)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _parse_query(value: Any, field: str = "query") -> Fact:
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"{field!r} must be a non-empty string")
    try:
        return parse_fact(value)
    except ParseError as error:
        raise ProtocolError(f"{field!r} is not a ground atom: {error}")


def _parse_flag(payload: dict, field: str, default: bool) -> bool:
    value = payload.get(field, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{field!r} must be a boolean")
    return value


def _parse_deadline(payload: dict) -> float | None:
    value = payload.get("deadline_s")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("'deadline_s' must be a number of seconds")
    if value < 0:
        raise ProtocolError("'deadline_s' must be non-negative")
    return float(value)


def parse_explain_request(body: bytes) -> ExplainRequest:
    payload = _decode_json(body)
    return ExplainRequest(
        query=_parse_query(payload.get("query")),
        prefer_enhanced=_parse_flag(payload, "prefer_enhanced", True),
        deadline_s=_parse_deadline(payload),
        audit=_parse_flag(payload, "audit", False),
    )


def parse_batch_request(body: bytes) -> BatchRequest:
    payload = _decode_json(body)
    raw = payload.get("queries")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'queries' must be a non-empty list of strings")
    queries = tuple(
        _parse_query(entry, field=f"queries[{index}]")
        for index, entry in enumerate(raw)
    )
    return BatchRequest(
        queries=queries,
        prefer_enhanced=_parse_flag(payload, "prefer_enhanced", True),
        deadline_s=_parse_deadline(payload),
    )


def parse_whynot_request(body: bytes) -> WhyNotRequest:
    payload = _decode_json(body)
    return WhyNotRequest(query=_parse_query(payload.get("query")))


def _parse_fact_list(payload: dict, field: str) -> tuple[Fact, ...]:
    raw = payload.get(field, [])
    if not isinstance(raw, list):
        raise ProtocolError(f"{field!r} must be a list of fact strings")
    return tuple(
        _parse_query(entry, field=f"{field}[{index}]")
        for index, entry in enumerate(raw)
    )


def parse_update_request(body: bytes) -> UpdateRequest:
    payload = _decode_json(body)
    request = UpdateRequest(
        adds=_parse_fact_list(payload, "adds"),
        retracts=_parse_fact_list(payload, "retracts"),
    )
    if not request.adds and not request.retracts:
        raise ProtocolError(
            "an update needs at least one of 'adds' or 'retracts'"
        )
    return request


# ----------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------

def encode_body(payload: dict) -> bytes:
    """The canonical byte rendering of a response payload.

    Sorted keys, no ASCII escaping, one trailing newline — the contract
    the byte-parity gates compare against.  Every response body the
    server emits goes through this function.
    """
    return (
        json.dumps(payload, ensure_ascii=False, sort_keys=True) + "\n"
    ).encode("utf-8")


def explanation_payload(
    explanation: Explanation, audit: bool = False
) -> dict:
    """The serialization of one served explanation."""
    payload: dict = {
        "format": SERVE_FORMAT,
        "query": str(explanation.query),
        "text": explanation.text,
        "paths": list(explanation.paths_used()),
        "status": "ok",
    }
    if audit:
        payload["audit"] = explanation.to_dict()
    return payload


def outcome_payload(outcome: BatchOutcome) -> dict:
    """One per-query entry of a batch response."""
    entry: dict = {"query": str(outcome.query), "status": outcome.status}
    if outcome.explanation is not None:
        entry["text"] = outcome.explanation.text
        entry["paths"] = list(outcome.explanation.paths_used())
    if outcome.error is not None:
        entry["error"] = outcome.error
    return entry


def batch_payload(
    outcomes: Sequence[BatchOutcome], partial: bool = False
) -> dict:
    """The serialization of a batch response (possibly partial)."""
    return {
        "format": SERVE_FORMAT,
        "status": "partial" if partial else "ok",
        "served": sum(1 for outcome in outcomes if outcome.ok),
        "missed": sum(
            1 for outcome in outcomes
            if outcome.status == BatchOutcome.STATUS_DEADLINE
        ),
        "results": [outcome_payload(outcome) for outcome in outcomes],
    }


def update_payload(outcome) -> dict:
    """The serialization of an applied update
    (an :class:`~repro.engine.incremental.UpdateOutcome`)."""
    return {
        "format": SERVE_FORMAT,
        "status": "ok",
        "mode": outcome.mode,
        "added": [str(fact) for fact in outcome.added],
        "retracted": [str(fact) for fact in outcome.retracted],
        "replayed": outcome.replayed,
        "recomputed": outcome.recomputed,
        "rederived": outcome.rederived,
    }


def whynot_payload(answer: WhyNotAnswer) -> dict:
    """The serialization of a why-not report."""
    return {
        "format": SERVE_FORMAT,
        "query": str(answer.query),
        "text": answer.text,
        "obstacles": [
            {
                "rule": obstacle.rule.label,
                "kind": obstacle.kind,
                "detail": obstacle.detail,
                "satisfied": obstacle.satisfied,
            }
            for obstacle in answer.obstacles
        ],
        "status": "ok",
    }


def error_payload(
    status: str, message: str, results: Sequence[dict] | None = None
) -> dict:
    """A non-200 body.  ``results`` carries any partial results computed
    before the failure (the deadline contract: partial service beats no
    service, even over HTTP)."""
    payload: dict = {
        "format": SERVE_FORMAT,
        "status": status,
        "error": message,
        "results": list(results or ()),
    }
    return payload
