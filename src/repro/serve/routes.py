"""Backend-agnostic request serving: parse + serve one session request.

The HTTP server, the thread-backed :class:`~repro.serve.workers.WorkerPool`
and the process-backed :class:`~repro.serve.procpool.ProcessWorkerPool`
all answer the same four routes with the same canonical-JSON payloads.
This module is the single definition of that behaviour: a route-name →
parser table plus one function per route turning a parsed request and a
warm :class:`~repro.core.service.ExplanationSession` into an HTTP
``(status, payload)`` pair.  Because worker processes import this module
too, thread- and process-backend responses are byte-identical by
construction — there is only one serializer to diverge from.
"""

from __future__ import annotations

from .. import obs
from ..core.service import BatchOutcome, ExplanationSession
from ..obs.metrics import ServiceMetrics
from ..resilience.policy import Deadline, DeadlineExceeded
from .protocol import (
    BatchRequest,
    ExplainRequest,
    WhyNotRequest,
    batch_payload,
    error_payload,
    explanation_payload,
    parse_batch_request,
    parse_explain_request,
    parse_update_request,
    parse_whynot_request,
    whynot_payload,
)

#: Route name → body parser.  ``update`` parses here like the others but
#: is served by the pool itself (it targets every worker, not one).
PARSERS = {
    "explain": parse_explain_request,
    "explain_batch": parse_batch_request,
    "whynot": parse_whynot_request,
    "update": parse_update_request,
}


def _deadline(requested: float | None, default_deadline_s: float) -> Deadline:
    budget = requested if requested is not None else default_deadline_s
    return Deadline(budget)


def serve_explain(
    session: ExplanationSession,
    request: ExplainRequest,
    *,
    default_deadline_s: float,
    metrics: ServiceMetrics,
) -> tuple[int, dict]:
    deadline = _deadline(request.deadline_s, default_deadline_s)
    try:
        deadline.check("explain request admission")
        explanation = session.explain(
            request.query, prefer_enhanced=request.prefer_enhanced
        )
        # Work that *finished* is returned even if the budget ran out
        # meanwhile — computed results are never discarded.
        return 200, explanation_payload(explanation, audit=request.audit)
    except DeadlineExceeded as error:
        metrics.incr("serve.deadline_exceeded")
        obs.flight_event("deadline_exceeded", where="explain")
        return 504, error_payload("deadline_exceeded", str(error))
    except KeyError as error:
        return 404, error_payload(
            "not_derived",
            f"{request.query} was not derived: {error}",
        )


def serve_batch(
    session: ExplanationSession,
    request: BatchRequest,
    *,
    default_deadline_s: float,
    metrics: ServiceMetrics,
) -> tuple[int, dict]:
    deadline = _deadline(request.deadline_s, default_deadline_s)
    outcomes = session.explain_batch(
        list(request.queries), deadline=deadline,
        prefer_enhanced=request.prefer_enhanced,
    )
    assert all(isinstance(o, BatchOutcome) for o in outcomes)
    missed = sum(
        1 for outcome in outcomes
        if outcome.status == BatchOutcome.STATUS_DEADLINE
    )
    if missed:
        metrics.incr("serve.deadline_exceeded")
        obs.flight_event(
            "deadline_exceeded", where="explain_batch", missed=missed
        )
        # 504 with a partial-result body: the served prefix rides along
        # so the client keeps every explanation the budget did cover.
        return 504, batch_payload(outcomes, partial=True)
    return 200, batch_payload(outcomes)


def serve_whynot(
    session: ExplanationSession,
    request: WhyNotRequest,
    *,
    default_deadline_s: float,
    metrics: ServiceMetrics,
) -> tuple[int, dict]:
    answer = session.why_not(request.query)
    return 200, whynot_payload(answer)


def serve_session_request(
    session: ExplanationSession,
    request: ExplainRequest | BatchRequest | WhyNotRequest,
    *,
    default_deadline_s: float,
    metrics: ServiceMetrics,
) -> tuple[int, dict]:
    """Serve one parsed session-scoped request (not ``update``)."""
    if isinstance(request, ExplainRequest):
        return serve_explain(
            session, request,
            default_deadline_s=default_deadline_s, metrics=metrics,
        )
    if isinstance(request, BatchRequest):
        return serve_batch(
            session, request,
            default_deadline_s=default_deadline_s, metrics=metrics,
        )
    assert isinstance(request, WhyNotRequest)
    return serve_whynot(
        session, request,
        default_deadline_s=default_deadline_s, metrics=metrics,
    )
