"""The network front end: an asyncio HTTP server over warm workers.

A dependency-light HTTP/1.1 server built directly on stdlib
:func:`asyncio.start_server` streams — no web framework, no ASGI
dependency — exposing the explanation service to network clients:

===========================  =========================================
``POST /explain``            one query -> explanation (or 504 partial)
``POST /explain/batch``      many queries under one deadline budget
``POST /whynot``             why a fact was *not* derived
``POST /update``             apply an extensional add/retract delta
``GET /healthz``             liveness + breaker/queue/worker view
``GET /metrics``             Prometheus text from the obs registry
``GET /flight/<qid>``        one flight record as ``repro-flight/1``
``GET /flight``              the whole flight ring buffer
===========================  =========================================

Request lifecycle: the event loop parses the request and consults the
:class:`~repro.serve.admission.AdmissionController` (bounded queue +
SLO-driven circuit breaker — sheds answer ``503`` with ``Retry-After``
before any work is queued); admitted requests run on a thread executor
sized to the :class:`~repro.serve.workers.WorkerPool`, each borrowing a
warm session (compiled program + provenance index, spun up from one
``repro-db/1`` snapshot).  Every request carries a
:class:`~repro.resilience.policy.Deadline`; a spent budget answers
``504`` with whatever partial results were computed (the
``explain_batch`` contract, now over HTTP).  Each request opens a
flight record, so ``GET /flight/<qid>`` resolves a slow exemplar to
its phase breakdown.

The server periodically evaluates its SLOs
(:meth:`~repro.obs.slo.SLOEvaluator.drive_breaker`): sustained p99 or
error-budget breaches open the breaker and shed load until the cooldown
lets a half-open probe through.
"""

from __future__ import annotations

import asyncio
import math
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .. import obs
from ..apps.base import KGApplication
from ..engine.database import Database
from ..io import dumps_database
from ..obs.flight import FlightRecorder
from ..obs.metrics import ServiceMetrics
from ..obs.slo import SLOEvaluator
from ..resilience.breaker import OPEN, CircuitBreaker
from .admission import AdmissionController, ShedRequest
from .procpool import ProcessWorkerPool
from .protocol import (
    SERVE_FORMAT,
    ProtocolError,
    encode_body,
    error_payload,
)
from .workers import WorkerPool

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on accepted request bodies (a batch of a few thousand
#: textual queries fits comfortably; anything larger is abuse).
MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_HEADERS = 64

#: Default SLOs driving the admission breaker: p99 request latency and
#: the internal-error budget.  Client-requested deadline misses (504)
#: are deliberately *not* in the error budget — a client asking for an
#: impossible budget is not server unhealth; sustained latency breaches
#: already cover the overload case.
DEFAULT_SLO_CONFIG: tuple[dict, ...] = (
    {
        "kind": "latency", "name": "request-p99",
        "histogram": "serve.request", "percentile": 99,
        "threshold_s": 2.5,
    },
    {
        "kind": "error_rate", "name": "error-budget",
        "errors": "serve.errors", "total": "serve.ok",
        "max_rate": 0.05, "min_events": 50,
    },
)


@dataclass
class ServeConfig:
    """Tunables of one server instance (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (tests, benchmarks)
    workers: int = 2
    backend: str = "thread"            # "thread" | "process"
    queue_limit: int = 64              # admitted (in-flight + queued) bound
    default_deadline_s: float = 10.0   # per-request budget when unspecified
    retry_after_s: float = 1.0         # hint on queue sheds
    strategy: str = "planned"
    slo_config: Sequence[dict] = field(
        default_factory=lambda: list(DEFAULT_SLO_CONFIG)
    )
    slo_interval_requests: int = 32    # drive the breaker every N requests
    slo_period_s: float = 1.0          # ... and at least this often
    breaker_window: int = 16
    breaker_min_calls: int = 8
    breaker_failure_threshold: float = 0.5
    breaker_cooldown_s: float = 2.0
    flight_capacity: int = 512


class ExplanationServer:
    """One application served over HTTP by a pool of warm workers."""

    def __init__(
        self,
        application: KGApplication,
        database: Database | None = None,
        snapshot: str | None = None,
        config: ServeConfig | None = None,
        llm: object | None = None,
    ):
        if snapshot is None:
            if database is None:
                raise ValueError("pass a database or a repro-db/1 snapshot")
            snapshot = dumps_database(database)
        self.application = application
        self.snapshot = snapshot
        self.config = config if config is not None else ServeConfig()
        self.llm = llm
        self.metrics = ServiceMetrics()
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity, enabled=True
        )
        self.breaker = CircuitBreaker(
            window=self.config.breaker_window,
            failure_threshold=self.config.breaker_failure_threshold,
            min_calls=self.config.breaker_min_calls,
            cooldown_s=self.config.breaker_cooldown_s,
            name="serve",
        )
        self.slo = SLOEvaluator.from_config(list(self.config.slo_config))
        self.admission = AdmissionController(
            self.config.queue_limit, self.breaker, self.metrics,
            retry_after_s=self.config.retry_after_s,
        )
        if self.config.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', "
                f"got {self.config.backend!r}"
            )
        self.pool: WorkerPool | ProcessWorkerPool | None = None
        self.host = self.config.host
        self.port = self.config.port
        self._executor: ThreadPoolExecutor | None = None
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._completed_since_slo = 0
        self._slo_task: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin workers up and bind the listening socket."""
        if self.pool is None:
            if self.config.backend == "process":
                self.pool = ProcessWorkerPool(
                    self.application, self.snapshot,
                    workers=self.config.workers,
                    strategy=self.config.strategy,
                    llm=self.llm, metrics=self.metrics,
                    default_deadline_s=self.config.default_deadline_s,
                    flight=self.flight,
                )
            else:
                self.pool = WorkerPool(
                    self.application, self.snapshot,
                    workers=self.config.workers,
                    strategy=self.config.strategy,
                    llm=self.llm, metrics=self.metrics,
                    default_deadline_s=self.config.default_deadline_s,
                )
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serve",
            )
            self.metrics.set_gauge("serve.workers", float(len(self.pool)))
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def _shutdown(self) -> None:
        if self._slo_task is not None:
            self._slo_task.cancel()
            self._slo_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Nudge idle keep-alive connections: closing the transport makes
        # their pending readline() return EOF, so the handler tasks exit
        # normally instead of being cancelled at loop teardown (which
        # would spray CancelledError noise from the streams machinery).
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None

    async def _run_async(
        self,
        on_ready: Callable[["ExplanationServer"], None] | None = None,
        install_signals: bool = False,
    ) -> None:
        """Serve until :meth:`request_stop` (or SIGINT/SIGTERM) fires."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        with obs.observed(metrics=self.metrics, flight=self.flight):
            await self.start()
            if install_signals:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    self._loop.add_signal_handler(
                        signum, self._stop_event.set
                    )
            self._slo_task = self._loop.create_task(self._slo_heartbeat())
            if on_ready is not None:
                on_ready(self)
            try:
                await self._stop_event.wait()
            finally:
                if install_signals:
                    for signum in (signal.SIGINT, signal.SIGTERM):
                        self._loop.remove_signal_handler(signum)
                await self._shutdown()

    def run(
        self,
        on_ready: Callable[["ExplanationServer"], None] | None = None,
    ) -> None:
        """Blocking entry point (the CLI): serve until SIGINT/SIGTERM."""
        asyncio.run(self._run_async(on_ready=on_ready, install_signals=True))

    def run_in_thread(self, timeout_s: float = 60.0) -> "ServerHandle":
        """Serve from a daemon thread; returns once the port is bound.

        The handle the tests and the load harness drive: ``handle.stop()``
        requests a clean shutdown and joins the thread.
        """
        ready = threading.Event()
        failures: list[BaseException] = []

        def _target() -> None:
            try:
                asyncio.run(
                    self._run_async(on_ready=lambda _server: ready.set())
                )
            except BaseException as error:  # surfaced to the caller
                failures.append(error)
                ready.set()

        thread = threading.Thread(
            target=_target, name="repro-serve-loop", daemon=True
        )
        thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError(f"server did not start within {timeout_s}s")
        if failures:
            raise failures[0]
        return ServerHandle(self, thread)

    def request_stop(self) -> None:
        """Thread-safe shutdown request."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _slo_heartbeat(self) -> None:
        """Periodic SLO evaluation so an idle server still recovers
        (request-count-driven evaluation alone would freeze an open
        breaker's window when traffic stops arriving)."""
        while True:
            await asyncio.sleep(self.config.slo_period_s)
            self.slo.drive_breaker(self.breaker, self.metrics)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except ProtocolError as error:
                    # The request never parsed far enough to route;
                    # answer and drop the connection (framing is gone).
                    self.metrics.incr("serve.bad_requests")
                    payload = encode_body(
                        error_payload("bad_request", str(error))
                    )
                    writer.write(
                        (
                            f"HTTP/1.1 {error.status} "
                            f"{_REASONS.get(error.status, 'Bad Request')}\r\n"
                            "Content-Type: application/json\r\n"
                            f"Content-Length: {len(payload)}\r\n"
                            "Connection: close\r\n\r\n"
                        ).encode("latin-1")
                        + payload
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                status, payload, content_type, extra = await self._dispatch(
                    method, target, body
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                )
                for name, value in extra:
                    head += f"{name}: {value}\r\n"
                head += "\r\n"
                writer.write(head.encode("latin-1") + payload)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError, ConnectionResetError,
            BrokenPipeError, asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Loop teardown raced the _shutdown() nudge; finish quietly
            # (re-raising would leave a cancelled task for the streams
            # machinery to complain about after the loop is gone).
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ProtocolError("malformed request line")
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ProtocolError("too many headers", status=400)
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte bound",
                status=413,
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, bytes, str, list[tuple[str, str]]]:
        path = target.split("?", 1)[0]
        try:
            if method == "GET":
                return self._dispatch_get(path)
            if method == "POST":
                return await self._dispatch_post(path, body)
            return self._json_response(
                405, error_payload("error", f"method {method} not allowed")
            )
        except ProtocolError as error:
            self.metrics.incr("serve.bad_requests")
            return self._json_response(
                error.status, error_payload("bad_request", str(error))
            )
        except Exception as error:  # never leak a traceback to the socket
            self.metrics.incr("serve.errors")
            return self._json_response(
                500,
                error_payload("error", f"{type(error).__name__}: {error}"),
            )

    @staticmethod
    def _json_response(
        status: int,
        payload: dict,
        extra: list[tuple[str, str]] | None = None,
    ) -> tuple[int, bytes, str, list[tuple[str, str]]]:
        return status, encode_body(payload), "application/json", extra or []

    def _dispatch_get(
        self, path: str
    ) -> tuple[int, bytes, str, list[tuple[str, str]]]:
        if path == "/healthz":
            return self._json_response(200, self.health_payload())
        if path == "/metrics":
            text = obs.render_prometheus(self.metrics)
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4", []
        if path == "/flight" or path == "/flight/":
            document = self.flight.document(
                meta={"app": self.application.name}
            )
            return self._json_response(200, document)
        if path.startswith("/flight/"):
            query_id = path[len("/flight/"):]
            record = self.flight.find(query_id)
            if record is None:
                return self._json_response(
                    404,
                    error_payload(
                        "not_found",
                        f"no flight record {query_id!r} retained",
                    ),
                )
            document = self.flight.document(
                meta={"app": self.application.name, "query_id": query_id}
            )
            document["records"] = [record.to_dict()]
            return self._json_response(200, document)
        return self._json_response(
            404, error_payload("not_found", f"no route {path!r}")
        )

    def health_payload(self) -> dict:
        """The ``/healthz`` body (also handy for tests and the CLI)."""
        breaker = self.breaker.snapshot()
        return {
            "format": SERVE_FORMAT,
            "status": "shedding" if breaker["state"] == OPEN else "ok",
            "app": self.application.name,
            "strategy": self.config.strategy,
            "backend": self.config.backend,
            "breaker_cooldown_remaining_s": breaker["cooldown_remaining_s"],
            "workers": len(self.pool) if self.pool is not None else 0,
            "warm_start": (
                self.pool.snapshot_stats() if self.pool is not None else None
            ),
            "admission": self.admission.snapshot(),
            "slo_healthy": bool(
                self.metrics.gauge_value("slo.healthy", 1.0)
            ),
        }

    # ------------------------------------------------------------------
    # POST serving
    # ------------------------------------------------------------------
    _ROUTES: dict[str, str] = {
        "/explain": "explain",
        "/explain/batch": "explain_batch",
        "/whynot": "whynot",
        "/update": "update",
    }

    async def _dispatch_post(
        self, path: str, body: bytes
    ) -> tuple[int, bytes, str, list[tuple[str, str]]]:
        route = self._ROUTES.get(path)
        if route is None:
            return self._json_response(
                404, error_payload("not_found", f"no route {path!r}")
            )
        self.metrics.incr("serve.requests")
        try:
            token = self.admission.admit()
        except ShedRequest as shed:
            retry_after = max(1, math.ceil(shed.retry_after_s))
            return self._json_response(
                503,
                error_payload("shed", shed.reason),
                extra=[("Retry-After", str(retry_after))],
            )
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            assert self._executor is not None  # started before serving
            status, payload, query_id = await loop.run_in_executor(
                self._executor, self._execute, route, body
            )
        finally:
            token.release()
            self._tick_slo()
        elapsed = time.perf_counter() - started
        exemplar = query_id or None
        self.metrics.observe("serve.request", elapsed, exemplar=exemplar)
        self.metrics.observe(f"serve.{route}", elapsed, exemplar=exemplar)
        if status < 500:
            self.metrics.incr("serve.ok")
        # The flight id travels as a header, not in the body: response
        # bodies stay byte-identical to in-process serialization (the
        # parity gate), and the exemplar still resolves via /flight/<qid>.
        extra = [("X-Query-Id", query_id)] if query_id else []
        return self._json_response(status, payload, extra=extra)

    def _tick_slo(self) -> None:
        self._completed_since_slo += 1
        if self._completed_since_slo >= self.config.slo_interval_requests:
            self._completed_since_slo = 0
            self.slo.drive_breaker(self.breaker, self.metrics)

    # ------------------------------------------------------------------
    # Executor-side serving (runs on repro-serve worker threads)
    # ------------------------------------------------------------------
    def _execute(self, route: str, body: bytes) -> tuple[int, dict, str]:
        """Serve one routed request; returns (status, payload, qid).

        Runs entirely on an executor thread so the event loop never
        blocks on explanation work; the flight record is opened here and
        is therefore the thread's current record for the whole serve —
        the session's own nested records and cache counters land on it.
        The pool is backend-blind: parsing and route semantics live in
        :meth:`WorkerPool.serve` (and its process-backed counterpart),
        shared with the worker processes so responses stay
        byte-identical across backends.  A
        :class:`~repro.serve.protocol.ProtocolError` propagates to
        ``_dispatch`` (400 + ``serve.bad_requests``).
        """
        assert self.pool is not None
        with self.flight.record(f"serve.{route}") as record:
            query_id = record.query_id or ""
            status, payload = self.pool.serve(route, body, record=record)
            record.set(http_status=status)
        return status, payload, query_id


class ServerHandle:
    """A running background server: address + clean stop."""

    def __init__(self, server: ExplanationServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout_s: float = 30.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout_s)
        if self.thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
