"""The integrated-ownership application (synthesized).

The paper's Figure 12 caption reads "Red edges represent both Owns and
IntOwns facts": alongside direct shareholdings, the Bank-of-Italy EKG
materializes *integrated ownership* — the total economic stake an
investor holds in a company through every ownership path, computed as the
sum over paths of the product of shares along each path (see the
companion company-ownership-graph literature the paper cites, its
reference [2]).  The rule set is not printed; we synthesize the standard
formulation, exercising the ``prod``-style arithmetic the paper's
Section 4.1 calls central ("the sum and prod operators")::

    io1: Own(x, y, s), x != y -> PathOwn(x, y, s)
    io2: PathOwn(x, z, s1), Own(z, y, s2), p = s1 * s2, p >= 0.01, x != y
         -> PathOwn(x, y, p)
    io3: PathOwn(x, y, p), t = sum(p) -> IntOwn(x, y, t)

``PathOwn`` carries one fact per ownership path (keyed by its product);
``io3`` sums the paths into the integrated stake.  The ``p >= 0.01``
truncation keeps the computation finite on cyclic shareholding structures
(vanishing stakes are immaterial), the standard practical cut-off.

Limitations of the set-based encoding (documented, tested): two distinct
paths with *exactly* equal products collapse into one ``PathOwn`` fact,
slightly understating the integrated stake in that corner case.
"""

from __future__ import annotations

from ..core.glossary import DomainGlossary
from ..datalog.atoms import Fact, fact
from ..datalog.parser import parse_program
from .base import KGApplication
from .company_control import own

RULES = """
io1: Own(x, y, s), x != y -> PathOwn(x, y, s).
io2: PathOwn(x, z, s1), Own(z, y, s2), p = s1 * s2, p >= 0.01, x != y
     -> PathOwn(x, y, p).
io3: PathOwn(x, y, p), t = sum(p) -> IntOwn(x, y, t).
"""


def build_glossary() -> DomainGlossary:
    glossary = DomainGlossary()
    glossary.define("Own", ["x", "y", "s"], "<x> owns <s> shares of <y>")
    glossary.define(
        "PathOwn", ["x", "y", "p"],
        "<x> holds an ownership path into <y> worth <p>",
    )
    glossary.define(
        "IntOwn", ["x", "y", "t"],
        "<x> holds an integrated stake of <t> in <y>",
    )
    return glossary


def build() -> KGApplication:
    """The synthesized integrated-ownership application."""
    program = parse_program(
        RULES, name="integrated_ownership", goal="IntOwn"
    )
    return KGApplication(
        name="integrated_ownership", program=program,
        glossary=build_glossary(),
    )


def int_own(owner: str, owned: str, total: float) -> Fact:
    """The intensional pattern, for explanation queries."""
    return fact("IntOwn", owner, owned, total)


__all__ = ["build", "build_glossary", "int_own", "own"]
