"""The paper's worked instances, reconstructed fact-for-fact.

Three artifacts from the paper are encoded here so that tests and
benchmarks can replay them exactly:

* :func:`figure8_instance` — the Example 4.3 / Figure 8 EDB from which
  ``Default(C)`` is derived via π = {α, β, γ, β, γ};
* :func:`figure12_instance` — the Section 5 representative scenario
  (Figures 12/13): capitals, two-channel debts and the 14M shock on A
  exactly as narrated; the ownership shares behind the derived control
  edges are *synthesized* (the published figure does not report them) so
  that ``Control(B, D)`` follows the Π = {σ1, σ3} story the text describes;
* :func:`figure15_instance` — the Irish Bank / Madrid Credit control case
  whose four explanation versions are printed in Figure 15.
"""

from __future__ import annotations

from ..datalog.atoms import Fact, fact
from ..engine.database import Database
from . import company_control, stress_test
from .base import ScenarioInstance


def figure8_instance() -> ScenarioInstance:
    """Example 4.3's EDB (Figure 8): shock on A, cascade to C.

    The derivation of ``Default(C)`` activates π = {α, β, γ, β, γ}, the
    second β aggregating the two B→C loans (2M and 9M).
    """
    application = stress_test.build_simple()
    facts = [
        stress_test.shock("A", 6),
        stress_test.has_capital("A", 5),
        stress_test.has_capital("B", 2),
        stress_test.has_capital("C", 10),
        stress_test.debt("A", "B", 7),
        stress_test.debt("B", "C", 2),
        stress_test.debt("B", "C", 9),
    ]
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=fact("Default", "C"),
        expected_steps=5,
        description="Figure 8: Default(C) via pi = {alpha, beta, gamma, beta, gamma}",
    )


def figure12_stress_instance() -> ScenarioInstance:
    """The Section 5 representative stress scenario (Figures 12/13).

    A 14M shock hits A (capital 5M); B holds 7M of A's long-term debt
    (capital 4M); C holds 9M of B's short-term debt (capital 8M); F is
    exposed to C for 2M long-term and to B for 8M short-term (capital 9M).
    The narrated explanation of ``Default(F)`` composes {Π, Γ, Γ} with the
    final step aggregating both channels.
    """
    application = stress_test.build()
    facts = [
        stress_test.has_capital("A", 5),
        stress_test.has_capital("B", 4),
        stress_test.has_capital("C", 8),
        stress_test.has_capital("F", 9),
        stress_test.shock("A", 14),
        stress_test.long_term_debt("A", "B", 7),
        stress_test.short_term_debt("B", "C", 9),
        stress_test.long_term_debt("C", "F", 2),
        stress_test.short_term_debt("B", "F", 8),
    ]
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=stress_test.default("F"),
        expected_steps=8,
        description="Figures 12/13: shock on A cascading to F over both channels",
    )


def figure12_control_instance() -> ScenarioInstance:
    """The control side of the representative scenario.

    The published figure's shares are unreadable, so we synthesize a
    minimal ownership set under which ``Control(B, D)`` is derived through
    one direct control plus one recursive aggregation — the Π = {σ1, σ3}
    story the paper reports for the query Q_e = {Control(B, D)}.
    """
    application = company_control.build()
    facts = [
        company_control.own("B", "E", 0.60),   # B directly controls E (σ1)
        company_control.own("E", "D", 0.55),   # E's stake hands D to B (σ3)
        company_control.own("A", "B", 0.35),   # minority stakes: no control
        company_control.own("C", "D", 0.15),
    ]
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=company_control.control("B", "D"),
        expected_steps=2,
        description="Figures 12/13 (synthesized shares): Control(B, D) via {sigma1, sigma3}",
    )


def figure15_instance() -> ScenarioInstance:
    """The Irish Bank case of Figure 15.

    Irish Bank owns 83% of Fondo Italiano and 54% of French PLC; those two
    hold 36% and 21% of Madrid Credit, so Irish Bank controls Madrid
    Credit with a combined 57% — a two-contributor σ3 aggregation.
    """
    application = company_control.build()
    facts = [
        company_control.own("IrishBank", "FondoItaliano", 0.83),
        company_control.own("IrishBank", "FrenchPLC", 0.54),
        company_control.own("FrenchPLC", "MadridCredit", 0.21),
        company_control.own("FondoItaliano", "MadridCredit", 0.36),
        company_control.company("IrishBank"),
        company_control.company("FondoItaliano"),
        company_control.company("FrenchPLC"),
        company_control.company("MadridCredit"),
    ]
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=company_control.control("IrishBank", "MadridCredit"),
        expected_steps=3,
        description="Figure 15: Irish Bank controls Madrid Credit (57% joint stake)",
    )


def all_paper_instances() -> tuple[ScenarioInstance, ...]:
    """Every reconstructed worked instance, for sweep-style tests."""
    return (
        figure8_instance(),
        figure12_stress_instance(),
        figure12_control_instance(),
        figure15_instance(),
    )
