"""Financial Knowledge Graph applications (paper, Section 5).

Rule-based KG applications of the Bank of Italy's EKG, reconstructed from
the paper (company control, stress tests) or synthesized from the public
regulatory definition (close links), together with synthetic workload
generators and the paper's worked instances.
"""

from . import (
    close_links,
    company_control,
    figures,
    generators,
    golden_powers,
    integrated_ownership,
    stress_test,
)
from .base import KGApplication, ScenarioInstance

__all__ = [
    "KGApplication",
    "ScenarioInstance",
    "close_links",
    "company_control",
    "figures",
    "generators",
    "golden_powers",
    "integrated_ownership",
    "stress_test",
]
