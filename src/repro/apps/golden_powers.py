"""The golden-powers application (synthesized).

The paper's EKG suite includes applications built for the Italian "golden
power" regime — screening foreign takeovers of strategic companies (see
the authors' companion work, reference [9] of the paper: "COVID-19 and
Company Knowledge Graphs: Assessing Golden Powers...").  No rule set is
printed, so we synthesize one on top of the official company-control
rules, exercising the two Vadalog extensions the printed applications do
not use: **negation** (exempted acquirers do not trigger alerts) and a
**negative constraint** (an already-vetoed acquirer must not reach
control of any strategic asset)::

    σ1: Own(x, y, s), s > 0.5 -> Control(x, y)
    σ2: Company(x) -> Control(x, x)
    σ3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y)
    γ1: Control(x, y), x != y, Foreign(x), Strategic(y), not Exempt(x)
        -> Alert(x, y)
    κ1: Alert(x, y), Vetoed(x) -> false

The program is stratified (Alert's stratum is above Control's through the
negated Exempt edge, which is extensional here) and demonstrates
constraint-violation reporting end to end.
"""

from __future__ import annotations

from ..core.glossary import DomainGlossary
from ..datalog.atoms import Fact, fact
from ..datalog.parser import parse_program
from .base import KGApplication
from .company_control import company, control, own

RULES = """
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
gamma1: Control(x, y), x != y, Foreign(x), Strategic(y), not Exempt(x)
        -> Alert(x, y).
kappa1: Alert(x, y), Vetoed(x) -> false.
"""


def build_glossary() -> DomainGlossary:
    glossary = DomainGlossary()
    glossary.define("Own", ["x", "y", "s"], "<x> owns <s> shares of <y>")
    glossary.define("Control", ["x", "y"], "<x> exercises control over <y>")
    glossary.define("Company", ["x"], "<x> is a business corporation")
    glossary.define("Foreign", ["x"], "<x> is a foreign investor")
    glossary.define(
        "Strategic", ["y"], "<y> is a strategic national asset"
    )
    glossary.define(
        "Exempt", ["x"], "<x> holds a golden-power exemption"
    )
    glossary.define(
        "Vetoed", ["x"], "<x> has been vetoed by the golden-power committee"
    )
    glossary.define(
        "Alert", ["x", "y"],
        "the takeover of <y> by <x> requires golden-power screening",
    )
    return glossary


def build() -> KGApplication:
    """The synthesized golden-powers screening application."""
    program = parse_program(RULES, name="golden_powers", goal="Alert")
    return KGApplication(
        name="golden_powers", program=program, glossary=build_glossary()
    )


# ----------------------------------------------------------------------
# Fact constructors
# ----------------------------------------------------------------------

def foreign(investor: str) -> Fact:
    return fact("Foreign", investor)


def strategic(asset: str) -> Fact:
    return fact("Strategic", asset)


def exempt(investor: str) -> Fact:
    return fact("Exempt", investor)


def vetoed(investor: str) -> Fact:
    return fact("Vetoed", investor)


def alert(investor: str, asset: str) -> Fact:
    """The intensional pattern, for explanation queries."""
    return fact("Alert", investor, asset)


__all__ = [
    "alert", "build", "build_glossary", "company", "control",
    "exempt", "foreign", "own", "strategic", "vetoed",
]
