"""The stress-test applications (paper, Example 4.3 and Section 5).

Two variants are provided:

* the **simplified** program of Example 4.3 (single debt channel),
  used throughout Section 4's worked examples::

      α: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f)
      β: Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e)
      γ: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c)

* the **full two-channel** program of Section 5 (σ4–σ7), distinguishing
  long-term and short-term exposures::

      σ4: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f)
      σ5: Default(d), LongTermDebts(d, c, v),  el = sum(v) -> Risk(c, el, "long")
      σ6: Default(d), ShortTermDebts(d, c, v), es = sum(v) -> Risk(c, es, "short")
      σ7: Risk(c, e, t), HasCapital(c, p2), l = sum(e), l > p2 -> Default(c)

Monetary values are in millions of euro throughout the examples.
"""

from __future__ import annotations

from ..core.glossary import DomainGlossary
from ..datalog.atoms import Fact, fact
from ..datalog.parser import parse_program
from .base import KGApplication

SIMPLE_RULES = """
alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
"""

FULL_RULES = """
sigma4: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
sigma5: Default(d), LongTermDebts(d, c, v), el = sum(v) -> Risk(c, el, "long").
sigma6: Default(d), ShortTermDebts(d, c, v), es = sum(v) -> Risk(c, es, "short").
sigma7: Risk(c, e, t), HasCapital(c, p2), l = sum(e), l > p2 -> Default(c).
"""


def build_simple_glossary() -> DomainGlossary:
    """The Figure 7 glossary for the simplified program."""
    glossary = DomainGlossary()
    glossary.define(
        "HasCapital", ["f", "p"],
        "<f> is a financial institution with capital of <p> million euros",
    )
    glossary.define(
        "Shock", ["f", "s"],
        "a shock amounting to <s> million euros affects <f>",
    )
    glossary.define("Default", ["f"], "<f> is in default")
    glossary.define(
        "Debts", ["d", "c", "v"],
        "<d> has an amount of <v> million euros of debts with <c>",
    )
    glossary.define(
        "Risk", ["c", "e"],
        "<c> is at risk of defaulting given its loan of <e> million euros "
        "of exposures to a defaulted debtor",
    )
    return glossary


def build_full_glossary() -> DomainGlossary:
    """The Figure 11 glossary for the two-channel program."""
    glossary = DomainGlossary()
    glossary.define(
        "HasCapital", ["f", "p"],
        "<f> is a company with capital of <p> million euros",
    )
    glossary.define(
        "Shock", ["f", "s"],
        "a shock amounting to <s> million euros hits <f>",
    )
    glossary.define("Default", ["f"], "<f> is in default")
    glossary.define(
        "LongTermDebts", ["d", "c", "v"],
        "<d> has an amount of <v> million euros of long-term debts with <c>",
    )
    glossary.define(
        "ShortTermDebts", ["d", "c", "v"],
        "<d> has an amount of <v> million euros of short-term debts with <c>",
    )
    glossary.define(
        "Risk", ["c", "e", "t"],
        "<c> is at risk of defaulting given its <t>-term loans of <e> "
        "million euros of exposures to a defaulted debtor",
    )
    return glossary


def build_simple() -> KGApplication:
    """The Example 4.3 single-channel stress test."""
    program = parse_program(SIMPLE_RULES, name="stress_simple", goal="Default")
    return KGApplication(
        name="stress_simple", program=program, glossary=build_simple_glossary()
    )


def build() -> KGApplication:
    """The Section 5 two-channel stress test."""
    program = parse_program(FULL_RULES, name="stress_test", goal="Default")
    return KGApplication(
        name="stress_test", program=program, glossary=build_full_glossary()
    )


# ----------------------------------------------------------------------
# Fact constructors
# ----------------------------------------------------------------------

def shock(entity: str, size: float) -> Fact:
    """An exogenous shock of ``size`` million euros hitting ``entity``."""
    return fact("Shock", entity, size)


def has_capital(entity: str, capital: float) -> Fact:
    return fact("HasCapital", entity, capital)


def debt(debtor: str, creditor: str, amount: float) -> Fact:
    """Single-channel debt (simplified program only)."""
    return fact("Debts", debtor, creditor, amount)


def long_term_debt(debtor: str, creditor: str, amount: float) -> Fact:
    return fact("LongTermDebts", debtor, creditor, amount)


def short_term_debt(debtor: str, creditor: str, amount: float) -> Fact:
    return fact("ShortTermDebts", debtor, creditor, amount)


def default(entity: str) -> Fact:
    """The intensional pattern, for explanation queries Q_e = {Default(x)}."""
    return fact("Default", entity)
