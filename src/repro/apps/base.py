"""Common scaffolding for the financial KG applications.

A :class:`KGApplication` bundles what the paper calls a "rule-based
Knowledge Graph application": the Vadalog program, the domain glossary
drawn from the internal data dictionary, and a human-readable name.  All
concrete applications (company control, stress tests, close links) are
instances of this class built by their modules' ``build()`` functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.glossary import DomainGlossary
from ..core.structural import StructuralAnalysis
from ..datalog.atoms import Fact
from ..datalog.program import Program
from ..engine.database import Database
from ..engine.reasoning import ReasoningResult, reason


@dataclass(frozen=True)
class KGApplication:
    """A deployed knowledge-graph application: program + glossary."""

    name: str
    program: Program
    glossary: DomainGlossary

    def __post_init__(self) -> None:
        self.glossary.validate_against(self.program)

    def analyse(self) -> StructuralAnalysis:
        """Run the once-per-application structural analysis."""
        return StructuralAnalysis(self.program)

    def compile(self, llm=None, enhanced_versions: int = 1):
        """The once-per-application compiled artifact (compile layer):
        structural analysis + templates (+ optional enhancement), ready
        to be bound to any number of reasoning results."""
        from ..core.compiler import compile_program

        return compile_program(
            self.program, self.glossary, llm=llm,
            enhanced_versions=enhanced_versions,
        )

    def reason(
        self,
        facts: Database | Iterable[Fact],
        strategy: str = "naive",
    ) -> ReasoningResult:
        """Materialize the application over an extensional database."""
        return reason(self.program, facts, strategy=strategy)

    def explainer(self, result: ReasoningResult, llm=None, **kwargs):
        """An :class:`~repro.core.explain.Explainer` wired to this
        application's glossary — the usual next step after :meth:`reason`.
        Pass ``compiled=`` (from :meth:`compile`) to skip recompiling the
        database-independent phase for every result."""
        from ..core.explain import Explainer

        return Explainer(result, self.glossary, llm=llm, **kwargs)


@dataclass(frozen=True)
class ScenarioInstance:
    """A ready-to-run workload: extensional data plus the fact to explain.

    ``expected_steps`` is the proof length the generator aimed for, in
    chase steps — the x-axis unit of the paper's Figures 17 and 18.
    """

    application: KGApplication
    database: Database
    target: Fact
    expected_steps: int | None = None
    description: str = ""

    def run(self) -> ReasoningResult:
        return self.application.reason(self.database)
