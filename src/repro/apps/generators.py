"""Synthetic financial-graph generators.

The paper evaluates on "artificial data generated automatically for the KG
applications" because individual shares and loan exposures are confidential
(Section 6).  This module provides the corresponding workload generators:

* **control chains** — ownership ladders producing control proofs of an
  exact chase-step length (recursion);
* **control aggregations** — a holding controlling a target jointly
  through several subsidiaries (multi-contributor sums);
* **stress cascades** — debt chains over the two-channel stress-test
  program, with optional dual-channel hops, again with exact proof lengths;
* **random graphs** — ownership and debt networks for integration and
  property tests.

Every generator is seeded and fully deterministic; the proof-length-targeted
builders (``control_with_steps`` / ``stress_with_steps``) drive the x axes
of the Figure 17 and Figure 18 reproductions.
"""

from __future__ import annotations

import random

from ..datalog.atoms import Fact, fact
from ..engine.database import Database
from . import company_control, stress_test
from .base import KGApplication, ScenarioInstance

#: Name pools for synthetic entities; combined with per-seed indices.
_NAME_STEMS = (
    "Banca", "Credit", "Fondo", "Holding", "Assicura", "Finanz",
    "Cassa", "Istituto", "Gruppo", "Capital",
)


def _entity_names(count: int, rng: random.Random) -> list[str]:
    """Distinct, realistic-looking entity names for one scenario."""
    stems = list(_NAME_STEMS)
    rng.shuffle(stems)
    names = []
    for index in range(count):
        stem = stems[index % len(stems)]
        names.append(f"{stem}{index + 1}")
    return names


# ----------------------------------------------------------------------
# Company control workloads
# ----------------------------------------------------------------------

def control_chain(
    length: int,
    seed: int = 0,
    include_companies: bool = False,
) -> ScenarioInstance:
    """An ownership ladder E0 → E1 → … → E_length with majority shares.

    The proof of ``Control(E0, E_length)`` takes exactly ``length`` chase
    steps: one σ1 application followed by ``length - 1`` σ3 recursions,
    each aggregating a single contributor.
    """
    if length < 1:
        raise ValueError("control chains need length >= 1")
    rng = random.Random(f"control-chain:{seed}:{length}")
    names = _entity_names(length + 1, rng)
    application = company_control.build()
    facts: list[Fact] = []
    for index in range(length):
        share = round(rng.uniform(0.51, 0.95), 2)
        facts.append(company_control.own(names[index], names[index + 1], share))
    if include_companies:
        facts.extend(company_control.company(name) for name in names)
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=company_control.control(names[0], names[-1]),
        expected_steps=length,
        description=f"control chain of {length} majority hops",
    )


def control_aggregation(
    branches: int = 2,
    seed: int = 0,
) -> ScenarioInstance:
    """A holding that controls a target only *jointly*: it fully controls
    ``branches`` subsidiaries whose stakes in the target sum above 50%.

    Proof of ``Control(H, T)``: ``branches`` σ1 steps plus one
    multi-contributor σ3 step.
    """
    if branches < 2:
        raise ValueError("joint control needs at least 2 branches")
    rng = random.Random(f"control-agg:{seed}:{branches}")
    names = _entity_names(branches + 2, rng)
    holding, target = names[0], names[-1]
    subsidiaries = names[1:-1]
    application = company_control.build()
    facts: list[Fact] = []
    # Individually minority, jointly majority, pairwise distinct stakes.
    for index, subsidiary in enumerate(subsidiaries):
        stake = round(0.51 / branches + 0.02 * (index + 1), 3)
        facts.append(company_control.own(holding, subsidiary, round(rng.uniform(0.6, 0.9), 2)))
        facts.append(company_control.own(subsidiary, target, stake))
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=company_control.control(holding, target),
        expected_steps=branches + 1,
        description=f"joint control through {branches} subsidiaries",
    )


def control_chain_with_aggregation(
    length: int,
    branches: int = 2,
    seed: int = 0,
) -> ScenarioInstance:
    """A control chain whose *final* hop is a joint (aggregated) takeover:
    recursion and aggregation combined — the paper's case study 5."""
    if length < 1:
        raise ValueError("need at least one chain hop before the aggregation")
    rng = random.Random(f"control-chain-agg:{seed}:{length}:{branches}")
    chain_names = _entity_names(length + 1, rng)
    extra = _entity_names(branches + 1, random.Random(f"agg-tail:{seed}"))
    subsidiaries = [f"Sub{name}" for name in extra[:branches]]
    target = f"Target{extra[-1]}"
    application = company_control.build()
    facts: list[Fact] = []
    for index in range(length):
        share = round(rng.uniform(0.51, 0.95), 2)
        facts.append(company_control.own(chain_names[index], chain_names[index + 1], share))
    for index, subsidiary in enumerate(subsidiaries):
        stake = round(0.51 / branches + 0.02 * (index + 1), 3)
        facts.append(company_control.own(chain_names[-1], subsidiary, round(rng.uniform(0.6, 0.9), 2)))
        facts.append(company_control.own(subsidiary, target, stake))
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=company_control.control(chain_names[0], target),
        expected_steps=length + branches + 1,
        description=(
            f"{length}-hop control chain ending in a joint takeover "
            f"through {branches} subsidiaries"
        ),
    )


def control_with_steps(steps: int, seed: int = 0) -> ScenarioInstance:
    """A company-control workload whose target proof takes exactly
    ``steps`` chase steps (Figures 17a / 18a x axis)."""
    return control_chain(steps, seed=seed)


def random_ownership_database(
    entities: int,
    edges: int,
    seed: int = 0,
    include_companies: bool = True,
) -> Database:
    """A random ownership network (shares uniform in (0.05, 0.95))."""
    rng = random.Random(f"ownership:{seed}:{entities}:{edges}")
    names = _entity_names(entities, rng)
    facts: list[Fact] = []
    seen: set[tuple[str, str]] = set()
    attempts = 0
    while len(seen) < edges and attempts < edges * 20:
        attempts += 1
        owner, owned = rng.sample(names, 2)
        if (owner, owned) in seen or (owned, owner) in seen:
            continue
        seen.add((owner, owned))
        facts.append(
            company_control.own(owner, owned, round(rng.uniform(0.05, 0.95), 2))
        )
    if include_companies:
        facts.extend(company_control.company(name) for name in names)
    return Database(facts)


# ----------------------------------------------------------------------
# Stress-test workloads (full two-channel program)
# ----------------------------------------------------------------------

def stress_cascade(
    hops: int,
    seed: int = 0,
    dual_final: bool = False,
    debts_per_hop: int = 1,
) -> ScenarioInstance:
    """A default cascade: a shocked entity drags ``hops`` creditors down.

    Each hop uses one exposure channel (alternating long/short); with
    ``dual_final`` the last creditor is exposed through *both* channels,
    adding one chase step and a multi-contributor σ7.  With
    ``debts_per_hop > 1`` the exposure of every hop is split over several
    loans, so the per-channel aggregations (σ5/σ6) combine multiple
    contributors without changing the proof length — the realistic shape
    that makes the stress application the syntactically heavier one.

    Proof lengths for the final default: ``1 + 2*hops`` chase steps, or
    ``2 + 2*hops`` with ``dual_final``.
    """
    if hops < 0:
        raise ValueError("a cascade needs hops >= 0")
    if dual_final and hops < 1:
        raise ValueError("dual_final requires at least one hop")
    if debts_per_hop < 1:
        raise ValueError("debts_per_hop must be >= 1")
    rng = random.Random(f"stress:{seed}:{hops}:{dual_final}:{debts_per_hop}")
    names = _entity_names(hops + 1, rng)
    application = stress_test.build()
    facts: list[Fact] = []
    capitals = [rng.randint(2, 9) for _ in names]
    for name, capital in zip(names, capitals):
        facts.append(stress_test.has_capital(name, capital))
    facts.append(stress_test.shock(names[0], capitals[0] + rng.randint(1, 6)))
    for index in range(hops):
        debtor, creditor = names[index], names[index + 1]
        creditor_capital = capitals[index + 1]
        last = index == hops - 1
        add_debt = (
            stress_test.long_term_debt if index % 2 == 0
            else stress_test.short_term_debt
        )
        if last and dual_final:
            # Two sub-majority exposures that jointly sink the creditor.
            long_part = creditor_capital  # alone: not enough (> required)
            short_part = rng.randint(1, 4)
            facts.append(stress_test.long_term_debt(debtor, creditor, long_part))
            facts.append(stress_test.short_term_debt(debtor, creditor, short_part))
        elif debts_per_hop == 1:
            amount = creditor_capital + rng.randint(1, 5)
            facts.append(add_debt(debtor, creditor, amount))
        else:
            total = creditor_capital + rng.randint(2, 6)
            base = total / debts_per_hop
            for loan in range(debts_per_hop):
                # Pairwise distinct loan amounts summing to the total.
                amount = round(base + (loan - (debts_per_hop - 1) / 2) * 0.5, 2)
                facts.append(add_debt(debtor, creditor, amount))
    expected = 1 + 2 * hops + (1 if dual_final else 0)
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=stress_test.default(names[-1]),
        expected_steps=expected,
        description=(
            f"default cascade over {hops} hops"
            + (" with a dual-channel final hop" if dual_final else "")
        ),
    )


def stress_with_steps(
    steps: int, seed: int = 0, debts_per_hop: int = 1
) -> ScenarioInstance:
    """A stress-test workload whose target proof takes exactly ``steps``
    chase steps (Figures 17b / 18b x axis).

    Odd lengths use plain cascades (1 + 2·hops); even lengths ≥ 4 add a
    dual-channel final hop.  ``steps == 2`` is not expressible for a
    ``Default`` target and raises ``ValueError``.
    """
    if steps < 1:
        raise ValueError("proofs have at least one step")
    if steps == 2:
        raise ValueError("a Default proof cannot take exactly 2 chase steps")
    if steps % 2 == 1:
        return stress_cascade(
            (steps - 1) // 2, seed=seed, debts_per_hop=debts_per_hop
        )
    return stress_cascade(
        (steps - 2) // 2, seed=seed, dual_final=True,
        debts_per_hop=debts_per_hop,
    )


def close_links_common_control(seed: int = 0) -> ScenarioInstance:
    """A close-links workload: two entities linked through a common
    controller (CRR case (c)), with the controls themselves derived.

    Proof of ``CloseLink(A, B)``: two σ1 steps plus one λ3 step.
    """
    from . import close_links  # local import: close_links builds on this module's siblings

    rng = random.Random(f"close-links:{seed}")
    names = _entity_names(3, rng)
    holding, first, second = names
    application = close_links.build()
    facts = [
        close_links.own(holding, first, round(rng.uniform(0.55, 0.9), 2)),
        close_links.own(holding, second, round(rng.uniform(0.55, 0.9), 2)),
    ]
    return ScenarioInstance(
        application=application,
        database=Database(facts),
        target=close_links.close_link(first, second),
        expected_steps=3,
        description="close link through a common controlling holding",
    )


def multi_channel_stress_program(channels: int):
    """A stress-test program with ``channels`` exposure channels.

    Generalizes σ4–σ7: one shock rule, one aggregation rule per channel,
    one cross-channel default rule.  The number of reasoning paths grows
    exponentially in the channel count (every non-empty channel subset is
    a joint story) — the blow-up the paper warns about in Section 4.2
    ("the number of templates can grow exponentially with the complexity
    of the Vadalog program").
    """
    from ..datalog.parser import parse_program

    if channels < 1:
        raise ValueError("need at least one exposure channel")
    lines = [
        "sigma4: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f)."
    ]
    for index in range(1, channels + 1):
        lines.append(
            f"chan{index}: Default(d), Debts{index}(d, c, v), "
            f'e = sum(v) -> Risk(c, e, "ch{index}").'
        )
    lines.append(
        "sigma7: Risk(c, e, t), HasCapital(c, p2), l = sum(e), l > p2 "
        "-> Default(c)."
    )
    return parse_program(
        "\n".join(lines), name=f"stress_{channels}ch", goal="Default"
    )


def random_debt_database(
    entities: int,
    edges: int,
    shocked: int = 1,
    seed: int = 0,
) -> Database:
    """A random two-channel debt network with ``shocked`` initial shocks."""
    rng = random.Random(f"debts:{seed}:{entities}:{edges}")
    names = _entity_names(entities, rng)
    facts: list[Fact] = []
    for name in names:
        facts.append(stress_test.has_capital(name, rng.randint(2, 12)))
    for _ in range(edges):
        debtor, creditor = rng.sample(names, 2)
        amount = rng.randint(1, 10)
        if rng.random() < 0.5:
            facts.append(stress_test.long_term_debt(debtor, creditor, amount))
        else:
            facts.append(stress_test.short_term_debt(debtor, creditor, amount))
    for name in rng.sample(names, min(shocked, len(names))):
        facts.append(stress_test.shock(name, rng.randint(5, 25)))
    return Database(facts)
