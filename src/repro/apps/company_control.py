"""The company control application (paper, Section 5).

Finds chains of control between companies under the official "one-share
one-vote" definition: x controls y if (i) x directly owns more than 50% of
y, or (ii) x controls a set of companies that jointly — summing the shares,
possibly together with x itself — own more than 50% of y.

Rules (σ1–σ3 of the paper)::

    σ1: Own(x, y, s), s > 0.5 -> Control(x, y)
    σ2: Company(x) -> Control(x, x)
    σ3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y)

Shares are fractions in (0, 1]; the glossary mirrors the paper's Figure 11.
"""

from __future__ import annotations

from ..core.glossary import DomainGlossary
from ..datalog.atoms import Fact, fact
from ..datalog.parser import parse_program
from .base import KGApplication

RULES = """
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
"""


def build_glossary() -> DomainGlossary:
    """The Figure 11 data-dictionary rows for this application."""
    glossary = DomainGlossary()
    glossary.define("Own", ["x", "y", "s"], "<x> owns <s> shares of <y>")
    glossary.define("Control", ["x", "y"], "<x> exercises control over <y>")
    glossary.define("Company", ["x"], "<x> is a business corporation")
    return glossary


def build() -> KGApplication:
    """The deployed company-control application."""
    program = parse_program(RULES, name="company_control", goal="Control")
    return KGApplication(
        name="company_control", program=program, glossary=build_glossary()
    )


# ----------------------------------------------------------------------
# Fact constructors (typed convenience API)
# ----------------------------------------------------------------------

def own(owner: str, owned: str, share: float) -> Fact:
    """``owner`` holds ``share`` (fraction of total) of ``owned``."""
    if not 0 < share <= 1:
        raise ValueError(f"share must be in (0, 1], got {share}")
    return fact("Own", owner, owned, share)


def company(name: str) -> Fact:
    return fact("Company", name)


def control(controller: str, controlled: str) -> Fact:
    """The intensional pattern, useful for explanation queries."""
    return fact("Control", controller, controlled)
