"""The close-links application.

The paper's expert study (Section 6.2) includes "the close link
application, another financial application from our domain [2]", whose rule
set is not printed — it belongs to the Bank of Italy's proprietary suite.
Following the reproduction guidance, we synthesize an equivalent program
from the public regulatory definition (CRR, Art. 4(1)(38): two entities are
*closely linked* when one holds at least 20% of the other's capital, when
one controls the other, or when both are controlled by the same third
party), layered on top of the official company-control rules so that the
program exhibits the recursion-plus-aggregation structure the study
scenarios require::

    σ1: Own(x, y, s), s > 0.5 -> Control(x, y)
    σ2: Company(x) -> Control(x, x)
    σ3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y)
    λ1: Own(x, y, s), s >= 0.2 -> CloseLink(x, y)
    λ2: Control(x, y), x != y -> CloseLink(x, y)
    λ3: Control(z, x), Control(z, y), x != y -> CloseLink(x, y)

Unlike the two printed applications, this program has *two* critical nodes
(``Control``, whose out-degree is 3, and the leaf ``CloseLink``), which
exercises the multi-critical-node branch of the structural analysis.
"""

from __future__ import annotations

from ..core.glossary import DomainGlossary
from ..datalog.atoms import Fact, fact
from ..datalog.parser import parse_program
from .base import KGApplication
from .company_control import company, control, own

RULES = """
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
sigma2: Company(x) -> Control(x, x).
sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
lambda1: Own(x, y, s), s >= 0.2 -> CloseLink(x, y).
lambda2: Control(x, y), x != y -> CloseLink(x, y).
lambda3: Control(z, x), Control(z, y), x != y -> CloseLink(x, y).
"""


def build_glossary() -> DomainGlossary:
    glossary = DomainGlossary()
    glossary.define("Own", ["x", "y", "s"], "<x> owns <s> shares of <y>")
    glossary.define("Control", ["x", "y"], "<x> exercises control over <y>")
    glossary.define("Company", ["x"], "<x> is a business corporation")
    glossary.define(
        "CloseLink", ["x", "y"],
        "<x> and <y> are closely linked counterparties",
    )
    return glossary


def build() -> KGApplication:
    """The synthesized close-links application."""
    program = parse_program(RULES, name="close_links", goal="CloseLink")
    return KGApplication(
        name="close_links", program=program, glossary=build_glossary()
    )


def close_link(first: str, second: str) -> Fact:
    """The intensional pattern, for explanation queries."""
    return fact("CloseLink", first, second)


__all__ = ["build", "build_glossary", "close_link", "company", "control", "own"]
