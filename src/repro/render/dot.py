"""DOT (Graphviz) export of the repository's graph structures.

Produces the pictures of the paper's Figures 3, 8, 9, 12 and 13 as DOT
source: dependency graphs (predicates with rule-labelled edges, dashed for
aggregation variants), chase graphs (facts with derivation edges) and plain
financial-network views of fact databases.  No Graphviz binary is needed —
the output is plain text for any renderer.
"""

from __future__ import annotations

from ..datalog.depgraph import DependencyGraph
from ..datalog.rules import pretty_label
from ..engine.chase_graph import ChaseGraph
from ..engine.database import Database


def _quote(value: str) -> str:
    escaped = value.replace('"', '\\"')
    return f'"{escaped}"'


def dependency_graph_dot(graph: DependencyGraph, name: str = "dependency") -> str:
    """Render D(Σ): round nodes for predicates, edges labelled by rule."""
    program = graph.program
    extensional = program.extensional_predicates()
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes):
        shape = "box" if node in extensional else "ellipse"
        lines.append(f"  {_quote(node)} [shape={shape}];")
    for edge in graph.edges:
        label = pretty_label(edge.rule_label)
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def chase_graph_dot(graph: ChaseGraph, name: str = "chase") -> str:
    """Render G(D, Σ): fact nodes, rule-labelled derivation edges
    (the paper's Figure 8)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    derivation = graph.result.derivation
    for fact in graph.nodes():
        shape = "ellipse" if fact in derivation else "box"
        lines.append(f"  {_quote(str(fact))} [shape={shape}];")
    for edge in graph.edges:
        label = pretty_label(edge.rule_label)
        lines.append(
            f"  {_quote(str(edge.source))} -> {_quote(str(edge.target))} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def financial_network_dot(database: Database, name: str = "network") -> str:
    """Render a fact database as a financial network (Figures 12/13 style):
    binary/ternary facts become labelled edges, unary and property facts
    become node annotations."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    annotations: dict[str, list[str]] = {}
    edges: list[str] = []
    for fact in database:
        strings = [
            str(term.value) for term in fact.terms
            if hasattr(term, "value") and isinstance(term.value, str)
        ]
        others = [
            str(term) for term in fact.terms
            if not (hasattr(term, "value") and isinstance(term.value, str))
        ]
        if len(strings) >= 2:
            label = fact.predicate
            if others:
                label += f" {', '.join(others)}"
            edges.append(
                f"  {_quote(strings[0])} -> {_quote(strings[1])} "
                f"[label={_quote(label)}];"
            )
        elif len(strings) == 1:
            note = fact.predicate
            if others:
                note += f"={', '.join(others)}"
            annotations.setdefault(strings[0], []).append(note)
    for entity in sorted(annotations):
        label = entity + "\\n" + "\\n".join(annotations[entity])
        lines.append(f"  {_quote(entity)} [shape=box, label={_quote(label)}];")
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)
