"""Plain-text tables and trees for examples and benchmark reports.

The benchmark harness prints the paper's tables (Figures 10, 14, 16) and
boxplot series (Figures 17, 18) through these helpers, so every experiment
regenerates a readable artifact directly in the terminal / log file.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxed, column-aligned table.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    | a | b |
    |---|---|
    | 1 | 2 |
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
        return "| " + " | ".join(padded) + " |"

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_percent(value: float) -> str:
    """0.9583 → '96%' (the paper's Figure 14 formatting)."""
    return f"{round(value * 100)}%"


def format_boxplot_series(
    label: str,
    points: Sequence[tuple[int, tuple[float, float, float]]],
    width: int = 40,
    maximum: float | None = None,
) -> str:
    """A textual boxplot series: one ``x: [q1 | median | q3]`` bar per
    point, scaled to ``width`` characters (Figures 17/18 in the log)."""
    if maximum is None:
        maximum = max((q3 for _, (_, _, q3) in points), default=1.0) or 1.0

    def position(value: float) -> int:
        return min(width - 1, max(0, int(round(value / maximum * (width - 1)))))

    lines = [f"{label} (scale: 0 .. {maximum:.3g})"]
    for x, (q1, median, q3) in points:
        bar = [" "] * width
        low, mid, high = position(q1), position(median), position(q3)
        for index in range(low, high + 1):
            bar[index] = "-"
        bar[low] = "["
        bar[high] = "]"
        bar[mid] = "|"
        lines.append(f"  {x:>4} {''.join(bar)} (median {median:.3f})")
    return "\n".join(lines)
