"""Presentation helpers: DOT export and terminal tables/boxplots."""

from .ascii import format_boxplot_series, format_percent, format_table
from .dot import chase_graph_dot, dependency_graph_dot, financial_network_dot

__all__ = [
    "chase_graph_dot",
    "dependency_graph_dot",
    "financial_network_dot",
    "format_boxplot_series",
    "format_percent",
    "format_table",
]
