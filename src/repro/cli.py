"""``repro-explain``: command-line front end to the explanation pipeline.

Examples::

    # Explain the Figure 8 default of C with enhanced templates
    repro-explain --demo figure8

    # Structural analysis (reasoning paths) of the built-in applications
    repro-explain --analyse company_control
    repro-explain --analyse stress_test --dot

    # Explain a fact of a generated workload
    repro-explain --demo chain --steps 6

    # Bring your own application (program + facts + glossary files)
    repro-explain --program rules.vada --data portfolio.facts \\
                  --glossary dictionary.json --query "Control(A, C)"
"""

from __future__ import annotations

import argparse
import sys

import os

from .apps import (
    close_links, company_control, figures, generators, golden_powers,
    integrated_ownership, stress_test,
)
from .apps.base import ScenarioInstance
from .core.compiler import CompilationError
from .core.service import ExplanationService
from .core.structural import StructuralAnalysis
from .io import (
    load_facts, load_glossary, load_program, parse_fact,
    save_compiled_program,
)
from .llm.simulated import SimulatedLLM
from .render.dot import chase_graph_dot, dependency_graph_dot

_APPLICATIONS = {
    "company_control": company_control.build,
    "stress_test": stress_test.build,
    "stress_simple": stress_test.build_simple,
    "close_links": close_links.build,
    "golden_powers": golden_powers.build,
    "integrated_ownership": integrated_ownership.build,
}

_DEMOS = {
    "figure8": lambda args: figures.figure8_instance(),
    "figure12": lambda args: figures.figure12_stress_instance(),
    "figure15": lambda args: figures.figure15_instance(),
    "chain": lambda args: generators.control_with_steps(args.steps, seed=args.seed),
    "cascade": lambda args: generators.stress_with_steps(args.steps, seed=args.seed),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description=(
            "Template-based explainable inference over financial knowledge "
            "graphs (EDBT 2025 reproduction)."
        ),
    )
    parser.add_argument(
        "--analyse", choices=sorted(_APPLICATIONS),
        help="print the structural analysis of a built-in application",
    )
    parser.add_argument(
        "--demo", choices=sorted(_DEMOS),
        help="run one of the built-in explanation demos",
    )
    parser.add_argument(
        "--steps", type=int, default=5,
        help="proof length for generated demos (default: 5)",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--deterministic", action="store_true",
        help="show the deterministic template text instead of the enhanced one",
    )
    parser.add_argument(
        "--dot", action="store_true",
        help="emit DOT graphs instead of prose",
    )
    parser.add_argument(
        "--program", metavar="FILE",
        help="load a rule file (.vada) instead of a built-in application",
    )
    parser.add_argument(
        "--data", metavar="FILE",
        help="fact file (.facts) for --program",
    )
    parser.add_argument(
        "--glossary", metavar="FILE",
        help="JSON data dictionary for --program",
    )
    parser.add_argument(
        "--goal", metavar="PREDICATE",
        help="goal predicate (overrides the program file's @goal pragma)",
    )
    parser.add_argument(
        "--query", metavar="FACT",
        help='explain one derived fact, e.g. \'Control(A, C)\'',
    )
    parser.add_argument(
        "--query-all", action="store_true",
        help="explain every derived goal fact",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="emit a Markdown business report instead of per-query prose",
    )
    parser.add_argument(
        "--why-not", metavar="FACT", dest="why_not",
        help="explain why a fact was NOT derived, e.g. 'Control(A, D)'",
    )
    parser.add_argument(
        "--compiled-cache", metavar="FILE", dest="compiled_cache",
        help=(
            "warm-start artifact: load the compiled program from FILE when "
            "present (skipping template enhancement), save it there after "
            "compiling otherwise"
        ),
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print service hit/miss/latency counters after the run",
    )
    return parser


def _make_service(args: argparse.Namespace) -> ExplanationService:
    llm = None if args.deterministic else SimulatedLLM(
        seed=args.seed, faithful=True
    )
    return ExplanationService(llm=llm)


def _warm_start(service: ExplanationService, args, program, glossary) -> bool:
    """Best-effort warm start from --compiled-cache (stale files recompile)."""
    path = args.compiled_cache
    if not path or not os.path.exists(path):
        return False
    try:
        service.warm_start(path, program, glossary)
        return True
    except (CompilationError, KeyError, ValueError) as error:
        print(f"ignoring stale compiled cache {path}: {error}", file=sys.stderr)
        return False


def _save_compiled(service: ExplanationService, args, compiled, loaded) -> None:
    """Persist after a cold compile; also overwrites a stale artifact so
    the cache heals instead of recompiling on every subsequent run."""
    if args.compiled_cache and not loaded:
        save_compiled_program(compiled, args.compiled_cache)


def _print_metrics(service: ExplanationService, args) -> None:
    if args.metrics:
        import json as _json

        print(_json.dumps(service.metrics_snapshot(), indent=2), file=sys.stderr)


def _run_files(args: argparse.Namespace) -> int:
    if not args.data or not args.glossary:
        print("--program requires --data and --glossary", file=sys.stderr)
        return 2
    program = load_program(args.program, goal=args.goal)
    database = load_facts(args.data)
    glossary = load_glossary(args.glossary)

    if args.dot and not (args.query or args.query_all):
        from .datalog.depgraph import DependencyGraph

        print(dependency_graph_dot(DependencyGraph(program), name=program.name))
        return 0

    service = _make_service(args)
    loaded = _warm_start(service, args, program, glossary)
    session = service.session(program, database, glossary=glossary)
    _save_compiled(service, args, session.compiled, loaded)
    result = session.result

    if args.why_not:
        answer = session.why_not(parse_fact(args.why_not))
        print(answer.text)
        _print_metrics(service, args)
        return 0

    if args.report:
        targets = [parse_fact(args.query)] if args.query else None
        report = session.report(
            targets=targets, prefer_enhanced=not args.deterministic
        )
        print(report.to_markdown())
        _print_metrics(service, args)
        return 0

    for violation in result.violations:
        print(f"! {violation}")

    if args.query:
        targets = [parse_fact(args.query)]
    elif args.query_all:
        targets = list(result.answers())
    else:
        print("Derived facts:")
        for fact in result.derived():
            print(f"  {fact}")
        print("\nUse --query 'Fact(...)' or --query-all for explanations.")
        return 0

    explanations = session.explain_batch(
        targets, prefer_enhanced=not args.deterministic
    )
    for target, explanation in zip(targets, explanations):
        print(f"Q_e = {{{target}}}  "
              f"(paths: {', '.join(explanation.paths_used())})")
        print(explanation.text)
        print()
    _print_metrics(service, args)
    return 0


def _run_analysis(name: str, dot: bool) -> None:
    from .datalog.analysis import termination_guarantee

    application = _APPLICATIONS[name]()
    analysis = StructuralAnalysis(application.program)
    if dot:
        print(dependency_graph_dot(analysis.graph, name=name))
        return
    print(application.program.describe())
    print()
    print(analysis.describe())
    print()
    print(f"termination: {termination_guarantee(application.program).value}")


def _run_demo(
    scenario: ScenarioInstance, args: argparse.Namespace
) -> None:
    deterministic = args.deterministic
    if args.dot:
        print(chase_graph_dot(scenario.run().graph))
        return
    llm = None if deterministic else SimulatedLLM(seed=0, faithful=True)
    service = ExplanationService(llm=llm)
    application = scenario.application
    loaded = _warm_start(
        service, args, application.program, application.glossary
    )
    session = service.session(application, scenario.database)
    _save_compiled(service, args, session.compiled, loaded)
    explanation = session.explain(
        scenario.target, prefer_enhanced=not deterministic
    )
    print(f"Scenario: {scenario.description}")
    print(f"Explanation query: Q_e = {{{scenario.target}}}")
    print(f"Reasoning paths used: {', '.join(explanation.paths_used())}")
    print()
    print(explanation.text)
    _print_metrics(service, args)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.program:
        return _run_files(args)
    if args.analyse:
        _run_analysis(args.analyse, args.dot)
        return 0
    if args.demo:
        scenario = _DEMOS[args.demo](args)
        _run_demo(scenario, args)
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
