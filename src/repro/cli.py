"""``repro-explain``: command-line front end to the explanation pipeline.

Examples::

    # Explain the Figure 8 default of C with enhanced templates
    repro-explain --demo figure8

    # Structural analysis (reasoning paths) of the built-in applications
    repro-explain --analyse company_control
    repro-explain --analyse stress_test --dot

    # Explain a fact of a generated workload
    repro-explain --demo chain --steps 6

    # Bring your own application (program + facts + glossary files)
    repro-explain --program rules.vada --data portfolio.facts \\
                  --glossary dictionary.json --query "Control(A, C)"

    # Observability: trace + stats document for a canonical workload
    repro-explain explain --app company_control --trace t.jsonl --stats s.json

    # The stats document (or Prometheus text) on stdout
    repro-explain stats --app stress_test
    repro-explain stats --app company_control --format prometheus

    # Flight records: per-query phase timings, kernel/cache counters
    repro-explain explain --app company_control --flight f.json

    # The heaviest rule kernels of a run (live or from a stats document)
    repro-explain obs top --app stress_test
    repro-explain obs top s.json --limit 5

    # Regression tooling: diff two stats documents, check threshold gates
    repro-explain obs diff baseline.json candidate.json --tolerance 15
    repro-explain obs diff --check BENCH_engine.json \\
                  --gates benchmarks/gates.json --suite engine
"""

from __future__ import annotations

import argparse
import json
import sys

import os

from . import obs
from .apps import (
    close_links, company_control, figures, generators, golden_powers,
    integrated_ownership, stress_test,
)
from .apps.base import ScenarioInstance
from .core.compiler import CompilationError
from .core.service import ExplanationService, ServiceMetrics
from .core.structural import StructuralAnalysis
from .io import (
    load_facts, load_glossary, load_program, parse_fact,
    save_compiled_program,
)
from .llm.simulated import SimulatedLLM
from .render.dot import chase_graph_dot, dependency_graph_dot
from .resilience.faults import FaultInjectingLLM, FaultSpecError

_APPLICATIONS = {
    "company_control": company_control.build,
    "stress_test": stress_test.build,
    "stress_simple": stress_test.build_simple,
    "close_links": close_links.build,
    "golden_powers": golden_powers.build,
    "integrated_ownership": integrated_ownership.build,
}

_DEMOS = {
    "figure8": lambda args: figures.figure8_instance(),
    "figure12": lambda args: figures.figure12_stress_instance(),
    "figure15": lambda args: figures.figure15_instance(),
    "chain": lambda args: generators.control_with_steps(args.steps, seed=args.seed),
    "cascade": lambda args: generators.stress_with_steps(args.steps, seed=args.seed),
}

#: Canonical ready-to-run workload per application, for the ``explain``
#: and ``stats`` subcommands (``--app NAME``).
_APP_SCENARIOS = {
    "company_control": lambda args: figures.figure15_instance(),
    "stress_test": lambda args: figures.figure12_stress_instance(),
    "figure8": lambda args: figures.figure8_instance(),
    "chain": lambda args: generators.control_with_steps(
        args.steps, seed=args.seed
    ),
    "cascade": lambda args: generators.stress_with_steps(
        args.steps, seed=args.seed
    ),
}

_SUBCOMMANDS = ("explain", "stats", "obs", "serve")


class _ObsRun:
    """One observed CLI run: tracer + registry + the dump destinations.

    The tracer is only enabled when an output asks for spans (``--trace``
    or a stats document), so plain runs keep the no-op fast path; the
    flight recorder and kernel profiler likewise stay on their disabled
    singles unless ``--flight`` / a profile consumer asks for them.
    """

    def __init__(
        self, trace_path=None, stats_path=None, force_tracing=False,
        meta=None, flight_path=None, force_flight=False, profile=False,
    ):
        self.trace_path = trace_path
        self.stats_path = stats_path
        self.flight_path = flight_path
        self.tracer = obs.Tracer(
            enabled=force_tracing or bool(trace_path or stats_path)
        )
        self.flight = obs.FlightRecorder(
            enabled=force_flight or bool(flight_path)
        )
        self.profiler = obs.KernelProfiler(enabled=profile)
        self.metrics = ServiceMetrics()
        self.chase_stats = None
        self.meta = dict(meta or {})

    def observed(self):
        return obs.observed(
            tracer=self.tracer, metrics=self.metrics,
            flight=self.flight, profile=self.profiler,
        )

    def capture(self, session) -> None:
        self.chase_stats = session.result.chase_result.stats

    def document(self) -> dict:
        return obs.stats_document(
            self.metrics, tracer=self.tracer, chase=self.chase_stats,
            meta=self.meta,
            profile=self.profiler if self.profiler.enabled else None,
        )

    def dump(self) -> None:
        if self.trace_path:
            obs.write_trace(self.tracer, self.trace_path)
        if self.stats_path:
            obs.write_stats(self.document(), self.stats_path)
        if self.flight_path:
            obs.write_flight(self.flight, self.flight_path, meta=self.meta)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description=(
            "Template-based explainable inference over financial knowledge "
            "graphs (EDBT 2025 reproduction)."
        ),
    )
    parser.add_argument(
        "--analyse", choices=sorted(_APPLICATIONS),
        help="print the structural analysis of a built-in application",
    )
    parser.add_argument(
        "--demo", choices=sorted(_DEMOS),
        help="run one of the built-in explanation demos",
    )
    parser.add_argument(
        "--steps", type=int, default=5,
        help="proof length for generated demos (default: 5)",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--deterministic", action="store_true",
        help="show the deterministic template text instead of the enhanced one",
    )
    parser.add_argument(
        "--dot", action="store_true",
        help="emit DOT graphs instead of prose",
    )
    parser.add_argument(
        "--program", metavar="FILE",
        help="load a rule file (.vada) instead of a built-in application",
    )
    parser.add_argument(
        "--data", metavar="FILE",
        help="fact file (.facts) for --program",
    )
    parser.add_argument(
        "--glossary", metavar="FILE",
        help="JSON data dictionary for --program",
    )
    parser.add_argument(
        "--goal", metavar="PREDICATE",
        help="goal predicate (overrides the program file's @goal pragma)",
    )
    parser.add_argument(
        "--query", metavar="FACT",
        help='explain one derived fact, e.g. \'Control(A, C)\'',
    )
    parser.add_argument(
        "--query-all", action="store_true",
        help="explain every derived goal fact",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="emit a Markdown business report instead of per-query prose",
    )
    parser.add_argument(
        "--why-not", metavar="FACT", dest="why_not",
        help="explain why a fact was NOT derived, e.g. 'Control(A, D)'",
    )
    parser.add_argument(
        "--compiled-cache", metavar="FILE", dest="compiled_cache",
        help=(
            "warm-start artifact: load the compiled program from FILE when "
            "present (skipping template enhancement), save it there after "
            "compiling otherwise"
        ),
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help=(
            "print service hit/miss/latency counters after the run "
            "(under --strategy planned this includes kernel telemetry: "
            "chase.kernels_compiled / chase.kernel_execs counters, "
            "chase.kernel_compile_s latency and the chase.symbols "
            "symbol-table gauge)"
        ),
    )
    _add_resilience_arguments(parser)
    _add_obs_arguments(parser)
    return parser


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-faults", metavar="SPEC", dest="inject_faults",
        help=(
            "wrap the enhancement LLM in a seeded fault injector; SPEC is "
            "comma-separated directives, e.g. 'transient:3', 'rate:0.3', "
            "'slow:5:0.2,drop:2' (see README, Fault tolerance)"
        ),
    )
    parser.add_argument(
        "--strategy", choices=("naive", "semi-naive", "planned", "parallel"),
        default="naive",
        help=(
            "chase evaluation strategy (semi-naive is faster on recursive "
            "workloads; planned compiles selectivity-ordered join plans "
            "into rule kernels over the interned columnar store and is "
            "fastest on join-heavy programs; parallel partitions the EDB "
            "by weakly-connected component and runs planned kernels per "
            "shard, falling back to single-shard when rules join across "
            "components; default: naive)"
        ),
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a JSON-lines span trace of the run to FILE",
    )
    parser.add_argument(
        "--stats", metavar="FILE", dest="stats_file",
        help="write the structured stats document (counters, latency "
             "percentiles, cache and chase telemetry) to FILE",
    )
    parser.add_argument(
        "--flight", metavar="FILE", dest="flight_file",
        help="enable the query flight recorder and write its ring buffer "
             "(per-query phase timings, kernel firings, cache hits, "
             "degradation events) to FILE as repro-flight/1 JSON",
    )


def _make_llm(args: argparse.Namespace):
    llm = None if args.deterministic else SimulatedLLM(
        seed=args.seed, faithful=True
    )
    spec = getattr(args, "inject_faults", None)
    if spec:
        # Fault injection exercises the enhancement path even under
        # --deterministic (which otherwise skips the LLM entirely): the
        # point of the flag is to drive retries/fallbacks, and the seeded
        # schedule keeps the run reproducible either way.
        inner = llm if llm is not None else SimulatedLLM(
            seed=args.seed, faithful=True
        )
        llm = FaultInjectingLLM(inner, spec, seed=args.seed)
    return llm


def _make_service(
    args: argparse.Namespace, run: _ObsRun | None = None
) -> ExplanationService:
    metrics = run.metrics if run is not None else None
    return ExplanationService(llm=_make_llm(args), metrics=metrics)


def _warm_start(service: ExplanationService, args, program, glossary) -> bool:
    """Best-effort warm start from --compiled-cache (stale files recompile)."""
    path = args.compiled_cache
    if not path or not os.path.exists(path):
        return False
    try:
        service.warm_start(path, program, glossary)
        return True
    except (CompilationError, KeyError, ValueError) as error:
        print(f"ignoring stale compiled cache {path}: {error}", file=sys.stderr)
        return False


def _save_compiled(service: ExplanationService, args, compiled, loaded) -> None:
    """Persist after a cold compile; also overwrites a stale artifact so
    the cache heals instead of recompiling on every subsequent run."""
    if args.compiled_cache and not loaded:
        save_compiled_program(compiled, args.compiled_cache)


def _print_metrics(service: ExplanationService, args, run=None) -> None:
    if args.metrics:
        import json as _json

        snapshot = service.metrics_snapshot()
        # Outside the observed block the ambient profiler is already
        # detached; splice the run's own profiler back in.
        if run is not None and run.profiler.enabled:
            snapshot["profile"] = run.profiler.snapshot()
        print(_json.dumps(snapshot, indent=2), file=sys.stderr)


def _run_files(args: argparse.Namespace, run: _ObsRun) -> int:
    if not args.data or not args.glossary:
        print("--program requires --data and --glossary", file=sys.stderr)
        return 2
    program = load_program(args.program, goal=args.goal)
    database = load_facts(args.data)
    glossary = load_glossary(args.glossary)

    if args.dot and not (args.query or args.query_all):
        from .datalog.depgraph import DependencyGraph

        print(dependency_graph_dot(DependencyGraph(program), name=program.name))
        return 0

    service = _make_service(args, run)
    loaded = _warm_start(service, args, program, glossary)
    session = service.session(
        program, database, glossary=glossary, strategy=args.strategy
    )
    run.capture(session)
    _save_compiled(service, args, session.compiled, loaded)
    result = session.result

    if args.why_not:
        answer = session.why_not(parse_fact(args.why_not))
        print(answer.text)
        _print_metrics(service, args)
        return 0

    if args.report:
        targets = [parse_fact(args.query)] if args.query else None
        report = session.report(
            targets=targets, prefer_enhanced=not args.deterministic
        )
        print(report.to_markdown())
        _print_metrics(service, args)
        return 0

    for violation in result.violations:
        print(f"! {violation}")

    if args.query:
        targets = [parse_fact(args.query)]
    elif args.query_all:
        targets = list(result.answers())
    else:
        print("Derived facts:")
        for fact in result.derived():
            print(f"  {fact}")
        print("\nUse --query 'Fact(...)' or --query-all for explanations.")
        return 0

    explanations = session.explain_batch(
        targets, prefer_enhanced=not args.deterministic
    )
    for target, explanation in zip(targets, explanations):
        print(f"Q_e = {{{target}}}  "
              f"(paths: {', '.join(explanation.paths_used())})")
        print(explanation.text)
        print()
    _print_metrics(service, args)
    return 0


def _run_analysis(name: str, dot: bool) -> None:
    from .datalog.analysis import termination_guarantee

    application = _APPLICATIONS[name]()
    analysis = StructuralAnalysis(application.program)
    if dot:
        print(dependency_graph_dot(analysis.graph, name=name))
        return
    print(application.program.describe())
    print()
    print(analysis.describe())
    print()
    print(f"termination: {termination_guarantee(application.program).value}")


def _run_demo(
    scenario: ScenarioInstance, args: argparse.Namespace, run: _ObsRun
) -> None:
    deterministic = args.deterministic
    if args.dot:
        print(chase_graph_dot(scenario.run().graph))
        return
    service = _make_service(args, run)
    application = scenario.application
    loaded = _warm_start(
        service, args, application.program, application.glossary
    )
    session = service.session(
        application, scenario.database, strategy=args.strategy
    )
    run.capture(session)
    _save_compiled(service, args, session.compiled, loaded)
    explanation = session.explain(
        scenario.target, prefer_enhanced=not deterministic
    )
    print(f"Scenario: {scenario.description}")
    print(f"Explanation query: Q_e = {{{scenario.target}}}")
    print(f"Reasoning paths used: {', '.join(explanation.paths_used())}")
    print()
    print(explanation.text)
    _print_metrics(service, args)


# ----------------------------------------------------------------------
# Subcommands (observability-first interface)
# ----------------------------------------------------------------------

def _build_subcommand_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description="Observability subcommands of the explanation service.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_workload_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--app", required=True, choices=sorted(_APP_SCENARIOS),
            help="canonical workload to run",
        )
        sub.add_argument(
            "--steps", type=int, default=5,
            help="proof length for generated workloads (chain/cascade)",
        )
        sub.add_argument("--seed", type=int, default=0, help="generator seed")
        sub.add_argument(
            "--deterministic", action="store_true",
            help="skip template enhancement (no simulated LLM)",
        )
        _add_resilience_arguments(sub)

    explain = subparsers.add_parser(
        "explain",
        help="run a canonical workload and explain its derived facts",
    )
    add_workload_arguments(explain)
    explain.add_argument(
        "--query", metavar="FACT", help="explain one derived fact only"
    )
    explain.add_argument(
        "--query-all", action="store_true",
        help="explain every derived goal fact (default: the scenario target)",
    )
    explain.add_argument(
        "--metrics", action="store_true",
        help="print service hit/miss/latency counters after the run",
    )
    explain.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help=(
            "serve the batch N times (first pass generates, re-runs hit "
            "the memoized serving path; pair with --metrics/--stats to "
            "inspect the per-region cache hit rates)"
        ),
    )
    _add_obs_arguments(explain)

    stats = subparsers.add_parser(
        "stats",
        help="run a canonical workload and print its stats document",
    )
    add_workload_arguments(stats)
    stats.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="stats rendering (default: json stats document)",
    )
    stats.add_argument(
        "--output", metavar="FILE",
        help="write the rendering to FILE instead of stdout",
    )
    _add_obs_arguments(stats)

    serve = subparsers.add_parser(
        "serve",
        help="serve a canonical workload's explanations over HTTP "
             "(POST /explain, /explain/batch, /whynot; GET /healthz, "
             "/metrics, /flight/<qid>)",
    )
    add_workload_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve.add_argument(
        "--port", type=int, default=8000,
        help="listening port; 0 picks an ephemeral one (default: %(default)s)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="warm worker sessions / executor threads (default: %(default)s)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker backend: 'thread' keeps all sessions in-process "
             "(GIL-bound); 'process' boots one worker process per "
             "worker from the shared snapshot and scales across cores "
             "(default: %(default)s)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, dest="queue_limit",
        help="bound on admitted (in-flight) requests; beyond it requests "
             "shed with 503 + Retry-After (default: %(default)s)",
    )
    serve.add_argument(
        "--deadline", type=float, default=10.0, dest="deadline_s",
        help="default per-request budget in seconds when the request "
             "carries no deadline_s (default: %(default)s)",
    )
    # Serving is the production path: default to the compiled-kernel
    # strategy (like 'obs top') instead of the naive reference chase.
    serve.set_defaults(strategy="planned")
    return parser


def _run_workload(args: argparse.Namespace, run: _ObsRun):
    """Run one canonical ``--app`` workload under the observed context."""
    scenario = _APP_SCENARIOS[args.app](args)
    with run.observed():
        service = _make_service(args, run)
        session = service.session(
            scenario.application, scenario.database, strategy=args.strategy
        )
        run.capture(session)
        if getattr(args, "query", None):
            targets = [parse_fact(args.query)]
        elif getattr(args, "query_all", False) or args.command == "stats":
            targets = list(session.answers())
        else:
            targets = [scenario.target]
        explanations = session.explain_batch(
            targets, prefer_enhanced=not args.deterministic
        )
        # --repeat N re-serves the same batch: the extra passes land on
        # the memoized serving path, and the region hit rates show up in
        # --metrics / --stats.
        for _ in range(getattr(args, "repeat", 1) - 1):
            explanations = session.explain_batch(
                targets, prefer_enhanced=not args.deterministic
            )
    return scenario, service, targets, explanations


def _cmd_explain(args: argparse.Namespace) -> int:
    run = _ObsRun(
        trace_path=args.trace, stats_path=args.stats_file,
        flight_path=args.flight_file,
        profile=args.metrics or bool(args.stats_file),
        meta={"command": "explain", "app": args.app},
    )
    scenario, service, targets, explanations = _run_workload(args, run)
    print(f"Scenario: {scenario.description}")
    for target, explanation in zip(targets, explanations):
        print(f"Q_e = {{{target}}}  "
              f"(paths: {', '.join(explanation.paths_used())})")
        print(explanation.text)
        print()
    _print_metrics(service, args, run)
    run.dump()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    run = _ObsRun(
        trace_path=args.trace, stats_path=args.stats_file,
        flight_path=args.flight_file, force_tracing=True, profile=True,
        meta={"command": "stats", "app": args.app},
    )
    _run_workload(args, run)
    run.dump()
    if args.format == "prometheus":
        rendering = obs.render_prometheus(run.metrics)
    else:
        rendering = json.dumps(run.document(), indent=2, default=str) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendering)
    else:
        sys.stdout.write(rendering)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ExplanationServer, ServeConfig

    scenario = _APP_SCENARIOS[args.app](args)
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        backend=args.backend,
        queue_limit=args.queue_limit, default_deadline_s=args.deadline_s,
        strategy=args.strategy,
    )
    server = ExplanationServer(
        scenario.application, database=scenario.database,
        config=config, llm=_make_llm(args),
    )

    def announce(ready: ExplanationServer) -> None:
        warm = max(ready.pool.warm_start_s) if ready.pool else 0.0
        print(
            f"serving {args.app} on http://{ready.host}:{ready.port} "
            f"({config.workers} {config.backend} workers, "
            f"strategy={args.strategy}, "
            f"warm-start {warm:.3f}s; Ctrl-C or SIGTERM to stop)",
            flush=True,
        )

    # run() installs SIGINT/SIGTERM handlers: either signal resolves the
    # stop event, the pool and sockets drain, and we fall through to a
    # clean exit 0 (the CI smoke asserts no orphaned process).
    server.run(on_ready=announce)
    print("server stopped", flush=True)
    return 0


def _build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain obs",
        description=(
            "Observability tooling: kernel-profile views and stats-document "
            "regression checks."
        ),
    )
    subparsers = parser.add_subparsers(dest="obs_command", required=True)

    top = subparsers.add_parser(
        "top",
        help="show the heaviest rule kernels (from a stats document or by "
             "running a workload live)",
    )
    top.add_argument(
        "stats_file", nargs="?", metavar="STATS.json",
        help="a repro-stats/1 document with a profile section "
             "(omit to run --app live)",
    )
    top.add_argument(
        "--app", choices=sorted(_APP_SCENARIOS),
        help="run this canonical workload with the kernel profiler on",
    )
    top.add_argument(
        "--steps", type=int, default=5,
        help="proof length for generated workloads (chain/cascade)",
    )
    top.add_argument("--seed", type=int, default=0, help="generator seed")
    top.add_argument(
        "--deterministic", action="store_true",
        help="skip template enhancement (no simulated LLM)",
    )
    top.add_argument(
        "--limit", type=int, default=10, help="rows to show (default: 10)"
    )
    top.add_argument(
        "--key", default="wall_s",
        choices=("wall_s", "execs", "probes", "rows_scanned",
                 "rows_emitted", "pruned"),
        help="ranking column (default: wall_s)",
    )
    _add_resilience_arguments(top)
    # Kernels only exist under the planned strategy; a live profile run
    # defaults to it instead of naive.
    top.set_defaults(strategy="planned", command="obs")

    diff = subparsers.add_parser(
        "diff",
        help="compare two stats documents with tolerance rules, or check "
             "one against declarative threshold gates",
    )
    diff.add_argument(
        "documents", nargs="*", metavar="DOC.json",
        help="BASELINE.json CANDIDATE.json (diff mode)",
    )
    diff.add_argument(
        "--check", metavar="DOC.json",
        help="gate mode: check this document against --gates instead of "
             "diffing two documents",
    )
    diff.add_argument(
        "--gates", metavar="GATES.json",
        help="repro-gates/1 threshold configuration (gate mode)",
    )
    diff.add_argument(
        "--suite", metavar="NAME",
        help="gate suite to evaluate (default: all suites)",
    )
    diff.add_argument(
        "--tolerance", type=float, default=10.0, metavar="PCT",
        help="allowed regression on latency-shaped leaves before the diff "
             "fails (default: 10%%)",
    )
    diff.add_argument(
        "--rules", metavar="FILE",
        help="JSON list of per-path tolerance overrides "
             "([{\"path\": ..., \"max_regression_pct\": ...}])",
    )
    diff.add_argument(
        "--output", metavar="FILE",
        help="write the repro-diff/1 report document to FILE",
    )
    diff.set_defaults(command="obs")
    return parser


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from .obs.diff import StatsDiffError, load_document

    if args.stats_file:
        try:
            document = load_document(args.stats_file)
        except StatsDiffError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        profile = document.get("profile")
        if not isinstance(profile, dict):
            print(
                f"error: {args.stats_file} has no profile section "
                f"(re-run the workload with the kernel profiler enabled, "
                f"e.g. 'repro-explain stats --app ... --stats FILE')",
                file=sys.stderr,
            )
            return 2
    elif args.app:
        run = _ObsRun(profile=True, meta={"command": "obs top"})
        _run_workload(args, run)
        profile = run.profiler.snapshot()
    else:
        print(
            "error: pass a stats document or --app WORKLOAD", file=sys.stderr
        )
        return 2
    print(obs.render_top(profile, limit=args.limit, key=args.key))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from .obs.diff import (
        StatsDiffError,
        check_gates,
        diff_documents,
        load_document,
        load_gates,
        render_report,
        write_report,
    )

    try:
        if args.check:
            if not args.gates:
                print(
                    "error: --check requires --gates GATES.json",
                    file=sys.stderr,
                )
                return 2
            document = load_document(args.check)
            gates = load_gates(args.gates)
            report = check_gates(document, gates, suite=args.suite)
        else:
            if len(args.documents) != 2:
                print(
                    "error: diff mode takes exactly two documents "
                    "(BASELINE.json CANDIDATE.json), or use --check/--gates",
                    file=sys.stderr,
                )
                return 2
            rules = None
            if args.rules:
                try:
                    with open(args.rules, encoding="utf-8") as handle:
                        rules = json.load(handle)
                except (OSError, json.JSONDecodeError) as error:
                    raise StatsDiffError(
                        f"cannot read rules {args.rules}: {error}"
                    ) from error
                if not isinstance(rules, list):
                    raise StatsDiffError(
                        f"{args.rules}: rules must be a JSON list"
                    )
            baseline = load_document(args.documents[0])
            candidate = load_document(args.documents[1])
            report = diff_documents(
                baseline, candidate,
                tolerance_pct=args.tolerance, rules=rules,
            )
    except StatsDiffError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output:
        write_report(report, args.output)
    print(render_report(report))
    return 0 if report["ok"] else 1


def _run_obs(argv: list[str]) -> int:
    args = _build_obs_parser().parse_args(argv)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    return _cmd_obs_diff(args)


def _run_subcommand(argv: list[str]) -> int:
    if argv and argv[0] == "obs":
        return _run_obs(argv[1:])
    args = _build_subcommand_parser().parse_args(argv)
    try:
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_stats(args)
    except FaultSpecError as error:
        print(f"invalid --inject-faults spec: {error}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _run_subcommand(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    run = _ObsRun(trace_path=args.trace, stats_path=args.stats_file,
                  flight_path=args.flight_file, profile=args.metrics,
                  meta={"command": "legacy", "argv": argv})
    try:
        if args.program:
            with run.observed():
                return _run_files(args, run)
        if args.analyse:
            _run_analysis(args.analyse, args.dot)
            return 0
        if args.demo:
            scenario = _DEMOS[args.demo](args)
            with run.observed():
                _run_demo(scenario, args, run)
            return 0
    except FaultSpecError as error:
        print(f"invalid --inject-faults spec: {error}", file=sys.stderr)
        return 2
    finally:
        run.dump()
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
