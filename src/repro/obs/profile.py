"""The kernel profiler: per-rule-kernel wall time and row attribution.

The columnar core (``engine/kernels.py``) compiles each rule into a
closure kernel and executes it every round — fast, and opaque.  A
:class:`KernelProfiler` re-opens the box without giving the speed back:
each :meth:`record` call attributes one kernel execution's wall time,
index probes, rows scanned, rows emitted and pruned partials to the
rule's label.  The aggregate view feeds ``--metrics``, the stats
document (``profile`` key) and the ``repro-explain obs top`` table.

Like the tracer and flight recorder, a disabled profiler is a shared
no-op: the kernel hot path pays one attribute check when profiling is
off.
"""

from __future__ import annotations

import threading

#: The per-kernel fields every profile entry carries.
PROFILE_FIELDS = (
    "execs", "wall_s", "probes", "rows_scanned", "rows_emitted", "pruned",
)


class KernelProfiler:
    """Aggregates per-kernel execution telemetry under rule labels."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._kernels: dict[str, dict] = {}

    def record(
        self,
        label: str,
        wall_s: float,
        probes: int = 0,
        rows_scanned: int = 0,
        rows_emitted: int = 0,
        pruned: int = 0,
    ) -> None:
        """Attribute one kernel execution to ``label``."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._kernels.get(label)
            if entry is None:
                entry = dict.fromkeys(PROFILE_FIELDS, 0)
                entry["wall_s"] = 0.0
                self._kernels[label] = entry
            entry["execs"] += 1
            entry["wall_s"] += wall_s
            entry["probes"] += probes
            entry["rows_scanned"] += rows_scanned
            entry["rows_emitted"] += rows_emitted
            entry["pruned"] += pruned

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-kernel entries (sorted by label) with derived rates."""
        with self._lock:
            kernels = {
                label: dict(entry)
                for label, entry in sorted(self._kernels.items())
            }
        for entry in kernels.values():
            wall = entry["wall_s"]
            entry["wall_s"] = round(wall, 9)
            entry["rows_per_s"] = (
                round(entry["rows_scanned"] / wall) if wall > 0 else 0
            )
        return kernels

    def top(self, limit: int = 10, key: str = "wall_s") -> list[tuple[str, dict]]:
        """The ``limit`` heaviest kernels by ``key``, descending."""
        snapshot = self.snapshot()
        ranked = sorted(
            snapshot.items(), key=lambda item: item[1].get(key, 0),
            reverse=True,
        )
        return ranked[:limit]

    def clear(self) -> None:
        with self._lock:
            self._kernels.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


def render_top(
    profile: dict, limit: int = 10, key: str = "wall_s"
) -> str:
    """A fixed-width table of the heaviest kernels (``obs top`` view).

    ``profile`` is a :meth:`KernelProfiler.snapshot` mapping (or the
    ``profile`` section of a stats document).
    """
    ranked = sorted(
        profile.items(), key=lambda item: item[1].get(key, 0), reverse=True
    )[:limit]
    header = (
        f"{'kernel':<28} {'execs':>7} {'wall_ms':>9} {'probes':>9} "
        f"{'scanned':>9} {'emitted':>9} {'pruned':>8} {'rows/s':>10}"
    )
    lines = [header, "-" * len(header)]
    for label, entry in ranked:
        lines.append(
            f"{label:<28} {entry.get('execs', 0):>7} "
            f"{entry.get('wall_s', 0.0) * 1000:>9.2f} "
            f"{entry.get('probes', 0):>9} "
            f"{entry.get('rows_scanned', 0):>9} "
            f"{entry.get('rows_emitted', 0):>9} "
            f"{entry.get('pruned', 0):>8} "
            f"{entry.get('rows_per_s', 0):>10}"
        )
    if not ranked:
        lines.append("(no kernel executions recorded)")
    return "\n".join(lines)


#: The process-default profiler: permanently disabled.
NULL_PROFILER = KernelProfiler(enabled=False)
