"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` absorbs every number the pipeline produces —
service request counters, per-stage latency distributions, cache
hit/miss/eviction telemetry — behind one thread-safe interface, and
renders them as a single structured snapshot (see
:mod:`repro.obs.export` for the file/Prometheus front ends).

Histograms use fixed buckets (Prometheus-style upper bounds) so that
recording a sample is O(log buckets) and memory is constant regardless
of traffic; p50/p95/p99 are estimated by linear interpolation within the
bucket containing the target rank, clamped to the observed min/max.

:class:`ServiceMetrics` is the migration shim for the historical
service-layer counters: the same ``incr``/``observe``/``counter``/
``snapshot`` surface, now backed by the registry, with ``snapshot()``
kept byte-compatible with the pre-observability output.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Sequence

#: Default latency buckets (seconds): ~1 µs to 60 s, quasi-logarithmic.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The percentiles every histogram summary reports.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Bucket ``i`` counts samples in ``(bounds[i-1], bounds[i]]`` (the
    first bucket is ``(-inf, bounds[0]]``); one overflow bucket catches
    samples above the last bound.  Percentiles interpolate linearly
    within the owning bucket, which keeps the estimate within one bucket
    width of the true value — plenty for latency telemetry.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum",
                 "_exemplars", "_delta", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._exemplars: dict[int, tuple[float, str]] | None = None
        # Shadow accumulator for delta shipping (see enable_delta).
        self._delta: dict | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one sample; ``exemplar`` is an opaque id (e.g. a flight
        query id) retained per bucket for the max-value sample, so a slow
        percentile bucket resolves back to a replayable record."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            if exemplar is not None:
                if self._exemplars is None:
                    self._exemplars = {}
                held = self._exemplars.get(index)
                if held is None or value >= held[0]:
                    self._exemplars[index] = (value, exemplar)
            delta = self._delta
            if delta is not None:
                delta["counts"][index] = delta["counts"].get(index, 0) + 1
                delta["count"] += 1
                delta["total"] += value
                if value < delta["min"]:
                    delta["min"] = value
                if value > delta["max"]:
                    delta["max"] = value
                if exemplar is not None:
                    held = delta["exemplars"].get(index)
                    if held is None or value >= held[0]:
                        delta["exemplars"][index] = (value, exemplar)

    # ------------------------------------------------------------------
    # Delta shipping (cross-process metric merge)
    # ------------------------------------------------------------------
    @staticmethod
    def _fresh_delta() -> dict:
        return {
            "counts": {}, "count": 0, "total": 0.0,
            "min": float("inf"), "max": float("-inf"), "exemplars": {},
        }

    def enable_delta(self) -> None:
        """Start shadow-accumulating samples for :meth:`drain_delta`.

        Used by process-backed serving workers: the child observes into
        its own histogram as usual, then ships only the samples recorded
        since the last drain back to the parent after each request.
        """
        with self._lock:
            if self._delta is None:
                self._delta = self._fresh_delta()

    def drain_delta(self) -> dict | None:
        """Return-and-reset the shadow state (None when empty).

        The returned dict is a plain-JSON/pickle value understood by
        :meth:`merge_state` on the receiving side.
        """
        with self._lock:
            delta = self._delta
            if delta is None or not delta["count"]:
                return None
            self._delta = self._fresh_delta()
        return {
            "counts": {
                str(index): count for index, count in delta["counts"].items()
            },
            "count": delta["count"],
            "total": delta["total"],
            "min": delta["min"],
            "max": delta["max"],
            "exemplars": {
                str(index): [value, exemplar]
                for index, (value, exemplar) in delta["exemplars"].items()
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold a drained shadow state from another histogram into this
        one.  Bucket layouts must match (both sides use the registry's
        default bounds)."""
        with self._lock:
            for index, count in state.get("counts", {}).items():
                self.counts[int(index)] += count
            self.count += state.get("count", 0)
            self.total += state.get("total", 0.0)
            if state.get("count", 0):
                if state["min"] < self.minimum:
                    self.minimum = state["min"]
                if state["max"] > self.maximum:
                    self.maximum = state["max"]
            for index, (value, exemplar) in state.get("exemplars", {}).items():
                if self._exemplars is None:
                    self._exemplars = {}
                held = self._exemplars.get(int(index))
                if held is None or value >= held[0]:
                    self._exemplars[int(index)] = (value, exemplar)

    def exemplars(self) -> dict[str, dict]:
        """Per-bucket max-latency exemplars, keyed by upper bound.

        Keys are the bucket's upper bound rendered as a string (``+Inf``
        for the overflow bucket); each value carries the retained sample
        and the id attached when it was observed.
        """
        with self._lock:
            held = dict(self._exemplars) if self._exemplars else {}
        result: dict[str, dict] = {}
        for index, (value, exemplar) in sorted(held.items()):
            bound = (
                repr(self.bounds[index])
                if index < len(self.bounds) else "+Inf"
            )
            result[bound] = {"value": value, "exemplar": exemplar}
        return result

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """The estimated ``p``-th percentile (``0 <= p <= 100``)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> float:
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.minimum
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds) else self.maximum
                )
                lower = max(lower, self.minimum)
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return lower
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.maximum  # pragma: no cover - unreachable

    def summary(self) -> dict:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "total": 0.0, "mean": 0.0,
                        "min": 0.0, "max": 0.0,
                        **{f"p{int(p)}": 0.0 for p in SUMMARY_PERCENTILES}}
            base = {
                "count": self.count,
                "total": self.total,
                "mean": self.total / self.count,
                "min": self.minimum,
                "max": self.maximum,
            }
            for p in SUMMARY_PERCENTILES:
                base[f"p{int(p)}"] = self._percentile_locked(p)
            return base


class MetricsRegistry:
    """Named counters, gauges, histograms and attached caches.

    All mutation is lock-protected and cheap (a dict update); histogram
    observation additionally pays one binary search.  Caches register by
    reference (see :meth:`register_cache`) and are snapshotted live, so
    the registry never holds stale hit rates.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self._buckets = tuple(buckets)
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._caches: dict[str, Any] = {}
        self._delta_enabled = False
        self._counter_baseline: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, exemplar: str | None = None
    ) -> None:
        """Record one histogram sample under ``name``."""
        self.histogram(name).observe(value, exemplar=exemplar)

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = Histogram(self._buckets)
                if self._delta_enabled:
                    found.enable_delta()
                self._histograms[name] = found
            return found

    def find_histogram(self, name: str) -> Histogram | None:
        """The histogram named ``name`` if any samples were ever routed
        to it — unlike :meth:`histogram` this never creates one."""
        with self._lock:
            return self._histograms.get(name)

    def register_cache(self, name: str, cache: Any) -> None:
        """Attach a cache exposing ``snapshot()`` (e.g.
        :class:`~repro.core.cache.LRUCache`); its live statistics join
        every registry snapshot under ``caches.<name>``."""
        with self._lock:
            self._caches[name] = cache

    # ------------------------------------------------------------------
    # Delta shipping (cross-process metric merge)
    # ------------------------------------------------------------------
    def enable_delta(self) -> None:
        """Switch this registry into delta-shipping mode.

        Process-backed serving workers call this once at boot: every
        subsequent :meth:`drain_delta` returns only what was recorded
        since the previous drain, as a picklable payload the parent
        folds back in with :meth:`merge_delta`.
        """
        with self._lock:
            self._delta_enabled = True
            histograms = list(self._histograms.values())
        for histogram in histograms:
            histogram.enable_delta()

    def drain_delta(self) -> dict:
        """Counters/gauges/histogram samples recorded since last drain."""
        with self._lock:
            counters = {}
            for name, value in self._counters.items():
                delta = value - self._counter_baseline.get(name, 0)
                if delta:
                    counters[name] = delta
                self._counter_baseline[name] = value
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        drained = {}
        for name, histogram in histograms.items():
            state = histogram.drain_delta()
            if state is not None:
                drained[name] = state
        return {"counters": counters, "gauges": gauges,
                "histograms": drained}

    def merge_delta(self, payload: dict) -> None:
        """Fold a :meth:`drain_delta` payload from another process into
        this registry."""
        for name, delta in payload.get("counters", {}).items():
            self.increment(name, delta)
        for name, value in payload.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, state in payload.get("histograms", {}).items():
            self.histogram(name).merge_state(state)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """The full structured view: counters, gauges, histogram
        summaries (with p50/p95/p99) and live cache statistics."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            caches = dict(self._caches)
        summaries = {}
        for name, histogram in sorted(histograms.items()):
            summary = histogram.summary()
            exemplars = histogram.exemplars()
            if exemplars:
                summary["exemplars"] = exemplars
            summaries[name] = summary
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": summaries,
            "caches": {
                name: cache.snapshot() for name, cache in sorted(caches.items())
            },
        }


class ServiceMetrics(MetricsRegistry):
    """The historical service-metrics surface, now registry-backed.

    Deprecation alias: ``repro.core.service.ServiceMetrics`` re-exports
    this class.  ``incr``/``observe``/``counter`` keep their signatures
    and :meth:`snapshot` keeps the pre-observability shape (``counters``
    plus ``latency`` with exact count/total/mean/max per timer, plus a
    ``gauges`` section when any gauge was set — e.g. ``chase.symbols``
    under the planned strategy) so existing ``--metrics`` consumers
    parse unchanged output; the full registry view is available as
    :meth:`registry_snapshot`.
    """

    def incr(self, name: str, amount: int = 1) -> None:
        self.increment(name, amount)

    # ``observe`` is inherited unchanged: (name, seconds) -> histogram.

    def counter(self, name: str) -> int:
        return self.counter_value(name)

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        latency = {}
        for name, histogram in histograms.items():
            with histogram._lock:
                count = histogram.count
                total = histogram.total
                maximum = histogram.maximum if count else 0.0
            latency[name] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "max_s": maximum,
            }
        snapshot = {"counters": counters, "latency": latency}
        if gauges:
            snapshot["gauges"] = gauges
        return snapshot

    def registry_snapshot(self) -> dict:
        return MetricsRegistry.snapshot(self)


#: The process-default registry ambient instrumentation falls back to.
#: Counters recorded here are cheap and inspectable but are never
#: exported unless a caller asks (see ``repro.obs.observed``).
DEFAULT_REGISTRY = MetricsRegistry()
