"""``repro.obs`` — unified tracing, metrics and profiling.

The observability layer the rest of the system reports into:

* :mod:`repro.obs.trace` — hierarchical span tracer (monotonic clock,
  parent/child nesting, shared no-op span when disabled);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with p50/p95/p99 summaries, plus cache telemetry;
* :mod:`repro.obs.export` — JSON-lines traces, the stats document and
  Prometheus text;
* :mod:`repro.obs.log` — structured key=value logging bridge.

Instrumented modules (chase engine, compiler, enhancer, service) do not
take tracer/registry parameters; they report to the **ambient** pair
installed with :func:`observed`::

    tracer, registry = Tracer(), MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        session = service.session(app, database)   # spans + counters land
    write_trace(tracer, "run.jsonl")

Outside an ``observed`` block the ambient tracer is permanently disabled
(every ``span()`` returns the shared no-op object) and counters go to a
process-default registry — both cheap enough to leave the call sites in
hot paths unconditionally.  The ambient pair is process-global on
purpose: thread-pool workers spawned inside an observed region report to
the same sinks as the thread that installed it.
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import (
    STATS_DOCUMENT_KEYS,
    STATS_FORMAT,
    TRACE_FORMAT,
    parse_trace_jsonl,
    render_prometheus,
    span_aggregate,
    span_tree,
    stats_document,
    trace_jsonl,
    write_stats,
    write_trace,
)
from .log import configure, get_logger, install_span_logging, kv_line, log_event
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_REGISTRY,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from .trace import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS", "DEFAULT_REGISTRY", "Histogram", "MetricsRegistry",
    "NULL_SPAN", "NULL_TRACER", "STATS_DOCUMENT_KEYS", "STATS_FORMAT",
    "ServiceMetrics", "Span", "TRACE_FORMAT", "Tracer", "configure",
    "get_logger", "get_metrics", "get_tracer", "incr", "install_span_logging",
    "kv_line", "log_event", "observe", "observed", "parse_trace_jsonl",
    "render_prometheus", "set_gauge", "span", "span_aggregate", "span_tree",
    "stats_document", "trace_jsonl", "write_stats", "write_trace",
]

_active_tracer: Tracer = NULL_TRACER
_active_metrics: MetricsRegistry = DEFAULT_REGISTRY


def get_tracer() -> Tracer:
    """The ambient tracer (disabled no-op outside ``observed`` blocks)."""
    return _active_tracer


def get_metrics() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _active_metrics


def span(name: str, **attrs):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _active_tracer.span(name, **attrs)


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the ambient registry."""
    _active_metrics.increment(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the ambient registry."""
    _active_metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient registry."""
    _active_metrics.set_gauge(name, value)


@contextmanager
def observed(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
):
    """Install an ambient tracer/registry pair for the enclosed work.

    Either side may be omitted to keep the current one.  The previous
    pair is restored on exit, so observed regions nest.
    """
    global _active_tracer, _active_metrics
    previous = (_active_tracer, _active_metrics)
    if tracer is not None:
        _active_tracer = tracer
    if metrics is not None:
        _active_metrics = metrics
    try:
        yield (_active_tracer, _active_metrics)
    finally:
        _active_tracer, _active_metrics = previous
