"""``repro.obs`` — unified tracing, metrics and profiling.

The observability layer the rest of the system reports into:

* :mod:`repro.obs.trace` — hierarchical span tracer (monotonic clock,
  parent/child nesting, shared no-op span when disabled);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with p50/p95/p99 summaries, plus cache telemetry;
* :mod:`repro.obs.export` — JSON-lines traces, the stats document and
  Prometheus text;
* :mod:`repro.obs.log` — structured key=value logging bridge.

The second layer (per-query attribution, added in PR 7):

* :mod:`repro.obs.flight` — the query flight recorder: request-scoped
  records (query id + compile fingerprint, phase timings, kernel and
  cache counters, degradation events) in a bounded ring buffer,
  dumpable as ``repro-flight/1`` JSON;
* :mod:`repro.obs.profile` — per-rule-kernel wall time / rows / probes
  attribution feeding ``--metrics`` and ``repro-explain obs top``;
* :mod:`repro.obs.slo` — declarative latency and error-rate objectives
  evaluated against histogram snapshots, with health signals the
  resilience breakers can consume;
* :mod:`repro.obs.diff` — the stats-diff regression tool and threshold
  gates behind ``repro-explain obs diff``.

Instrumented modules (chase engine, compiler, enhancer, service) do not
take tracer/registry parameters; they report to the **ambient** pair
installed with :func:`observed`::

    tracer, registry = Tracer(), MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        session = service.session(app, database)   # spans + counters land
    write_trace(tracer, "run.jsonl")

Outside an ``observed`` block the ambient tracer is permanently disabled
(every ``span()`` returns the shared no-op object) and counters go to a
process-default registry — both cheap enough to leave the call sites in
hot paths unconditionally.  The ambient pair is process-global on
purpose: thread-pool workers spawned inside an observed region report to
the same sinks as the thread that installed it.
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import (
    STATS_DOCUMENT_KEYS,
    STATS_FORMAT,
    TRACE_FORMAT,
    parse_trace_jsonl,
    render_prometheus,
    span_aggregate,
    span_tree,
    stats_document,
    trace_jsonl,
    write_stats,
    write_trace,
)
from .flight import (
    FLIGHT_FORMAT,
    NULL_FLIGHT_RECORD,
    NULL_FLIGHT_RECORDER,
    FlightRecord,
    FlightRecorder,
    write_flight,
)
from .log import configure, get_logger, install_span_logging, kv_line, log_event
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_REGISTRY,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from .profile import NULL_PROFILER, KernelProfiler, render_top
from .slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOConfigError,
    SLOEvaluator,
    SLOReport,
)
from .trace import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS", "DEFAULT_REGISTRY", "ErrorRateObjective",
    "FLIGHT_FORMAT", "FlightRecord", "FlightRecorder", "Histogram",
    "KernelProfiler", "LatencyObjective", "MetricsRegistry",
    "NULL_FLIGHT_RECORD", "NULL_FLIGHT_RECORDER", "NULL_PROFILER",
    "NULL_SPAN", "NULL_TRACER", "STATS_DOCUMENT_KEYS", "STATS_FORMAT",
    "SLOConfigError", "SLOEvaluator", "SLOReport", "ServiceMetrics", "Span",
    "TRACE_FORMAT", "Tracer", "configure", "current_flight", "flight_event",
    "get_flight", "get_logger", "get_metrics", "get_profiler", "get_tracer",
    "incr", "install_span_logging", "kv_line", "log_event", "observe",
    "observed", "parse_trace_jsonl", "render_prometheus", "render_top",
    "set_gauge", "span", "span_aggregate", "span_tree", "stats_document",
    "trace_jsonl", "write_flight", "write_stats", "write_trace",
]

_active_tracer: Tracer = NULL_TRACER
_active_metrics: MetricsRegistry = DEFAULT_REGISTRY
_active_flight: FlightRecorder = NULL_FLIGHT_RECORDER
_active_profiler: KernelProfiler = NULL_PROFILER


def get_tracer() -> Tracer:
    """The ambient tracer (disabled no-op outside ``observed`` blocks)."""
    return _active_tracer


def get_metrics() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _active_metrics


def get_flight() -> FlightRecorder:
    """The ambient flight recorder (disabled outside ``observed``)."""
    return _active_flight


def get_profiler() -> KernelProfiler:
    """The ambient kernel profiler (disabled outside ``observed``)."""
    return _active_profiler


def current_flight() -> FlightRecord | None:
    """The calling thread's open flight record, or ``None``.

    One attribute check when flight recording is off — cheap enough for
    hot paths (cache lookups, kernel executions) to call unconditionally.
    """
    return _active_flight.current()


def flight_event(kind: str, **data) -> None:
    """Append an event to the current flight record, if one is open."""
    record = _active_flight.current()
    if record is not None:
        record.event(kind, **data)


def span(name: str, **attrs):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _active_tracer.span(name, **attrs)


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the ambient registry."""
    _active_metrics.increment(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the ambient registry."""
    _active_metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient registry."""
    _active_metrics.set_gauge(name, value)


@contextmanager
def observed(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    flight: FlightRecorder | None = None,
    profile: KernelProfiler | None = None,
):
    """Install ambient observability sinks for the enclosed work.

    Any side may be omitted to keep the current one (the flight recorder
    and kernel profiler default to permanently-disabled singletons, so
    the base tracer/metrics-only call keeps its old cost).  The previous
    set is restored on exit, so observed regions nest.
    """
    global _active_tracer, _active_metrics, _active_flight, _active_profiler
    previous = (
        _active_tracer, _active_metrics, _active_flight, _active_profiler,
    )
    if tracer is not None:
        _active_tracer = tracer
    if metrics is not None:
        _active_metrics = metrics
    if flight is not None:
        _active_flight = flight
    if profile is not None:
        _active_profiler = profile
    try:
        yield (_active_tracer, _active_metrics)
    finally:
        (
            _active_tracer, _active_metrics,
            _active_flight, _active_profiler,
        ) = previous
