"""Stats-document diffing and threshold gates: the CI regression tool.

Two entry points, both behind ``repro-explain obs diff``:

* :func:`diff_documents` compares two ``repro-stats/1`` documents (or
  any JSON benchmark payloads) leaf by numeric leaf, applying a
  tolerance before calling a change a regression.  Latency-shaped paths
  (histogram percentiles, phase seconds, kernel wall time) are treated
  as *higher is worse*; other numeric leaves are reported as
  informational changes only.  Per-path tolerance rules override the
  global tolerance.
* :func:`check_gates` asserts declarative threshold gates (``min`` /
  ``max`` / ``equals`` with optional per-gate ``tolerance_pct``)
  against one document — the single mechanism the CI perf gates
  (warm-start ≥ 2x, planned ≥ 2x naive, explain serving ≥ 5x) run
  through, configured in ``benchmarks/gates.json``.

Both produce a ``repro-diff/1`` report document, and both raise
:class:`StatsDiffError` on malformed input so the CLI can exit 2 with a
message instead of a traceback.

Path language: dot-separated tokens into nested dicts/lists.  Integer
tokens (including negatives) index lists; ``*`` fans out over every
dict value or list element.  Example:
``workloads.*.explain.speedup`` or
``transitive_closure.-1.planned_speedup_vs_naive``.
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase
from typing import Any, Iterable

#: Version tag of the diff/gate report layout.
DIFF_FORMAT = "repro-diff/1"
#: Version tag of the gate-config layout.
GATES_FORMAT = "repro-gates/1"

#: Leaf names treated as "higher is worse" when diffing two documents.
_LATENCY_LEAVES = frozenset({
    "p50", "p95", "p99", "mean", "max", "total", "total_s", "mean_s",
    "max_s", "wall_s", "seconds", "kernel_compile_s", "duration_s",
})
#: Path prefixes whose numeric leaves are all latency-shaped.
_LATENCY_PREFIXES = ("phases.", "latency.")


class StatsDiffError(ValueError):
    """Malformed input to the diff/gate tool (bad JSON, wrong shape)."""


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_document(path: str, expect_format: str | None = None) -> dict:
    """Load a JSON document, raising :class:`StatsDiffError` on garbage."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise StatsDiffError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise StatsDiffError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise StatsDiffError(
            f"{path}: expected a JSON object, got {type(document).__name__}"
        )
    if expect_format is not None:
        found = document.get("format")
        if found != expect_format:
            raise StatsDiffError(
                f"{path}: expected format {expect_format!r}, "
                f"found {found!r}"
            )
    return document


def load_gates(path: str) -> dict:
    """Load and shape-check a gate configuration file."""
    gates = load_document(path)
    if gates.get("format") not in (None, GATES_FORMAT):
        raise StatsDiffError(
            f"{path}: unsupported gates format {gates.get('format')!r}"
        )
    suites = gates.get("suites")
    if not isinstance(suites, dict) or not suites:
        raise StatsDiffError(f"{path}: gate config needs a 'suites' object")
    for suite_name, rules in suites.items():
        if not isinstance(rules, list):
            raise StatsDiffError(
                f"{path}: suite {suite_name!r} must be a list of gates"
            )
        for rule in rules:
            _validate_gate(rule, suite_name, path)
    return gates


def _validate_gate(rule: Any, suite: str, path: str) -> None:
    if not isinstance(rule, dict):
        raise StatsDiffError(f"{path}: gate in suite {suite!r} is not an object")
    if "path" not in rule:
        raise StatsDiffError(
            f"{path}: gate {rule.get('name', '?')!r} in suite {suite!r} "
            f"has no 'path'"
        )
    if not any(key in rule for key in ("min", "max", "equals")):
        raise StatsDiffError(
            f"{path}: gate {rule.get('name', '?')!r} in suite {suite!r} "
            f"needs one of min/max/equals"
        )


# ----------------------------------------------------------------------
# Path resolution
# ----------------------------------------------------------------------

def resolve_path(document: Any, path: str) -> list[tuple[str, Any]]:
    """All (concrete path, value) pairs ``path`` selects in ``document``."""
    matches: list[tuple[str, Any]] = [("", document)]
    for token in path.split("."):
        next_matches: list[tuple[str, Any]] = []
        for prefix, node in matches:
            for step, value in _step(node, token):
                concrete = f"{prefix}.{step}" if prefix else step
                next_matches.append((concrete, value))
        matches = next_matches
        if not matches:
            break
    return matches


def _step(node: Any, token: str) -> Iterable[tuple[str, Any]]:
    if token == "*":
        if isinstance(node, dict):
            return [(str(key), value) for key, value in node.items()]
        if isinstance(node, list):
            return [(str(index), value) for index, value in enumerate(node)]
        return []
    if isinstance(node, dict):
        if token in node:
            return [(token, node[token])]
        return []
    if isinstance(node, list):
        try:
            index = int(token)
            return [(str(index), node[index])]
        except (ValueError, IndexError):
            return []
    return []


def numeric_leaves(node: Any, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf in a JSON tree, keyed by dotted path."""
    leaves: dict[str, float] = {}
    if isinstance(node, bool):
        return leaves
    if isinstance(node, (int, float)):
        leaves[prefix] = float(node)
        return leaves
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(numeric_leaves(value, child))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            child = f"{prefix}.{index}" if prefix else str(index)
            leaves.update(numeric_leaves(value, child))
    return leaves


def _is_latency_path(path: str) -> bool:
    if any(path.startswith(prefix) for prefix in _LATENCY_PREFIXES):
        return True
    leaf = path.rsplit(".", 1)[-1]
    return leaf in _LATENCY_LEAVES


# ----------------------------------------------------------------------
# Document diffing
# ----------------------------------------------------------------------

def diff_documents(
    baseline: dict,
    candidate: dict,
    tolerance_pct: float = 10.0,
    rules: Iterable[dict] | None = None,
) -> dict:
    """Compare two documents; flag latency-shaped leaves that regressed.

    ``rules`` entries override the global tolerance per path pattern::

        [{"path": "histograms.explain.*", "max_regression_pct": 50},
         {"path": "counters.*", "ignore": true}]

    Patterns use shell-style wildcards over concrete dotted paths.  The
    report's ``ok`` is ``False`` iff any regression survived tolerance.
    """
    rule_list = list(rules or ())
    before = numeric_leaves(baseline)
    after = numeric_leaves(candidate)
    regressions: list[dict] = []
    improvements: list[dict] = []
    changes: list[dict] = []
    for path in sorted(set(before) & set(after)):
        a, b = before[path], after[path]
        if a == b:
            continue
        delta_pct = ((b - a) / abs(a) * 100.0) if a else None
        entry = {
            "path": path,
            "baseline": a,
            "candidate": b,
            "delta_pct": round(delta_pct, 2) if delta_pct is not None else None,
        }
        rule = _matching_rule(rule_list, path)
        if rule is not None and rule.get("ignore"):
            continue
        if not _is_latency_path(path):
            changes.append(entry)
            continue
        allowed = tolerance_pct
        if rule is not None and "max_regression_pct" in rule:
            allowed = float(rule["max_regression_pct"])
        if b > a and (a == 0 or delta_pct is None or delta_pct > allowed):
            entry["tolerance_pct"] = allowed
            regressions.append(entry)
        elif b < a:
            improvements.append(entry)
        else:
            changes.append(entry)
    return {
        "format": DIFF_FORMAT,
        "kind": "diff",
        "tolerance_pct": tolerance_pct,
        "ok": not regressions,
        "regressions": regressions,
        "improvements": improvements,
        "changes": changes,
        "added": sorted(set(after) - set(before)),
        "removed": sorted(set(before) - set(after)),
    }


def _matching_rule(rules: list[dict], path: str) -> dict | None:
    for rule in rules:
        pattern = rule.get("path")
        if pattern and fnmatchcase(path, pattern):
            return rule
    return None


# ----------------------------------------------------------------------
# Threshold gates
# ----------------------------------------------------------------------

def check_gates(
    document: dict, gates: dict, suite: str | None = None
) -> dict:
    """Evaluate one gate suite (or all suites) against ``document``.

    Each gate selects values with its ``path`` and asserts ``min`` /
    ``max`` / ``equals`` on every selected value.  ``tolerance_pct``
    loosens min/max by that fraction (a 2.0 min with 5% tolerance
    passes at 1.9).  A path selecting nothing fails the gate unless the
    gate is marked ``"optional": true`` — silence must never read as
    success.
    """
    suites = gates.get("suites", {})
    if suite is not None:
        if suite not in suites:
            raise StatsDiffError(
                f"unknown gate suite {suite!r} "
                f"(have: {', '.join(sorted(suites))})"
            )
        selected = {suite: suites[suite]}
    else:
        selected = suites
    checks: list[dict] = []
    for suite_name, rules in selected.items():
        for rule in rules:
            checks.extend(_check_gate(document, rule, suite_name))
    return {
        "format": DIFF_FORMAT,
        "kind": "gates",
        "suite": suite,
        "ok": all(check["ok"] for check in checks),
        "checks": checks,
    }


def _check_gate(document: dict, rule: dict, suite: str) -> list[dict]:
    name = rule.get("name", rule["path"])
    tolerance = float(rule.get("tolerance_pct", 0.0)) / 100.0
    matches = resolve_path(document, rule["path"])
    if not matches:
        ok = bool(rule.get("optional", False))
        return [{
            "suite": suite, "name": name, "path": rule["path"],
            "value": None, "ok": ok,
            "detail": (
                "path matched nothing (optional)" if ok
                else "path matched nothing"
            ),
        }]
    checks = []
    for concrete, value in matches:
        ok = True
        details = []
        if "equals" in rule:
            ok = value == rule["equals"]
            details.append(f"== {rule['equals']!r}")
        if "min" in rule:
            floor = float(rule["min"]) * (1.0 - tolerance)
            passed = isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and value >= floor
            ok = ok and passed
            details.append(
                f">= {rule['min']}"
                + (f" (tolerance {rule['tolerance_pct']}%)" if tolerance else "")
            )
        if "max" in rule:
            ceiling = float(rule["max"]) * (1.0 + tolerance)
            passed = isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and value <= ceiling
            ok = ok and passed
            details.append(
                f"<= {rule['max']}"
                + (f" (tolerance {rule['tolerance_pct']}%)" if tolerance else "")
            )
        checks.append({
            "suite": suite, "name": name, "path": concrete,
            "value": value, "ok": ok,
            "detail": " and ".join(details),
        })
    return checks


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_report(report: dict) -> str:
    """A human-readable rendering of a diff or gates report."""
    lines: list[str] = []
    if report.get("kind") == "gates":
        for check in report["checks"]:
            marker = "PASS" if check["ok"] else "FAIL"
            lines.append(
                f"[{marker}] {check['suite']}/{check['name']}: "
                f"{check['path']} = {check['value']} ({check['detail']})"
            )
        verdict = "OK" if report["ok"] else "GATE FAILURES"
        lines.append(f"gates: {verdict}")
        return "\n".join(lines)
    for entry in report.get("regressions", ()):
        lines.append(
            f"[REGRESSION] {entry['path']}: {entry['baseline']} -> "
            f"{entry['candidate']} ({entry['delta_pct']}% > "
            f"{entry.get('tolerance_pct', report['tolerance_pct'])}% tolerance)"
        )
    for entry in report.get("improvements", ()):
        lines.append(
            f"[improved] {entry['path']}: {entry['baseline']} -> "
            f"{entry['candidate']} ({entry['delta_pct']}%)"
        )
    summary = (
        f"diff: {len(report.get('regressions', ()))} regression(s), "
        f"{len(report.get('improvements', ()))} improvement(s), "
        f"{len(report.get('changes', ()))} neutral change(s), "
        f"{len(report.get('added', ()))} added, "
        f"{len(report.get('removed', ()))} removed"
    )
    lines.append(summary)
    lines.append("diff: OK" if report["ok"] else "diff: REGRESSIONS FOUND")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, default=str)
        handle.write("\n")
