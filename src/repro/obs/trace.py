"""A lightweight hierarchical span tracer.

The pipeline spans four very differently-shaped stages (chase, structural
analysis, enhancement, per-fact mapping); a flat latency counter cannot
say *where* a slow request spent its time.  A :class:`Tracer` hands out
:class:`Span` context managers that record monotonic-clock timings and
parent/child nesting::

    tracer = Tracer()
    with tracer.span("chase.run", program="company_control"):
        with tracer.span("chase.stratum", stratum=0) as span:
            ...
            span.set(rounds=4)

Design constraints, in order:

* **near-zero overhead when disabled** — a disabled tracer returns one
  shared no-op span object from every :meth:`Tracer.span` call (no
  allocation, no clock read), so instrumentation can stay in hot paths
  unconditionally;
* **thread-safe** — finished spans append under a lock and the
  parent/child relation is tracked per thread, so spans opened from a
  thread pool never corrupt each other (a worker span has no parent
  unless one is passed explicitly via ``parent=``);
* **deterministic export** — span ids are small per-tracer integers and
  start offsets are relative to the tracer's epoch, so traces diff
  cleanly across runs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable


class Span:
    """One timed region of work, usable as a context manager."""

    __slots__ = (
        "span_id", "parent_id", "name", "attrs",
        "start_s", "end_s", "thread", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s: float = 0.0
        self.end_s: float | None = None
        self.thread = threading.current_thread().name

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "thread": self.thread,
            "attrs": self.attrs,
        }

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = time.perf_counter() - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_s = time.perf_counter() - self._tracer.epoch
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out.

    Every method is a no-op and ``__enter__`` returns the singleton
    itself, so instrumented code never branches on whether tracing is on.
    """

    __slots__ = ()

    name = None
    span_id = None
    parent_id = None
    attrs: dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: The singleton no-op span (one per process, shared by all tracers).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished :class:`Span` records for one observed run.

    Parameters
    ----------
    enabled:
        When ``False`` every :meth:`span` call returns :data:`NULL_SPAN`
        — the same object, unconditionally — which is the documented
        near-zero-overhead mode for production hot paths.
    on_close:
        Optional callback invoked with each finished span (used by the
        structured-logging bridge in :mod:`repro.obs.log`).
    """

    def __init__(
        self,
        enabled: bool = True,
        on_close: Callable[[Span], None] | None = None,
    ):
        self.enabled = enabled
        self.on_close = on_close
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._finished: list[Span] = []
        self._stack = threading.local()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, parent: Span | None = None, **attrs: Any):
        """A context manager timing one named region.

        Nesting is tracked per thread: a span opened while another is
        open on the same thread becomes its child.  Cross-thread
        parentage (e.g. thread-pool workers) must be passed explicitly
        via ``parent=``.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent is None:
            parent = self.current()
        parent_id = parent.span_id if isinstance(parent, Span) else None
        return Span(self, span_id, parent_id, name, dict(attrs))

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = getattr(self._stack, "spans", None)
        return stack[-1] if stack else None

    def attach(self, span: Span | _NullSpan | None):
        """Adopt ``span`` as the calling thread's current span.

        The cross-thread propagation primitive: a thread-pool worker
        wraps its task in ``with tracer.attach(request_span):`` and every
        span it opens parents to the submitting request instead of
        orphaning.  The attached span is *not* closed on exit — it
        belongs to the thread that opened it.  Passing ``None`` or a
        null span yields a no-op, so call sites never branch.
        """
        if not self.enabled or not isinstance(span, Span):
            return _NOOP_ATTACH
        return _SpanAttachment(self, span)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finished(self) -> tuple[Span, ...]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    # ------------------------------------------------------------------
    # Internal bookkeeping (called by Span)
    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # out-of-order close: be forgiving
            stack.remove(span)
        with self._lock:
            self._finished.append(span)
        if self.on_close is not None:
            self.on_close(span)


class _SpanAttachment:
    """Pushes a foreign span onto this thread's stack without owning it."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        stack = getattr(self._tracer._stack, "spans", None)
        if stack and self._span in stack:
            stack.remove(self._span)


class _NoopAttachment:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_ATTACH = _NoopAttachment()


#: The process-default tracer: permanently disabled, shared by all
#: uninstrumented runs.  ``repro.obs.observed(...)`` swaps in a live one.
NULL_TRACER = Tracer(enabled=False)
