"""The structured logging bridge.

Telemetry wants machine-readable key=value lines, not prose.  This
module renders events as ``event key=value ...`` lines through the
stdlib :mod:`logging` machinery (so deployments keep their handlers,
levels and routing) and can mirror finished tracer spans into the log
stream for environments where a log pipeline is the only sink available.
"""

from __future__ import annotations

import logging
from typing import Any

from .trace import Span, Tracer

#: Root logger of the observability layer.
LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    return logging.getLogger(
        LOGGER_NAME if name is None else f"{LOGGER_NAME}.{name}"
    )


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.6f}"
    else:
        text = str(value)
    if " " in text or '"' in text or "=" in text:
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


def kv_line(event: str, fields: dict[str, Any] | None = None) -> str:
    """Render one structured event: ``event key=value key=value ...``.

    Values containing spaces, quotes or ``=`` are double-quoted with
    embedded quotes escaped, so the line splits unambiguously.
    """
    parts = [event]
    for key, value in (fields or {}).items():
        parts.append(f"{key}={_format_value(value)}")
    return " ".join(parts)


def log_event(
    event: str,
    fields: dict[str, Any] | None = None,
    logger: logging.Logger | None = None,
    level: int = logging.INFO,
) -> None:
    """Emit one structured event line through the logging machinery."""
    (logger or get_logger()).log(level, "%s", kv_line(event, fields))


def span_log_fields(span: Span) -> dict[str, Any]:
    fields: dict[str, Any] = {
        "span": span.name,
        "id": span.span_id,
        "duration_s": span.duration_s,
    }
    if span.parent_id is not None:
        fields["parent"] = span.parent_id
    fields.update(span.attrs)
    return fields


def install_span_logging(
    tracer: Tracer,
    logger: logging.Logger | None = None,
    level: int = logging.DEBUG,
) -> Tracer:
    """Mirror every finished span of ``tracer`` into the log stream.

    Sets the tracer's ``on_close`` hook; returns the tracer for
    chaining.  Spans log at DEBUG by default — they are high-volume.
    """
    target = logger or get_logger("trace")

    def emit(span: Span) -> None:
        target.log(level, "%s", kv_line("span.close", span_log_fields(span)))

    tracer.on_close = emit
    return tracer


def configure(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Opinionated default setup for CLI runs: one stream handler with a
    timestamped structured-friendly format on the ``repro`` logger."""
    logger = get_logger()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    logger.handlers = [handler]
    logger.setLevel(level)
    logger.propagate = False
    return logger
