"""Declarative SLOs evaluated against metrics snapshots.

The north star is serving traffic, and serving means objectives:
"p99 explain latency under 250 ms", "deadline misses under 1% of
batch queries".  This module turns those sentences into data — a
:class:`LatencyObjective` or :class:`ErrorRateObjective` — and an
:class:`SLOEvaluator` that checks them against a live
:class:`~repro.obs.metrics.MetricsRegistry`.

Evaluation produces an :class:`SLOReport` that

* is serializable (``snapshot()``) for the stats document and CLI;
* publishes per-objective health gauges (``slo.<name>.ok``) back into
  the registry so Prometheus scrapes see the verdicts;
* can **drive a circuit breaker**
  (:meth:`SLOEvaluator.drive_breaker`): each evaluation feeds one
  healthy/unhealthy outcome into the breaker's sliding failure window,
  so sustained SLO breaches open the circuit and shed load exactly the
  way backend failures already do.

Objectives are plain frozen dataclasses and also load from JSON-able
dicts (:meth:`SLOEvaluator.from_config`), so a deployment declares its
SLOs next to its gate config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .metrics import MetricsRegistry


class SLOConfigError(ValueError):
    """Raised for malformed declarative SLO configuration."""


@dataclass(frozen=True)
class LatencyObjective:
    """``percentile`` of ``histogram`` must stay at or under ``threshold_s``.

    An objective over a histogram that has collected no samples is
    vacuously healthy (there is no traffic to breach it).
    """

    name: str
    histogram: str
    threshold_s: float
    percentile: float = 99.0

    kind = "latency"


@dataclass(frozen=True)
class ErrorRateObjective:
    """``errors / total`` (two counters) must stay at or under ``max_rate``.

    Below ``min_events`` total events the objective is vacuously healthy
    — a single failed request out of two is not a breached error budget.
    """

    name: str
    errors: str
    total: str
    max_rate: float
    min_events: int = 1

    kind = "error_rate"


@dataclass(frozen=True)
class SLOStatus:
    """One objective's verdict against one snapshot."""

    name: str
    kind: str
    measured: float
    threshold: float
    ok: bool
    detail: str

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "measured": self.measured,
            "threshold": self.threshold,
            "ok": self.ok,
            "detail": self.detail,
        }


class SLOReport:
    """The verdicts of one evaluation pass."""

    def __init__(self, statuses: Sequence[SLOStatus]):
        self.statuses = tuple(statuses)

    @property
    def healthy(self) -> bool:
        return all(status.ok for status in self.statuses)

    def breaches(self) -> tuple[SLOStatus, ...]:
        return tuple(status for status in self.statuses if not status.ok)

    def snapshot(self) -> dict:
        return {
            "healthy": self.healthy,
            "objectives": [status.snapshot() for status in self.statuses],
        }

    def __iter__(self):
        return iter(self.statuses)


class SLOEvaluator:
    """Checks a set of objectives against metrics snapshots."""

    def __init__(
        self,
        objectives: Iterable[LatencyObjective | ErrorRateObjective],
    ):
        self.objectives = tuple(objectives)

    @classmethod
    def from_config(cls, config: Sequence[dict]) -> "SLOEvaluator":
        """Build an evaluator from declarative (JSON-able) entries.

        Each entry carries ``kind`` (``latency`` / ``error_rate``) plus
        the matching dataclass fields, e.g.::

            [{"kind": "latency", "name": "explain-p99",
              "histogram": "explain", "percentile": 99,
              "threshold_s": 0.25},
             {"kind": "error_rate", "name": "deadline-budget",
              "errors": "explain_deadline_exceeded",
              "total": "explanations", "max_rate": 0.01}]
        """
        objectives: list[LatencyObjective | ErrorRateObjective] = []
        for index, entry in enumerate(config):
            if not isinstance(entry, dict):
                raise SLOConfigError(
                    f"objective #{index} is not an object: {entry!r}"
                )
            kind = entry.get("kind")
            fields = {k: v for k, v in entry.items() if k != "kind"}
            try:
                if kind == "latency":
                    objectives.append(LatencyObjective(**fields))
                elif kind == "error_rate":
                    objectives.append(ErrorRateObjective(**fields))
                else:
                    raise SLOConfigError(
                        f"objective #{index} has unknown kind {kind!r} "
                        f"(expected 'latency' or 'error_rate')"
                    )
            except TypeError as error:
                raise SLOConfigError(
                    f"objective #{index} ({kind}): {error}"
                ) from error
        return cls(objectives)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, metrics: MetricsRegistry) -> SLOReport:
        statuses = []
        for objective in self.objectives:
            if isinstance(objective, LatencyObjective):
                statuses.append(self._evaluate_latency(objective, metrics))
            else:
                statuses.append(self._evaluate_error_rate(objective, metrics))
        return SLOReport(statuses)

    @staticmethod
    def _evaluate_latency(
        objective: LatencyObjective, metrics: MetricsRegistry
    ) -> SLOStatus:
        histogram = metrics.find_histogram(objective.histogram)
        if histogram is None or histogram.count == 0:
            return SLOStatus(
                name=objective.name, kind=objective.kind,
                measured=0.0, threshold=objective.threshold_s, ok=True,
                detail=f"no samples in {objective.histogram!r}",
            )
        measured = histogram.percentile(objective.percentile)
        ok = measured <= objective.threshold_s
        return SLOStatus(
            name=objective.name, kind=objective.kind,
            measured=measured, threshold=objective.threshold_s, ok=ok,
            detail=(
                f"p{objective.percentile:g}({objective.histogram}) = "
                f"{measured * 1000:.2f} ms "
                f"{'<=' if ok else '>'} {objective.threshold_s * 1000:.2f} ms"
            ),
        )

    @staticmethod
    def _evaluate_error_rate(
        objective: ErrorRateObjective, metrics: MetricsRegistry
    ) -> SLOStatus:
        errors = metrics.counter_value(objective.errors)
        total = metrics.counter_value(objective.total) + errors
        if total < objective.min_events:
            return SLOStatus(
                name=objective.name, kind=objective.kind,
                measured=0.0, threshold=objective.max_rate, ok=True,
                detail=f"{total} events < min_events {objective.min_events}",
            )
        rate = errors / total
        ok = rate <= objective.max_rate
        return SLOStatus(
            name=objective.name, kind=objective.kind,
            measured=rate, threshold=objective.max_rate, ok=ok,
            detail=(
                f"{objective.errors}/{objective.total} = {errors}/{total} "
                f"({rate:.4f}) {'<=' if ok else '>'} {objective.max_rate}"
            ),
        )

    # ------------------------------------------------------------------
    # Health signal consumers
    # ------------------------------------------------------------------
    def publish(self, metrics: MetricsRegistry) -> SLOReport:
        """Evaluate and publish verdict gauges into the same registry.

        Each objective sets ``slo.<name>.ok`` (1/0) and
        ``slo.<name>.value``; the overall verdict lands in
        ``slo.healthy`` — the signals a scrape or an admission
        controller reads.
        """
        report = self.evaluate(metrics)
        for status in report:
            metrics.set_gauge(f"slo.{status.name}.ok", 1.0 if status.ok else 0.0)
            metrics.set_gauge(f"slo.{status.name}.value", status.measured)
        metrics.set_gauge("slo.healthy", 1.0 if report.healthy else 0.0)
        return report

    def drive_breaker(self, breaker, metrics: MetricsRegistry) -> SLOReport:
        """Feed one evaluation into a circuit breaker's failure window.

        ``breaker`` is a
        :class:`~repro.resilience.breaker.CircuitBreaker` (anything with
        ``observe_health``).  Call this periodically: each pass records
        one healthy/unhealthy outcome, so *sustained* breaches trip the
        breaker the same way repeated backend failures would, and
        recovery closes it through the normal half-open probe path.
        """
        report = self.publish(metrics)
        breaker.observe_health(report.healthy)
        return report
