"""The query flight recorder: request-scoped trace context + ring buffer.

The base obs layer (spans, histograms) says *where time goes in
aggregate*; it cannot say which query caused a slow p99 bucket.  A
:class:`FlightRecorder` closes that gap with per-request **flight
records**: every service request (session build, single explain, batch,
per-batch worker task) opens a record carrying a query id and the
compile fingerprint, accumulates phase timings, kernel/cache counters
and degradation events while the request runs, and lands in a bounded
ring buffer of recent flights on close.  The buffer is dumpable as a
``repro-flight/1`` JSON document, and histogram exemplars (see
:meth:`~repro.obs.metrics.Histogram.observe`) carry the query id, so a
p99 outlier resolves to a replayable flight record.

Design constraints mirror the tracer's:

* **near-zero overhead when disabled** — a disabled recorder hands out
  one shared no-op record from every :meth:`FlightRecorder.record` call
  and :meth:`FlightRecorder.current` returns ``None`` after a single
  attribute check, so instrumentation stays in hot paths
  unconditionally;
* **explicit cross-thread propagation** — the current record is tracked
  per execution context (a :class:`contextvars.ContextVar`, so plain
  threads see a per-thread stack and interleaved asyncio tasks on one
  loop thread each see their own — concurrent coroutines cannot corrupt
  each other's current record or mis-parent children); executor worker
  threads do not inherit the submitting context and join the request's
  flight via :meth:`FlightRecorder.attach` (the same pattern as
  :meth:`~repro.obs.trace.Tracer.attach` for spans);
* **bounded everything** — the ring buffer holds the most recent
  ``capacity`` records and each record keeps at most ``max_events``
  events (drops are counted, never silent).
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from typing import Any, Iterator

#: Version tag of the serialized flight-record layout.
FLIGHT_FORMAT = "repro-flight/1"


class _PhaseTimer:
    """Context manager accumulating one named phase on a record."""

    __slots__ = ("_record", "_name", "_started")

    def __init__(self, record: "FlightRecord", name: str):
        self._record = record
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._record.add_phase(
            self._name, time.perf_counter() - self._started
        )


class FlightRecord:
    """One request's flight: identity, phases, counters, events.

    Usable as a context manager (entering installs it as the thread's
    current record, exiting closes it into the recorder's ring buffer).
    Mutation is lock-protected — a batch record is updated concurrently
    by its worker tasks.
    """

    __slots__ = (
        "query_id", "kind", "query", "fingerprint", "parent_id",
        "start_s", "end_s", "status", "phases", "counts", "events",
        "events_dropped", "attrs", "_recorder", "_lock",
    )

    def __init__(
        self,
        recorder: "FlightRecorder",
        query_id: str,
        kind: str,
        query: str | None = None,
        fingerprint: str | None = None,
        parent_id: str | None = None,
        **attrs: Any,
    ):
        self._recorder = recorder
        self._lock = threading.Lock()
        self.query_id = query_id
        self.kind = kind
        self.query = query
        self.fingerprint = fingerprint
        self.parent_id = parent_id
        self.start_s = 0.0
        self.end_s: float | None = None
        self.status = "ok"
        self.phases: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.events: list[dict] = []
        self.events_dropped = 0
        self.attrs = dict(attrs)

    # ------------------------------------------------------------------
    # Telemetry intake
    # ------------------------------------------------------------------
    def phase(self, name: str) -> _PhaseTimer:
        """Time one named phase of this flight (re-entry accumulates)."""
        return _PhaseTimer(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self.phases[name] = self.phases.get(name, 0.0) + seconds

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a cheap per-flight counter (kernel firings, cache hits)."""
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + amount

    def event(self, kind: str, **data: Any) -> None:
        """Append a bounded event (fallbacks, breaker trips, deadlines)."""
        with self._lock:
            if len(self.events) >= self._recorder.max_events:
                self.events_dropped += 1
                return
            entry = {"kind": kind}
            entry.update(data)
            self.events.append(entry)

    def set(self, **attrs: Any) -> "FlightRecord":
        """Attach (or overwrite) identity attributes on an open record.

        ``fingerprint`` is special-cased so the compile fingerprint can
        be filled in once compilation resolves it.
        """
        with self._lock:
            fingerprint = attrs.pop("fingerprint", None)
            if fingerprint is not None:
                self.fingerprint = fingerprint
            self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "query_id": self.query_id,
                "kind": self.kind,
                "query": self.query,
                "fingerprint": self.fingerprint,
                "parent": self.parent_id,
                "start_s": round(self.start_s, 9),
                "duration_s": round(self.duration_s, 9),
                "status": self.status,
                "phases": {
                    name: round(seconds, 9)
                    for name, seconds in sorted(self.phases.items())
                },
                "counts": dict(sorted(self.counts.items())),
                "events": [dict(event) for event in self.events],
                "events_dropped": self.events_dropped,
                "attrs": dict(self.attrs),
            }

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "FlightRecord":
        self.start_s = time.perf_counter() - self._recorder.epoch
        self._recorder._push(self)
        return self

    def __exit__(self, exc_type: type | None, exc: object, tb: object) -> None:
        # Mutations under the lock: a batch record's worker tasks may
        # still be appending events/attrs while the batch thread closes.
        with self._lock:
            self.end_s = time.perf_counter() - self._recorder.epoch
            if exc_type is not None:
                self.status = "error"
                self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightRecord({self.kind!r}, id={self.query_id!r})"


class _NullFlightRecord:
    """The shared do-nothing record a disabled recorder hands out.

    Every method no-ops; ``phase()`` returns the singleton itself so it
    can serve as its own context manager.  ``query_id`` is ``None``,
    which downstream exemplar plumbing treats as "no exemplar".
    """

    __slots__ = ()

    query_id = None
    kind = None
    query = None
    fingerprint = None
    parent_id = None

    def __enter__(self) -> "_NullFlightRecord":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def phase(self, name: str) -> "_NullFlightRecord":
        return self

    def add_phase(self, name: str, seconds: float) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def event(self, kind: str, **data: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullFlightRecord":
        return self


#: The singleton no-op flight record (one per process).
NULL_FLIGHT_RECORD = _NullFlightRecord()


class FlightRecorder:
    """A bounded ring buffer of per-request flight records.

    Parameters
    ----------
    capacity:
        Number of most recent closed records retained.
    max_events:
        Per-record event bound (drops beyond it are counted).
    enabled:
        When ``False``, :meth:`record` returns the shared no-op record
        and :meth:`current` returns ``None`` — the documented
        near-zero-overhead mode for production hot paths.
    id_prefix:
        Prepended to every minted query id.  Process-backed serving
        workers pass ``"w3-"`` so ids stay globally unique after the
        parent ingests their records (``w3-q12`` vs the parent's
        ``q-12``).
    """

    def __init__(
        self,
        capacity: int = 256,
        max_events: int = 64,
        enabled: bool = True,
        id_prefix: str = "",
    ):
        self.enabled = enabled
        self.capacity = capacity
        self.max_events = max_events
        self.id_prefix = id_prefix
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._ring: deque[FlightRecord] = deque(maxlen=capacity)
        # The current-record stack is context-local, not thread-local:
        # under asyncio many tasks interleave on one loop thread, and a
        # thread-local stack lets task B pop task A's record (or parent
        # its own under A's).  A ContextVar holding an immutable tuple
        # gives each task — and each plain thread — an isolated stack.
        self._stack: contextvars.ContextVar[tuple[FlightRecord, ...]] = (
            contextvars.ContextVar(f"flight_stack_{id(self)}", default=())
        )

    # ------------------------------------------------------------------
    # Record creation and the per-thread current record
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        query: str | None = None,
        query_id: str | None = None,
        fingerprint: str | None = None,
        **attrs: Any,
    ):
        """Open a flight record (a context manager).

        The record becomes the calling thread's *current* flight while
        open; a record opened under another becomes its child
        (``parent`` carries the enclosing record's query id).  Disabled
        recorders return the shared no-op record.
        """
        if not self.enabled:
            return NULL_FLIGHT_RECORD
        if query_id is None:
            with self._lock:
                query_id = f"{self.id_prefix}q-{self._next_id}"
                self._next_id += 1
        parent = self.current()
        return FlightRecord(
            self, query_id, kind, query=query, fingerprint=fingerprint,
            parent_id=parent.query_id if parent is not None else None,
            **attrs,
        )

    def current(self) -> FlightRecord | None:
        """The calling context's innermost open flight record, if any."""
        if not self.enabled:
            return None
        stack = self._stack.get()
        return stack[-1] if stack else None

    def attach(self, record: FlightRecord | _NullFlightRecord | None):
        """Adopt ``record`` as the calling thread's current flight.

        The cross-thread propagation primitive: a thread-pool worker
        attaches the submitting request's record so everything it does
        (kernel firings, cache lookups, nested records) lands on the
        right flight.  Attaching ``None`` or the no-op record is a
        no-op, so callers never branch.
        """
        if not isinstance(record, FlightRecord):
            return _NOOP_ATTACH
        return _Attachment(self, record)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def records(self) -> tuple[FlightRecord, ...]:
        """Closed records, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return tuple(self._ring)

    def find(self, query_id: str) -> FlightRecord | None:
        """The most recent closed record with ``query_id``, if retained."""
        with self._lock:
            for record in reversed(self._ring):
                if record.query_id == query_id:
                    return record
        return None

    def document(self, meta: dict | None = None) -> dict:
        """The ring buffer as a ``repro-flight/1`` JSON document."""
        records = self.records()
        return {
            "format": FLIGHT_FORMAT,
            "meta": dict(meta or {}),
            "capacity": self.capacity,
            "records": [record.to_dict() for record in records],
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------
    def drain(self) -> list[dict]:
        """Closed records as dicts, clearing the ring.

        The worker-side half of process-backed serving: after each
        request the child drains its recorder and ships the payload to
        the parent, which folds it back in with :meth:`ingest`.
        """
        with self._lock:
            records = tuple(self._ring)
            self._ring.clear()
        return [record.to_dict() for record in records]

    def ingest(self, payloads: list[dict]) -> None:
        """Rebuild drained record dicts into this recorder's ring.

        Reconstructed records are closed (never thread-current); their
        relative timing is preserved by rebasing ``start_s`` onto this
        recorder's epoch is *not* attempted — the shipped offsets are
        kept verbatim, which is fine for inspection (each record's
        ``duration_s`` and phases are what matter downstream).
        """
        rebuilt = []
        for payload in payloads:
            record = FlightRecord(
                self,
                payload.get("query_id", "?"),
                payload.get("kind", "?"),
                query=payload.get("query"),
                fingerprint=payload.get("fingerprint"),
                parent_id=payload.get("parent"),
            )
            record.start_s = payload.get("start_s", 0.0)
            record.end_s = record.start_s + payload.get("duration_s", 0.0)
            record.status = payload.get("status", "ok")
            record.phases = dict(payload.get("phases", {}))
            record.counts = dict(payload.get("counts", {}))
            record.events = [dict(event) for event in payload.get("events", [])]
            record.events_dropped = payload.get("events_dropped", 0)
            record.attrs = dict(payload.get("attrs", {}))
            rebuilt.append(record)
        with self._lock:
            self._ring.extend(rebuilt)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self) -> Iterator[FlightRecord]:
        return iter(self.records())

    # ------------------------------------------------------------------
    # Internal bookkeeping (called by FlightRecord / _Attachment)
    # ------------------------------------------------------------------
    def _push(self, record: FlightRecord) -> None:
        self._stack.set(self._stack.get() + (record,))

    def _pop(self, record: FlightRecord, close: bool = True) -> None:
        stack = self._stack.get()
        if stack and stack[-1] is record:
            self._stack.set(stack[:-1])
        elif record in stack:  # out-of-order close: be forgiving
            self._stack.set(
                tuple(entry for entry in stack if entry is not record)
            )
        if close:
            with self._lock:
                self._ring.append(record)


class _Attachment:
    """Context manager installing a foreign record as thread-current."""

    __slots__ = ("_recorder", "_record")

    def __init__(self, recorder: FlightRecorder, record: FlightRecord):
        self._recorder = recorder
        self._record = record

    def __enter__(self) -> FlightRecord:
        self._recorder._push(self._record)
        return self._record

    def __exit__(self, *exc_info: object) -> None:
        self._recorder._pop(self._record, close=False)


class _NoopAttachment:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_ATTACH = _NoopAttachment()


def write_flight(recorder: FlightRecorder, path, meta: dict | None = None) -> None:
    """Serialize the recorder's ring buffer as ``repro-flight/1`` JSON."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(recorder.document(meta=meta), handle, indent=2, default=str)
        handle.write("\n")


#: The process-default recorder: permanently disabled, shared by all
#: uninstrumented runs.  ``repro.obs.observed(flight=...)`` swaps in a
#: live one.
NULL_FLIGHT_RECORDER = FlightRecorder(enabled=False)
