"""Exporters: JSON-lines traces, the stats document, Prometheus text.

Three consumers, three renderings of the same telemetry:

* **trace JSON-lines** — one span per line, replayable into a tree by
  :func:`parse_trace_jsonl` + :func:`span_tree`; the format humans and
  regression tooling diff after a slow run;
* **the stats document** — a single JSON object
  (:func:`stats_document`) bundling registry counters/gauges/histogram
  summaries, cache telemetry, chase statistics and a per-name span
  aggregation; benchmarks write it next to their ``BENCH_*.json`` and CI
  fails when its top-level keys go missing;
* **Prometheus text** (:func:`render_prometheus`) — counters, gauges
  and summary quantiles in the exposition format, for scraping the
  service in a deployment.
"""

from __future__ import annotations

import io
import json
import re
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .trace import Span, Tracer

#: Version tags of the serialized layouts.
TRACE_FORMAT = "repro-trace/1"
STATS_FORMAT = "repro-stats/1"

#: Top-level keys every stats document carries (CI gates on these).
STATS_DOCUMENT_KEYS = (
    "format", "counters", "gauges", "histograms", "caches", "chase", "spans",
    "profile",
)


# ----------------------------------------------------------------------
# Trace: JSON-lines out, span tree back in
# ----------------------------------------------------------------------

def trace_jsonl(tracer: Tracer) -> str:
    """The finished spans as JSON-lines, headed by a format record."""
    buffer = io.StringIO()
    header = {"format": TRACE_FORMAT, "spans": len(tracer.finished())}
    buffer.write(json.dumps(header) + "\n")
    for span in tracer.finished():
        buffer.write(json.dumps(span.to_dict(), default=str) + "\n")
    return buffer.getvalue()


def write_trace(tracer: Tracer, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_jsonl(tracer))


def parse_trace_jsonl(text: str) -> list[dict]:
    """Parse :func:`trace_jsonl` output back into span records.

    The header line is validated and dropped; spans come back in file
    (= completion) order.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"unsupported trace format {header.get('format')!r} "
            f"(expected {TRACE_FORMAT!r})"
        )
    return [json.loads(line) for line in lines[1:]]


def span_tree(spans: Iterable[dict]) -> list[dict]:
    """Nest flat span records into parent/child trees.

    Returns the list of root spans; every record gains a ``children``
    list ordered by start time.  Orphaned parents (spans still open when
    the trace was cut) are promoted to roots rather than dropped.
    """
    records = [dict(span) for span in spans]
    by_id = {record["id"]: record for record in records}
    roots: list[dict] = []
    for record in records:
        record.setdefault("children", [])
    for record in records:
        parent = by_id.get(record.get("parent"))
        if parent is None:
            roots.append(record)
        else:
            parent["children"].append(record)
    def sort_children(record: dict) -> None:
        record["children"].sort(key=lambda child: child.get("start_s", 0.0))
        for child in record["children"]:
            sort_children(child)
    roots.sort(key=lambda record: record.get("start_s", 0.0))
    for root in roots:
        sort_children(root)
    return roots


def span_aggregate(spans: Iterable[Span]) -> dict[str, dict]:
    """Per-name totals over finished spans (count, total and max time)."""
    aggregate: dict[str, dict] = {}
    for span in spans:
        entry = aggregate.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.duration_s
        entry["max_s"] = max(entry["max_s"], span.duration_s)
    return dict(sorted(aggregate.items()))


# ----------------------------------------------------------------------
# The stats document
# ----------------------------------------------------------------------

def stats_document(
    metrics: MetricsRegistry,
    tracer: Tracer | None = None,
    chase: Any = None,
    meta: dict | None = None,
    profile: Any = None,
    slo: Any = None,
) -> dict:
    """One structured JSON document describing an observed run.

    ``chase`` is a :class:`~repro.engine.chase.ChaseStats` (or anything
    with a ``snapshot()``); ``profile`` a
    :class:`~repro.obs.profile.KernelProfiler` (or its snapshot
    mapping); ``slo`` an :class:`~repro.obs.slo.SLOReport`; ``meta``
    carries free-form run identity (app name, argv, ...).  Every
    document has the same top-level keys (:data:`STATS_DOCUMENT_KEYS`)
    so downstream tooling can gate on presence without caring which
    stages actually ran; ``slo`` joins only when a report is passed.
    """
    snapshot = MetricsRegistry.snapshot(metrics)
    document = {
        "format": STATS_FORMAT,
        "meta": dict(meta or {}),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "caches": snapshot["caches"],
        "chase": {},
        "spans": {},
        "profile": {},
    }
    if chase is not None:
        document["chase"] = (
            chase.snapshot() if hasattr(chase, "snapshot") else dict(chase)
        )
    if tracer is not None and tracer.enabled:
        document["spans"] = span_aggregate(tracer.finished())
    if profile is not None:
        document["profile"] = (
            profile.snapshot() if hasattr(profile, "snapshot")
            else dict(profile)
        )
    if slo is not None:
        document["slo"] = (
            slo.snapshot() if hasattr(slo, "snapshot") else dict(slo)
        )
    return document


def write_stats(document: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, default=str)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    return prefix + _PROM_NAME.sub("_", name)


def render_prometheus(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Counters and gauges map directly; histograms render as summaries
    (quantile-labelled series plus ``_sum``/``_count``); attached caches
    contribute labelled gauges (hits, misses, evictions, size).
    """
    snapshot = MetricsRegistry.snapshot(metrics)
    lines: list[str] = []
    for name, value in sorted(snapshot["counters"].items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(snapshot["gauges"].items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, summary in snapshot["histograms"].items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for percentile in (50, 95, 99):
            quantile = percentile / 100.0
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f'{summary[f"p{percentile}"]}'
            )
        lines.append(f"{metric}_sum {summary['total']}")
        lines.append(f"{metric}_count {summary['count']}")
    for cache_name, cache in snapshot["caches"].items():
        for key, value in cache.items():
            if key == "regions" and isinstance(value, dict):
                # Per-region breakdown (explain/why/violation/whynot):
                # one labelled series per region per stat.
                for region_name, region in sorted(value.items()):
                    for stat, stat_value in region.items():
                        if not isinstance(stat_value, (int, float)):
                            continue
                        metric = _prom_name(f"cache_region_{stat}")
                        lines.append(
                            f'{metric}{{cache="{cache_name}",'
                            f'region="{region_name}"}} {stat_value}'
                        )
                continue
            if not isinstance(value, (int, float)):
                continue
            metric = _prom_name(f"cache_{key}")
            lines.append(f'{metric}{{cache="{cache_name}"}} {value}')
    return "\n".join(lines) + "\n"
