"""File formats: programs, fact bases and glossaries on disk.

Three simple formats make the system usable as a tool rather than a
library:

* **program files** (``.vada``) — the textual rule syntax of
  :mod:`repro.datalog.parser`, plus two pragmas in comments::

      % @name company_control
      % @goal Control
      sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).

* **fact files** (``.facts``) — one ground atom per line, same term
  syntax, ``%``/``#`` comments::

      Own(AlphaHolding, VehicleOne, 0.7).
      Company(AlphaHolding).

* **glossary files** (``.json``) — the data dictionary::

      {"Own": {"params": ["x", "y", "s"],
               "text": "<x> owns <s> shares of <y>"}}
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from .core.glossary import DomainGlossary
from .datalog.atoms import Fact
from .datalog.errors import ParseError
from .datalog.parser import _TokenStream, _parse_atom, _tokenize
from .datalog.program import Program
from .datalog.parser import parse_program
from .datalog.terms import Null, Term, intern_constant
from .engine.database import Database
from .engine.symbols import SymbolTable

_PRAGMA_RE = re.compile(r"^[%#]\s*@(name|goal)\s+(\S+)\s*$", re.MULTILINE)


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------

def loads_program(
    text: str, name: str | None = None, goal: str | None = None
) -> Program:
    """Parse program text honouring ``@name``/``@goal`` pragmas.

    Explicit arguments override pragmas.
    """
    pragmas = dict(_PRAGMA_RE.findall(text))
    return parse_program(
        text,
        name=name or pragmas.get("name", "program"),
        goal=goal or pragmas.get("goal"),
    )


def load_program(
    path: str | Path, name: str | None = None, goal: str | None = None
) -> Program:
    """Load a program file (see :func:`loads_program`)."""
    return loads_program(Path(path).read_text(encoding="utf-8"), name, goal)


# ----------------------------------------------------------------------
# Facts
# ----------------------------------------------------------------------

def parse_fact(text: str) -> Fact:
    """Parse one ground atom, e.g. ``Own(A, B, 0.6)`` (trailing dot ok)."""
    stream = _TokenStream(_tokenize(text), text)
    atom = _parse_atom(stream)
    if stream.peek() is not None and stream.peek().kind == "DOT":  # type: ignore[union-attr]
        stream.next()
    if not stream.at_end():
        raise ParseError("trailing input after fact", text, 0)
    if not atom.is_fact():
        raise ParseError(f"fact {atom} contains variables", text, 0)
    return atom


def loads_facts(text: str) -> Database:
    """Parse a fact file body into a database."""
    database = Database()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        try:
            database.add(parse_fact(line))
        except ParseError as error:
            raise ParseError(
                f"line {line_number}: {error}", text, None
            ) from error
    return database


def load_facts(path: str | Path) -> Database:
    """Load a fact file into a database."""
    return loads_facts(Path(path).read_text(encoding="utf-8"))


def save_facts(database: Database | Iterable[Fact], path: str | Path) -> None:
    """Write a database (or any fact iterable) as a fact file."""
    lines = [f"{fact}." for fact in database]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Database snapshots (repro-db/1): facts plus their interned encoding
# ----------------------------------------------------------------------

#: Snapshot format identifier (bump on incompatible layout changes).
DATABASE_SNAPSHOT_FORMAT = "repro-db/1"


def _dump_term(term: Term) -> dict:
    if isinstance(term, Null):
        return {"null": term.label}
    return {"c": term.value}  # type: ignore[union-attr]


def _load_term(payload: dict) -> Term:
    if "null" in payload:
        return Null(int(payload["null"]))
    return intern_constant(payload["c"])


def dumps_database(database: Database) -> str:
    """Serialize a database as a ``repro-db/1`` JSON snapshot.

    The snapshot carries the symbol table (every interned term, in id
    order) and each fact as ``[predicate, [ids]]`` in global insertion
    sequence order, so a warm start rebuilds the *identical* columnar
    encoding: same ids, same insertion sequences, same index contents.

    One normalization caveat: the symbol table maps value-equal terms
    (``1``, ``1.0``, ``True``) to one id, so a snapshot stores only each
    id's canonical term.  Facts mixing value-equal constants of distinct
    types round-trip to the canonical spelling — their ``str()``
    rendering (what fact files and explanations show) is unchanged, as
    ``str(Constant(1.0)) == str(Constant(1)) == "1"``.
    """
    symbols = database.symbols
    payload = {
        "format": DATABASE_SNAPSHOT_FORMAT,
        "symbols": [_dump_term(term) for term in symbols],
        "facts": [
            [current.predicate, [symbols.lookup(t) for t in current.terms]]
            for current in database.facts()
        ],
    }
    return json.dumps(payload, ensure_ascii=False)


def loads_database(text: str) -> Database:
    """Rebuild a database from a ``repro-db/1`` snapshot.

    The symbol table is restored positionally first, then facts are added
    in their original sequence order from the canonical terms — interning
    finds the restored entries, so every id round-trips.
    """
    payload = json.loads(text)
    if payload.get("format") != DATABASE_SNAPSHOT_FORMAT:
        raise ParseError(
            f"not a {DATABASE_SNAPSHOT_FORMAT} snapshot: "
            f"format={payload.get('format')!r}",
            text, 0,
        )
    symbols = SymbolTable.restore(
        _load_term(entry) for entry in payload["symbols"]
    )
    database = Database(symbols=symbols)
    term = symbols.term
    for predicate, ids in payload["facts"]:
        database.add(Fact(predicate, tuple(term(i) for i in ids)))
    return database


def save_database(database: Database, path: str | Path) -> None:
    """Write a ``repro-db/1`` snapshot file."""
    Path(path).write_text(dumps_database(database) + "\n", encoding="utf-8")


def load_database(path: str | Path) -> Database:
    """Load a ``repro-db/1`` snapshot file."""
    return loads_database(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Compiled programs (warm-start artifacts, see repro.core.compiler)
# ----------------------------------------------------------------------

def save_compiled_program(compiled, path: str | Path) -> None:
    """Persist a :class:`~repro.core.compiler.CompiledProgram`.

    The artifact stores the content hashes, the enhancer configuration
    and the enhanced/review state of every pipeline; the deterministic
    templates are pure functions of program and glossary and are rebuilt
    on load.  A service that loads the artifact skips the LLM
    enhancement entirely (the expensive half of compilation).
    """
    payload = compiled.export_payload()
    Path(path).write_text(
        json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )


def load_compiled_program(path: str | Path, program, glossary, llm=None):
    """Load a compiled-program artifact saved by
    :func:`save_compiled_program`, validated against the live program and
    glossary (a stale artifact raises
    :class:`~repro.core.compiler.CompilationError`)."""
    from .core.compiler import CompiledProgram

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return CompiledProgram.from_payload(payload, program, glossary, llm=llm)


# ----------------------------------------------------------------------
# Glossaries
# ----------------------------------------------------------------------

def loads_glossary(text: str) -> DomainGlossary:
    """Parse a JSON data dictionary into a glossary."""
    raw = json.loads(text)
    if not isinstance(raw, dict):
        raise ParseError("glossary JSON must be an object", text, 0)
    glossary = DomainGlossary()
    for predicate, entry in raw.items():
        if not isinstance(entry, dict) or "params" not in entry or "text" not in entry:
            raise ParseError(
                f"glossary entry for {predicate!r} needs 'params' and 'text'",
                text, 0,
            )
        glossary.define(predicate, list(entry["params"]), str(entry["text"]))
    return glossary


def load_glossary(path: str | Path) -> DomainGlossary:
    """Load a JSON glossary file."""
    return loads_glossary(Path(path).read_text(encoding="utf-8"))


def dump_glossary(glossary: DomainGlossary, path: str | Path) -> None:
    """Write a glossary as a JSON data dictionary."""
    payload = {
        predicate: {
            "params": list(glossary.entry(predicate).params),
            "text": glossary.entry(predicate).text,
        }
        for predicate in sorted(glossary.predicates())
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )
