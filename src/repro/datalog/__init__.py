"""Datalog/Vadalog language substrate.

This subpackage implements the language fragment the paper's knowledge-graph
applications are written in: function-free Horn rules (TGDs) extended with
comparison conditions, arithmetic expressions and monotonic aggregations,
plus the dependency-graph machinery the structural analysis is built on.

Public surface::

    from repro.datalog import (
        Atom, fact, Constant, Variable, Null,
        Comparison, AggregateSpec, Rule, Program,
        parse_rule, parse_program, DependencyGraph,
    )
"""

from .aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from .analysis import (
    TerminationVerdict,
    WardednessReport,
    affected_positions,
    check_wardedness,
    is_guarded,
    is_linear,
    termination_guarantee,
)
from .atoms import Atom, Fact, Predicate, check_consistent_arities, fact
from .conditions import BinaryOp, Comparison, Expression, evaluate_expression
from .depgraph import DependencyEdge, DependencyGraph
from .errors import (
    ArityError,
    DatalogError,
    EvaluationError,
    GlossaryError,
    ParseError,
    SafetyError,
)
from .parser import iter_rules, parse_constraint, parse_program, parse_rule
from .program import Program, make_program
from .rules import Constraint, Rule, pretty_label
from .stratification import Stratification, StratificationError, stratify
from .terms import Constant, Null, NullFactory, Term, Variable, make_term
from .unify import (
    Substitution,
    apply_substitution,
    exists_homomorphism,
    find_homomorphisms,
    match_atom,
    unify_head_with_body_atom,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateSpec",
    "ArityError",
    "Atom",
    "BinaryOp",
    "Comparison",
    "Constant",
    "Constraint",
    "DatalogError",
    "DependencyEdge",
    "DependencyGraph",
    "EvaluationError",
    "Expression",
    "Fact",
    "GlossaryError",
    "Null",
    "NullFactory",
    "ParseError",
    "Predicate",
    "Program",
    "Rule",
    "SafetyError",
    "Stratification",
    "StratificationError",
    "Substitution",
    "Term",
    "TerminationVerdict",
    "Variable",
    "WardednessReport",
    "affected_positions",
    "apply_substitution",
    "check_consistent_arities",
    "evaluate_expression",
    "exists_homomorphism",
    "fact",
    "check_wardedness",
    "find_homomorphisms",
    "is_guarded",
    "is_linear",
    "iter_rules",
    "make_program",
    "make_term",
    "match_atom",
    "parse_constraint",
    "parse_program",
    "parse_rule",
    "pretty_label",
    "stratify",
    "termination_guarantee",
    "unify_head_with_body_atom",
]
