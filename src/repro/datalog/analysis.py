"""Static program analysis: linearity, guardedness, wardedness.

The paper restricts itself to "Vadalog programs involved in reasoning
tasks whose termination is guaranteed" (Section 3), pointing to the warded
Datalog± results behind the Vadalog system [6, 11].  This module provides
the corresponding static checks so that a deployed application can be
vetted before activation:

* **linear** — every rule has at most one intensional body atom;
* **guarded** — every rule has a body atom containing all of the rule's
  universally quantified variables;
* **warded** — the classical wardedness condition on *dangerous*
  variables: positions that may carry invented nulls are computed as the
  **affected positions** fixpoint, a variable is *harmful* in a rule when
  all its body occurrences sit in affected positions, *dangerous* when it
  is harmful and propagated to the head; a program is warded iff in every
  rule all dangerous variables occur together in a single body atom (the
  ward) that shares only harmless variables with the rest of the body.

:func:`termination_guarantee` combines the checks into the verdict the
reasoning engine's restricted chase relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .atoms import Atom
from .program import Program
from .rules import Rule
from .terms import Variable

#: A position: (predicate name, argument index).
Position = tuple[str, int]


def affected_positions(program: Program) -> frozenset[Position]:
    """The positions that may carry labelled nulls during the chase.

    Base case: head positions holding existentially quantified variables.
    Induction: a head position holding a universally quantified variable
    all of whose body occurrences are in affected positions.
    """
    affected: set[Position] = set()
    for rule in program.rules:
        for index, term in enumerate(rule.head.terms):
            if isinstance(term, Variable) and term in rule.existentials:
                affected.add((rule.head_predicate, index))

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            for index, term in enumerate(rule.head.terms):
                if not isinstance(term, Variable):
                    continue
                if (rule.head_predicate, index) in affected:
                    continue
                if term in rule.existentials:
                    continue
                occurrences = _body_positions_of(rule, term)
                if occurrences and all(
                    position in affected for position in occurrences
                ):
                    affected.add((rule.head_predicate, index))
                    changed = True
    return frozenset(affected)


def _body_positions_of(rule: Rule, variable: Variable) -> list[Position]:
    positions = []
    for atom in rule.body:
        for index, term in enumerate(atom.terms):
            if term == variable:
                positions.append((atom.predicate, index))
    return positions


def harmful_variables(
    rule: Rule, affected: frozenset[Position]
) -> frozenset[Variable]:
    """Variables of ``rule`` whose every body occurrence is affected."""
    harmful = set()
    for variable in rule.body_variables():
        occurrences = _body_positions_of(rule, variable)
        if occurrences and all(position in affected for position in occurrences):
            harmful.add(variable)
    return frozenset(harmful)


def dangerous_variables(
    rule: Rule, affected: frozenset[Position]
) -> frozenset[Variable]:
    """Harmful variables that the rule propagates into its head."""
    head_variables = rule.head.variable_set()
    return frozenset(
        v for v in harmful_variables(rule, affected) if v in head_variables
    )


# ----------------------------------------------------------------------
# Fragment checks
# ----------------------------------------------------------------------

def is_linear(program: Program) -> bool:
    """At most one intensional atom per body (linear Datalog±)."""
    intensional = program.intensional_predicates()
    for rule in program.rules:
        count = sum(1 for atom in rule.body if atom.predicate in intensional)
        if count > 1:
            return False
    return True


def is_guarded_rule(rule: Rule) -> bool:
    """Some body atom contains every universally quantified variable."""
    body_variables = rule.body_variables()
    return any(
        body_variables <= atom.variable_set() for atom in rule.body
    )


def is_guarded(program: Program) -> bool:
    return all(is_guarded_rule(rule) for rule in program.rules)


@dataclass(frozen=True)
class WardednessReport:
    """Outcome of the wardedness check, with the offending rules."""

    warded: bool
    affected: frozenset[Position]
    offending_rules: tuple[str, ...]

    def describe(self) -> str:
        status = "warded" if self.warded else "NOT warded"
        lines = [f"Program is {status}."]
        if self.affected:
            rendered = ", ".join(
                f"{predicate}[{index}]"
                for predicate, index in sorted(self.affected)
            )
            lines.append(f"affected positions: {rendered}")
        if self.offending_rules:
            lines.append(f"offending rules: {', '.join(self.offending_rules)}")
        return "\n".join(lines)


def check_wardedness(program: Program) -> WardednessReport:
    """The wardedness condition of Vadalog's core fragment."""
    affected = affected_positions(program)
    offending: list[str] = []
    for rule in program.rules:
        dangerous = dangerous_variables(rule, affected)
        if not dangerous:
            continue
        ward = _find_ward(rule, dangerous, affected)
        if ward is None:
            offending.append(rule.label)
    return WardednessReport(
        warded=not offending,
        affected=affected,
        offending_rules=tuple(offending),
    )


def _find_ward(
    rule: Rule,
    dangerous: frozenset[Variable],
    affected: frozenset[Position],
) -> Atom | None:
    """An atom containing all dangerous variables and sharing only
    harmless variables with the rest of the body."""
    harmful = harmful_variables(rule, affected)
    for candidate in rule.body:
        if not dangerous <= candidate.variable_set():
            continue
        others: set[Variable] = set()
        for atom in rule.body:
            if atom is candidate:
                continue
            others.update(atom.variables())
        shared = candidate.variable_set() & others
        if all(variable not in harmful for variable in shared):
            return candidate
    return None


# ----------------------------------------------------------------------
# Binding-order analysis (used by the join planner)
# ----------------------------------------------------------------------

def canonical_binding_order(rule: Rule) -> tuple[Variable, ...]:
    """The order in which naive evaluation first binds the rule's variables.

    Body atoms left to right, positions left to right, then assignment
    targets in declaration order.  The planned strategy reorders atoms for
    execution but re-serializes every recorded binding in this order, so
    provenance records render byte-identically across strategies.
    """
    ordered: list[Variable] = []
    seen: set[Variable] = set()
    for atom in rule.body:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.add(term)
                ordered.append(term)
    for variable, _expression in rule.assignments:
        if variable not in seen:
            seen.add(variable)
            ordered.append(variable)
    return tuple(ordered)


def atom_binding_profile(
    atom: Atom, bound: frozenset[Variable] | set[Variable]
) -> tuple[int, int, int]:
    """Selectivity signals of matching ``atom`` given already-``bound`` vars.

    Returns ``(constants, bound_positions, free_positions)`` — the counts
    the planner's greedy ordering ranks on (constants > bound variables >
    free positions).
    """
    constants = 0
    bound_positions = 0
    free_positions = 0
    for term in atom.terms:
        if isinstance(term, Variable):
            if term in bound:
                bound_positions += 1
            else:
                free_positions += 1
        else:
            constants += 1
    return constants, bound_positions, free_positions


# ----------------------------------------------------------------------
# Termination verdict
# ----------------------------------------------------------------------

class TerminationVerdict(Enum):
    """Why (or whether) the restricted chase is guaranteed to terminate."""

    NO_EXISTENTIALS = "terminates: no existential quantification"
    WARDED = "terminates: warded (restricted chase)"
    UNKNOWN = "unknown: outside the checked terminating fragments"


def termination_guarantee(program: Program) -> TerminationVerdict:
    """The engine-facing verdict used to vet new applications."""
    if not any(rule.is_existential for rule in program.rules):
        return TerminationVerdict.NO_EXISTENTIALS
    if check_wardedness(program).warded:
        return TerminationVerdict.WARDED
    return TerminationVerdict.UNKNOWN
