"""Parser for the Vadalog-like textual rule syntax.

The grammar covers exactly the language fragment used by the paper's
knowledge-graph applications:

.. code-block:: text

    program   := (rule ".")* | rule ("\\n" rule)*
    rule      := [label ":"] body "->" (atom | "false")
    body      := item ("," item)*
    item      := ["not"] atom | comparison | aggregate
    atom      := PREDICATE "(" term ("," term)* ")"
    aggregate := VARIABLE "=" FUNC "(" expr ")"
    comparison:= expr OP expr          with OP in  > < >= <= == != =
    expr      := sum of products over terms, with ( ) grouping
    term      := VARIABLE | NUMBER | STRING | SYMBOL

Lexical conventions (matching the paper's notation):

* identifiers starting with a lowercase letter are **variables**;
* identifiers starting with an uppercase letter inside an atom's argument
  list or in expressions are **symbolic constants** (entity names);
* numbers are ints or floats; strings use double quotes;
* ``not Atom(...)`` negates a body atom (stratified semantics) and a
  ``false`` head turns the rule into a negative constraint φ → ⊥;
* ``%`` and ``#`` start a comment running to end of line;
* a rule may be prefixed with ``label:`` to name it (``sigma1: ...``);
  unlabelled rules receive ``r1``, ``r2``, … in order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from .aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from .atoms import Atom
from .conditions import BinaryOp, Comparison, Expression
from .errors import ParseError
from .program import Program
from .rules import Constraint, Rule
from .terms import Term, Variable, intern_constant

# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_SPEC = [
    ("ARROW", r"->"),
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("STRING", r'"[^"]*"'),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("OP", r">=|<=|==|!=|>|<|="),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("DOT", r"\."),
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"[%#][^\n]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", text, position)
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _TokenStream:
    """Cursor over the token list with one-token lookahead."""

    def __init__(self, tokens: list[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    def peek(self, offset: int = 0) -> _Token | None:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self._text, len(self._text))
        self._index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} ({token.text!r})",
                self._text,
                token.position,
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    def error(self, message: str) -> ParseError:
        token = self.peek()
        position = token.position if token else len(self._text)
        return ParseError(message, self._text, position)


# ----------------------------------------------------------------------
# Recursive-descent parser
# ----------------------------------------------------------------------


def _parse_term(stream: _TokenStream) -> Term:
    # Constants are pooled (terms.intern_constant): repeated literals in
    # programs and fact files share one object per (type, value).
    token = stream.next()
    if token.kind == "NUMBER":
        return intern_constant(float(token.text) if "." in token.text else int(token.text))
    if token.kind == "STRING":
        return intern_constant(token.text[1:-1])
    if token.kind == "IDENT":
        if token.text[0].islower() or token.text[0] == "_":
            return Variable(token.text)
        return intern_constant(token.text)
    if token.kind == "MINUS":
        number = stream.expect("NUMBER")
        value = float(number.text) if "." in number.text else int(number.text)
        return intern_constant(-value)
    raise ParseError(f"expected a term, found {token.text!r}", stream._text, token.position)


def _parse_primary(stream: _TokenStream) -> Expression:
    token = stream.peek()
    if token is not None and token.kind == "LPAREN":
        stream.next()
        inner = _parse_expression(stream)
        stream.expect("RPAREN")
        return inner
    return _parse_term(stream)


def _parse_product(stream: _TokenStream) -> Expression:
    left = _parse_primary(stream)
    while True:
        token = stream.peek()
        if token is None or token.kind not in ("STAR", "SLASH"):
            return left
        stream.next()
        right = _parse_primary(stream)
        left = BinaryOp("*" if token.kind == "STAR" else "/", left, right)


def _parse_expression(stream: _TokenStream) -> Expression:
    left = _parse_product(stream)
    while True:
        token = stream.peek()
        if token is None or token.kind not in ("PLUS", "MINUS"):
            return left
        stream.next()
        right = _parse_product(stream)
        left = BinaryOp("+" if token.kind == "PLUS" else "-", left, right)


def _parse_atom(stream: _TokenStream) -> Atom:
    name = stream.expect("IDENT")
    stream.expect("LPAREN")
    terms: list[Term] = [_parse_term(stream)]
    while stream.peek() is not None and stream.peek().kind == "COMMA":  # type: ignore[union-attr]
        stream.next()
        terms.append(_parse_term(stream))
    stream.expect("RPAREN")
    return Atom(name.text, tuple(terms))


def _looks_like_atom(stream: _TokenStream) -> bool:
    first, second = stream.peek(), stream.peek(1)
    return (
        first is not None
        and first.kind == "IDENT"
        and first.text[0].isupper()
        and second is not None
        and second.kind == "LPAREN"
    )


def _looks_like_negated_atom(stream: _TokenStream) -> bool:
    first, second, third = (stream.peek(i) for i in range(3))
    return (
        first is not None and first.kind == "IDENT" and first.text == "not"
        and second is not None and second.kind == "IDENT"
        and second.text[0].isupper()
        and third is not None and third.kind == "LPAREN"
    )


def _looks_like_aggregate(stream: _TokenStream) -> bool:
    first, second, third, fourth = (stream.peek(i) for i in range(4))
    return (
        first is not None and first.kind == "IDENT"
        and second is not None and second.kind == "OP" and second.text == "="
        and third is not None and third.kind == "IDENT"
        and third.text in AGGREGATE_FUNCTIONS
        and fourth is not None and fourth.kind == "LPAREN"
    )


def _parse_aggregate(stream: _TokenStream) -> AggregateSpec:
    result = stream.expect("IDENT")
    stream.expect("OP")  # '='
    function = stream.expect("IDENT")
    stream.expect("LPAREN")
    argument = _parse_expression(stream)
    stream.expect("RPAREN")
    return AggregateSpec(Variable(result.text), function.text, argument)


def _parse_comparison(stream: _TokenStream) -> Comparison:
    left = _parse_expression(stream)
    op_token = stream.expect("OP")
    op = "==" if op_token.text == "=" else op_token.text
    right = _parse_expression(stream)
    return Comparison(op, left, right)


class _NegatedAtom:
    """Parser-internal wrapper marking a 'not P(...)' body item."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom


class _Equality:
    """Parser-internal ``var = expr`` item: resolved at rule assembly into
    either an equality condition (var bound by the body) or a computed
    assignment (var fresh)."""

    __slots__ = ("variable", "expression")

    def __init__(self, variable: Variable, expression):
        self.variable = variable
        self.expression = expression


def _looks_like_equality(stream: _TokenStream) -> bool:
    first, second = stream.peek(), stream.peek(1)
    return (
        first is not None and first.kind == "IDENT"
        and (first.text[0].islower() or first.text[0] == "_")
        and second is not None and second.kind == "OP" and second.text == "="
    )


def _parse_body_item(
    stream: _TokenStream,
) -> Atom | _NegatedAtom | Comparison | AggregateSpec | _Equality:
    if _looks_like_negated_atom(stream):
        stream.next()  # consume 'not'
        return _NegatedAtom(_parse_atom(stream))
    if _looks_like_aggregate(stream):
        return _parse_aggregate(stream)
    if _looks_like_atom(stream):
        return _parse_atom(stream)
    if _looks_like_equality(stream):
        variable = Variable(stream.next().text)
        stream.next()  # consume '='
        return _Equality(variable, _parse_expression(stream))
    return _parse_comparison(stream)


def _parse_rule_tokens(
    stream: _TokenStream, default_label: str
) -> Rule | Constraint:
    label = default_label
    first, second = stream.peek(), stream.peek(1)
    if (
        first is not None and first.kind == "IDENT"
        and second is not None and second.kind == "COLON"
    ):
        label = first.text
        stream.next()
        stream.next()

    body: list[Atom] = []
    negated: list[Atom] = []
    conditions: list[Comparison] = []
    equalities: list[_Equality] = []
    aggregate: AggregateSpec | None = None
    while True:
        item = _parse_body_item(stream)
        if isinstance(item, _NegatedAtom):
            negated.append(item.atom)
        elif isinstance(item, Atom):
            body.append(item)
        elif isinstance(item, Comparison):
            conditions.append(item)
        elif isinstance(item, _Equality):
            equalities.append(item)
        else:
            if aggregate is not None:
                raise stream.error("at most one aggregate per rule is supported")
            aggregate = item
        token = stream.next()
        if token.kind == "ARROW":
            break
        if token.kind != "COMMA":
            raise ParseError(
                f"expected ',' or '->' but found {token.text!r}",
                stream._text,
                token.position,
            )
    head_token = stream.peek()
    is_constraint = (
        head_token is not None
        and head_token.kind == "IDENT"
        and head_token.text in ("false", "False")
        and (stream.peek(1) is None or stream.peek(1).kind != "LPAREN")  # type: ignore[union-attr]
    )
    # Resolve var = expr items: an equality over a body-bound variable is
    # a comparison; over a fresh variable it is a computed assignment.
    body_variables = {v for atom in body for v in atom.variable_set()}
    assignments: list[tuple[Variable, object]] = []
    assigned: set[Variable] = set()
    for equality in equalities:
        if equality.variable in body_variables or equality.variable in assigned:
            conditions.append(
                Comparison("==", equality.variable, equality.expression)
            )
        else:
            assignments.append((equality.variable, equality.expression))
            assigned.add(equality.variable)
    if is_constraint:
        stream.next()
        if stream.peek() is not None and stream.peek().kind == "DOT":  # type: ignore[union-attr]
            stream.next()
        if aggregate is not None:
            raise stream.error("constraints cannot carry aggregates")
        if assignments:
            raise stream.error("constraints cannot carry assignments")
        return Constraint(
            label=label,
            body=tuple(body),
            conditions=tuple(conditions),
            negated=tuple(negated),
        )
    head = _parse_atom(stream)
    if stream.peek() is not None and stream.peek().kind == "DOT":  # type: ignore[union-attr]
        stream.next()
    return Rule(
        label=label,
        body=tuple(body),
        head=head,
        conditions=tuple(conditions),
        aggregate=aggregate,
        negated=tuple(negated),
        assignments=tuple(assignments),
    )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def parse_rule(text: str, label: str = "r1") -> Rule:
    """Parse a single rule, e.g.::

        parse_rule("Own(x,y,s), s > 0.5 -> Control(x,y)", label="sigma1")
    """
    stream = _TokenStream(_tokenize(text), text)
    rule = _parse_rule_tokens(stream, label)
    if not stream.at_end():
        raise stream.error("trailing input after rule")
    if isinstance(rule, Constraint):
        raise ParseError("expected a rule, found a constraint", text, 0)
    return rule


def parse_constraint(text: str, label: str = "c1") -> Constraint:
    """Parse a single negative constraint, e.g.::

        parse_constraint("Control(x, y), Control(y, x), x != y -> false")
    """
    stream = _TokenStream(_tokenize(text), text)
    constraint = _parse_rule_tokens(stream, label)
    if not stream.at_end():
        raise stream.error("trailing input after constraint")
    if not isinstance(constraint, Constraint):
        raise ParseError("expected a constraint (head 'false')", text, 0)
    return constraint


def _iter_statements(text: str) -> Iterator[Rule | Constraint]:
    stream = _TokenStream(_tokenize(text), text)
    counter = 0
    while not stream.at_end():
        counter += 1
        yield _parse_rule_tokens(stream, f"r{counter}")


def iter_rules(text: str) -> Iterator[Rule]:
    """Parse a multi-rule program text, yielding the rules in order
    (constraints are skipped; use parse_program to collect them)."""
    for statement in _iter_statements(text):
        if isinstance(statement, Rule):
            yield statement


def parse_program(text: str, name: str = "program", goal: str | None = None) -> Program:
    """Parse a full program; rules may carry ``label:`` prefixes and a
    ``false`` head turns a statement into a negative constraint.

    >>> program = parse_program('''
    ...     sigma1: Own(x,y,s), s > 0.5 -> Control(x,y).
    ...     sigma2: Company(x) -> Control(x,x).
    ... ''', name="control", goal="Control")
    >>> len(program)
    2
    """
    rules: list[Rule] = []
    constraints: list[Constraint] = []
    for statement in _iter_statements(text):
        if isinstance(statement, Rule):
            rules.append(statement)
        else:
            constraints.append(statement)
    if not rules:
        raise ParseError("program text contains no rules", text, 0)
    return Program(name, tuple(rules), goal, tuple(constraints))
