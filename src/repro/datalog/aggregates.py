"""Monotonic aggregation specifications.

Vadalog supports the aggregate functions ``sum``, ``prod``, ``min``, ``max``
and ``count`` together with SQL-like grouping, realized as *monotonic
aggregations* (paper, Section 3, citing [61]).  In a rule such as

    Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e)

the aggregate assignment ``e = sum(v)`` introduces the *result variable*
``e``, aggregating the *contribution expression* ``v`` over all body
homomorphisms that agree on the *group-by variables* — by default, every
body variable that also appears in the head other than the result variable
(here: ``c``).

The explanation machinery cares about one extra piece of information the
engine records per application: the list of *contributors* (the individual
homomorphisms and their values), because a single-contributor aggregation is
verbalized like a plain rule, while a multi-contributor one activates the
"dashed" reasoning-path variants (paper, Section 4.1, "Analysis of
Aggregations").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .conditions import Expression, expression_variables
from .errors import EvaluationError
from .terms import Variable

#: Names of the supported aggregation functions.
AGGREGATE_FUNCTIONS = ("sum", "prod", "min", "max", "count")


def _aggregate_sum(values: Sequence[float]) -> float:
    return math.fsum(values)


def _aggregate_prod(values: Sequence[float]) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result


def _aggregate_min(values: Sequence[float]) -> float:
    return min(values)


def _aggregate_max(values: Sequence[float]) -> float:
    return max(values)


def _aggregate_count(values: Sequence[float]) -> int:
    return len(values)


_EVALUATORS: dict[str, Callable[[Sequence[float]], float | int]] = {
    "sum": _aggregate_sum,
    "prod": _aggregate_prod,
    "min": _aggregate_min,
    "max": _aggregate_max,
    "count": _aggregate_count,
}


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """The aggregate assignment of a rule: ``result = func(argument)``.

    ``group_by`` may be left empty at construction time; the rule
    constructor fills it in with the default grouping (head variables minus
    the result variable) when the rule is assembled.
    """

    result: Variable
    function: str
    argument: Expression
    group_by: tuple[Variable, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.function not in _EVALUATORS:
            raise EvaluationError(
                f"unknown aggregate function {self.function!r}; "
                f"supported: {', '.join(AGGREGATE_FUNCTIONS)}"
            )

    def argument_variables(self) -> frozenset[Variable]:
        return frozenset(expression_variables(self.argument))

    def evaluate(self, values: Iterable[object]) -> float | int:
        """Apply the aggregate function to the collected contribution values.

        ``count`` accepts values of any type (it only counts them); the
        numeric aggregates require numeric contributions.
        """
        collected = list(values)
        if not collected:
            raise EvaluationError(f"aggregate {self.function} over empty group")
        if self.function == "count":
            return len(collected)
        numeric: list[float] = []
        for value in collected:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(
                    f"aggregate {self.function} over non-numeric value {value!r}"
                )
            numeric.append(value)
        result = _EVALUATORS[self.function](numeric)
        # Kill float noise (0.57 must not verbalize as 0.5700000000000001)
        # and keep integers integral, for clean verbalizations.
        if isinstance(result, float):
            result = round(result, 9)
            if result.is_integer():
                return int(result)
        return result

    def with_group_by(self, group_by: Sequence[Variable]) -> "AggregateSpec":
        return AggregateSpec(self.result, self.function, self.argument, tuple(group_by))

    def __str__(self) -> str:
        return f"{self.result} = {self.function}({self.argument})"
