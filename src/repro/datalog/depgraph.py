"""The dependency graph D(Σ) of a program.

Following the paper (Section 3): the vertices are the predicates of Σ, and
there is an edge from ``a'`` to ``a`` labelled with rule σ iff σ has ``a'``
in its body and ``a`` in its head.  A program is *recursive* iff D(Σ) is
cyclic.  A node ``a`` depends on ``a'`` (written ``a' ≺ a``) iff there is a
path from ``a'`` to ``a``.

The structural analysis of Section 4.1 is built on top of this class (see
:mod:`repro.core.structural`); here we expose the raw topology: labelled
edges, roots, the leaf/goal, reachability and cycle detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .program import Program


@dataclass(frozen=True, slots=True)
class DependencyEdge:
    """A rule-labelled edge ``source -> target`` of D(Σ).

    One rule with k distinct body predicates contributes k edges, all
    sharing the rule's label.  ``negated`` marks edges arising from
    negated body atoms (relevant for stratification, not for reasoning
    paths).
    """

    source: str
    target: str
    rule_label: str
    negated: bool = False

    def __str__(self) -> str:
        marker = "not " if self.negated else ""
        return f"{self.source} --[{marker}{self.rule_label}]--> {self.target}"


class DependencyGraph:
    """The dependency graph of a :class:`~repro.datalog.program.Program`."""

    def __init__(self, program: Program):
        self.program = program
        self._edges: list[DependencyEdge] = []
        self._outgoing: dict[str, list[DependencyEdge]] = {}
        self._incoming: dict[str, list[DependencyEdge]] = {}
        self._nodes: set[str] = set(program.schema)
        for rule in program.rules:
            for body_predicate in rule.body_predicates():
                edge = DependencyEdge(body_predicate, rule.head_predicate, rule.label)
                self._edges.append(edge)
                self._outgoing.setdefault(body_predicate, []).append(edge)
                self._incoming.setdefault(rule.head_predicate, []).append(edge)
            negated_predicates: list[str] = []
            for atom in rule.negated:
                if atom.predicate not in negated_predicates:
                    negated_predicates.append(atom.predicate)
            for body_predicate in negated_predicates:
                edge = DependencyEdge(
                    body_predicate, rule.head_predicate, rule.label, negated=True
                )
                self._edges.append(edge)
                self._outgoing.setdefault(body_predicate, []).append(edge)
                self._incoming.setdefault(rule.head_predicate, []).append(edge)

    # ------------------------------------------------------------------
    # Basic topology
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    @property
    def edges(self) -> tuple[DependencyEdge, ...]:
        return tuple(self._edges)

    def outgoing(self, node: str) -> tuple[DependencyEdge, ...]:
        return tuple(self._outgoing.get(node, ()))

    def incoming(self, node: str) -> tuple[DependencyEdge, ...]:
        return tuple(self._incoming.get(node, ()))

    def out_degree(self, node: str) -> int:
        return len(self._outgoing.get(node, ()))

    def in_degree(self, node: str) -> int:
        return len(self._incoming.get(node, ()))

    def deriving_rules(self, node: str) -> tuple[str, ...]:
        """Labels of the distinct rules with ``node`` in the head."""
        labels: list[str] = []
        for edge in self._incoming.get(node, ()):
            if edge.rule_label not in labels:
                labels.append(edge.rule_label)
        return tuple(labels)

    # ------------------------------------------------------------------
    # Distinguished nodes
    # ------------------------------------------------------------------
    def roots(self) -> frozenset[str]:
        """Nodes that do not depend on other nodes and appear in rules whose
        bodies do not contain intensional predicates (paper, Section 4.1).

        These are exactly the extensional predicates that feed at least one
        rule; isolated predicates are excluded.
        """
        extensional = self.program.extensional_predicates()
        return frozenset(
            node for node in extensional if self._outgoing.get(node)
        )

    def leaf(self) -> str:
        """The goal predicate of the program — the leaf of D(Σ)."""
        if self.program.goal is None:
            raise ValueError(
                f"program {self.program.name!r} has no goal predicate; "
                "set one to identify the dependency-graph leaf"
            )
        return self.program.goal

    # ------------------------------------------------------------------
    # Reachability and cycles
    # ------------------------------------------------------------------
    def depends_on(self, node: str, other: str) -> bool:
        """Whether ``other ≺ node``: a path from ``other`` to ``node`` exists."""
        return node in self._reachable_from(other)

    def _reachable_from(self, start: str) -> set[str]:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in self._outgoing.get(current, ()):
                if edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return seen

    def is_recursive(self) -> bool:
        """Whether D(Σ) is cyclic, i.e. the program is recursive."""
        return any(node in self._reachable_from(node) for node in self._nodes)

    def cycles(self) -> list[list[str]]:
        """Enumerate the simple cycles of D(Σ) (node sequences).

        Small graphs only — this is used for reporting, not for the
        reasoning-path enumeration, which works at the rule level.
        """
        cycles: list[list[str]] = []
        seen_signatures: set[tuple[str, ...]] = set()

        def walk(start: str, current: str, path: list[str]) -> None:
            for edge in self._outgoing.get(current, ()):
                if edge.target == start:
                    signature = tuple(sorted(path))
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        cycles.append(list(path))
                elif edge.target not in path:
                    walk(start, edge.target, path + [edge.target])

        for node in sorted(self._nodes):
            walk(node, node, [node])
        return cycles

    # ------------------------------------------------------------------
    # Iteration / rendering
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[DependencyEdge]:
        return iter(self._edges)

    def describe(self) -> str:
        """Human-readable multi-line rendering of the graph."""
        lines = [f"Dependency graph of {self.program.name!r}:"]
        lines.extend(f"  {edge}" for edge in self._edges)
        lines.append(f"  roots: {', '.join(sorted(self.roots()))}")
        if self.program.goal is not None:
            lines.append(f"  leaf: {self.leaf()}")
        lines.append(f"  recursive: {self.is_recursive()}")
        return "\n".join(lines)
