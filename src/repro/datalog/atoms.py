"""Atoms and facts over a relational schema.

An *atom* is an expression ``R(t1, ..., tn)`` where ``R`` is a predicate
symbol of arity ``n`` and each ``ti`` is a term.  A *fact* is a ground atom
(no variables); the extensional database and every fact produced by the
chase are facts in this sense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import ArityError
from .terms import Constant, Null, Term, Variable, is_ground, make_term, term_syntax


@dataclass(frozen=True, slots=True)
class Predicate:
    """A relation symbol with an associated arity."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``R(t1, ..., tn)`` over a schema.

    Atoms are immutable; the ``terms`` tuple may mix constants, variables
    and nulls.  Ground atoms double as facts (see :func:`Atom.is_fact`).
    """

    predicate: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ArityError("atom predicate name must be non-empty")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def signature(self) -> Predicate:
        return Predicate(self.predicate, self.arity)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, left to right, with repeats."""
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def constants(self) -> Iterator[Constant]:
        for term in self.terms:
            if isinstance(term, Constant):
                yield term

    def nulls(self) -> Iterator[Null]:
        for term in self.terms:
            if isinstance(term, Null):
                yield term

    def is_fact(self) -> bool:
        """True iff the atom is ground, i.e. a fact."""
        return all(is_ground(term) for term in self.terms)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, predicate: str, *values: object) -> "Atom":
        """Build an atom coercing raw Python values into terms.

        >>> Atom.of("Own", "A", "B", 0.6)
        Atom(predicate='Own', terms=(Constant('A'), Constant('B'), Constant(0.6)))
        """
        return cls(predicate, tuple(make_term(v) for v in values))

    def with_terms(self, terms: Iterable[Term]) -> "Atom":
        """Return a copy of this atom with the given terms."""
        return Atom(self.predicate, tuple(terms))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        args = ", ".join(term_syntax(t) for t in self.terms)
        return f"{self.predicate}({args})"


def fact(predicate: str, *values: object) -> Atom:
    """Build a ground atom, raising if any argument is a variable.

    This is the preferred constructor for extensional data:

    >>> fact("HasCapital", "A", 5)
    Atom(predicate='HasCapital', terms=(Constant('A'), Constant(5)))
    """
    atom = Atom.of(predicate, *values)
    if not atom.is_fact():
        raise ArityError(f"fact {atom} contains variables")
    return atom


#: Alias used throughout the engine for ground atoms.
Fact = Atom


def check_consistent_arities(atoms: Iterable[Atom]) -> dict[str, int]:
    """Verify that every predicate is used with a single arity.

    Returns the inferred ``predicate -> arity`` schema; raises
    :class:`ArityError` on the first inconsistency.
    """
    schema: dict[str, int] = {}
    for atom in atoms:
        known = schema.get(atom.predicate)
        if known is None:
            schema[atom.predicate] = atom.arity
        elif known != atom.arity:
            raise ArityError(
                f"predicate {atom.predicate} used with arity {atom.arity} "
                f"but previously with arity {known}"
            )
    return schema
