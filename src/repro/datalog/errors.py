"""Exception hierarchy for the Datalog/Vadalog substrate.

All errors raised by :mod:`repro.datalog` derive from :class:`DatalogError`
so that callers can catch substrate-level failures with a single handler
while still discriminating parse errors from semantic ones.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all errors raised by the Datalog substrate."""


class ParseError(DatalogError):
    """Raised when a program or rule text cannot be parsed.

    Carries the offending ``text`` and, when available, the ``position``
    (character offset) at which parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None and text:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (near ...{context!r}... at offset {position})"
        super().__init__(message)


class SafetyError(DatalogError):
    """Raised when a rule violates the Datalog safety condition.

    Every variable appearing in the head (or in a condition) must appear in
    a positive body atom or be defined by an aggregate.
    """


class ArityError(DatalogError):
    """Raised when a predicate is used with inconsistent arities."""


class EvaluationError(DatalogError):
    """Raised when a condition or arithmetic expression cannot be evaluated,
    e.g. comparing a string with a number or dividing by zero."""


class GlossaryError(DatalogError):
    """Raised when a domain glossary is inconsistent with the program schema
    (missing predicate entries, wrong token counts, unknown tokens)."""
