"""Substitutions, matching and homomorphisms.

The chase and the structural analysis both rest on a small kernel of
operations over substitutions (finite maps from variables to terms):

* :func:`match_atom` — extend a substitution so that a (possibly
  non-ground) atom maps onto a ground fact;
* :func:`apply_substitution` — ground an atom under a substitution;
* :func:`find_homomorphisms` — enumerate the homomorphisms from a
  conjunction of atoms into a set of facts (used for the restricted-chase
  satisfaction check and for reasoning-path adjacency, paper Section 4.1).

Homomorphisms here follow the paper's definition: constants map to
themselves, nulls may map to constants or nulls, variables map anywhere.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .terms import Constant, Null, Term, Variable

#: A substitution: variables (and nulls, for homomorphism checks) to terms.
Substitution = Mapping[Variable, Term]
MutableSubstitution = dict[Variable, Term]


def match_atom(
    pattern: Atom,
    target: Atom,
    binding: Substitution | None = None,
) -> MutableSubstitution | None:
    """Try to extend ``binding`` so that ``pattern`` maps exactly to ``target``.

    ``target`` must be ground.  Returns the extended substitution, or
    ``None`` when the atoms are incompatible.  The input binding is never
    mutated.
    """
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    result: MutableSubstitution = dict(binding) if binding else {}
    for pattern_term, target_term in zip(pattern.terms, target.terms):
        if isinstance(pattern_term, Variable):
            bound = result.get(pattern_term)
            if bound is None:
                result[pattern_term] = target_term
            elif bound != target_term:
                return None
        elif isinstance(pattern_term, (Constant, Null)):
            if pattern_term != target_term:
                return None
    return result


def apply_substitution(atom: Atom, binding: Substitution) -> Atom:
    """Replace every bound variable of ``atom`` by its image under ``binding``."""
    terms: list[Term] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            terms.append(binding.get(term, term))
        else:
            terms.append(term)
    return atom.with_terms(terms)


def is_ground_under(atom: Atom, binding: Substitution) -> bool:
    """Whether applying ``binding`` grounds ``atom`` completely."""
    return all(
        not isinstance(term, Variable) or term in binding for term in atom.terms
    )


def find_homomorphisms(
    patterns: Sequence[Atom],
    facts: Iterable[Atom],
    binding: Substitution | None = None,
) -> Iterator[MutableSubstitution]:
    """Enumerate all homomorphisms from the conjunction ``patterns`` into
    the fact set ``facts``, extending the optional initial ``binding``.

    This is a simple backtracking join; the engine proper uses indexed
    matching (:mod:`repro.engine.database`) for performance, while this
    generic version serves the structural analysis and the tests.
    """
    facts_by_predicate: dict[str, list[Atom]] = {}
    for current in facts:
        facts_by_predicate.setdefault(current.predicate, []).append(current)

    def recurse(
        index: int, current: MutableSubstitution
    ) -> Iterator[MutableSubstitution]:
        if index == len(patterns):
            yield dict(current)
            return
        pattern = patterns[index]
        for candidate in facts_by_predicate.get(pattern.predicate, ()):
            extended = match_atom(pattern, candidate, current)
            if extended is not None:
                yield from recurse(index + 1, extended)

    initial: MutableSubstitution = dict(binding) if binding else {}
    yield from recurse(0, initial)


def exists_homomorphism(
    patterns: Sequence[Atom],
    facts: Iterable[Atom],
    binding: Substitution | None = None,
) -> bool:
    """Whether at least one homomorphism exists (see
    :func:`find_homomorphisms`); used by the restricted-chase check."""
    return next(find_homomorphisms(patterns, facts, binding), None) is not None


def unify_head_with_body_atom(head: Atom, body_atom: Atom) -> bool:
    """Predicate-level adjacency test between reasoning paths.

    Two reasoning paths are *adjacent* when there is a homomorphism from the
    head of the first path's last rule to a body atom of the second path's
    first rule (paper, Section 4.1).  At the symbolic level this reduces to
    a unification test: same predicate/arity and no constant clash.
    """
    if head.predicate != body_atom.predicate or head.arity != body_atom.arity:
        return False
    for head_term, body_term in zip(head.terms, body_atom.terms):
        head_is_const = isinstance(head_term, Constant)
        body_is_const = isinstance(body_term, Constant)
        if head_is_const and body_is_const and head_term != body_term:
            return False
    return True
