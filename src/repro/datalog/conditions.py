"""Comparison conditions and arithmetic expressions in rule bodies.

Vadalog extends plain Datalog with *expressions* in rule bodies, modelled
with comparison operators (``>``, ``<``, ``>=``, ``<=``, ``!=``, ``==``)
and algebraic operators (``+``, ``-``, ``*``, ``/``) over terms (paper,
Section 3, "Vadalog Extensions").

An expression is a tree whose leaves are terms (constants or variables) and
whose internal nodes are arithmetic operations.  A condition compares two
expressions.  Both are evaluated under a substitution that grounds every
variable they mention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

from .errors import EvaluationError
from .terms import Constant, Term, Variable, term_syntax


def expression_syntax(expr: "Expression") -> str:
    """Rule-syntax rendering of an expression (quotes string constants)."""
    if isinstance(expr, BinaryOp):
        return str(expr)
    return term_syntax(expr)

# ----------------------------------------------------------------------
# Arithmetic expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BinaryOp:
    """An arithmetic node: ``left <op> right`` with op in ``+ - * /``."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return (
            f"({expression_syntax(self.left)} {self.op} "
            f"{expression_syntax(self.right)})"
        )


#: An expression is a term leaf or an arithmetic node.
Expression = Union[Term, BinaryOp]

_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def expression_variables(expr: Expression) -> Iterator[Variable]:
    """Yield every variable occurring in ``expr`` (with repeats)."""
    if isinstance(expr, Variable):
        yield expr
    elif isinstance(expr, BinaryOp):
        yield from expression_variables(expr.left)
        yield from expression_variables(expr.right)


def evaluate_expression(expr: Expression, binding: Mapping[Variable, Term]) -> object:
    """Evaluate ``expr`` under ``binding`` to a raw Python value.

    Raises :class:`EvaluationError` when a variable is unbound, a null is
    used arithmetically, or operand types are incompatible.
    """
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Variable):
        bound = binding.get(expr)
        if bound is None:
            raise EvaluationError(f"variable {expr} is unbound in expression")
        if not isinstance(bound, Constant):
            raise EvaluationError(f"variable {expr} bound to non-constant {bound}")
        return bound.value
    if isinstance(expr, BinaryOp):
        left = evaluate_expression(expr.left, binding)
        right = evaluate_expression(expr.right, binding)
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise EvaluationError(
                f"arithmetic on non-numeric operands: {left!r} {expr.op} {right!r}"
            )
        if expr.op == "/" and right == 0:
            raise EvaluationError("division by zero in rule expression")
        operation = _ARITHMETIC.get(expr.op)
        if operation is None:
            raise EvaluationError(f"unknown arithmetic operator {expr.op!r}")
        return operation(left, right)
    # Nulls and anything else cannot be evaluated arithmetically.
    raise EvaluationError(f"cannot evaluate expression leaf {expr!r}")


def evaluate_assignment(
    expression: Expression, binding: Mapping[Variable, Term]
) -> Constant:
    """Evaluate a body assignment ``r = <expression>`` to its constant.

    Floating-point results are rounded to 9 decimals (and collapsed to
    ``int`` when integral) so that arithmetically equal derivations
    produce *equal* facts regardless of evaluation order.  Both the
    tuple-at-a-time engine and the planned join executor must go through
    this helper — a rounding divergence would split one derived fact
    into two.
    """
    value = evaluate_expression(expression, binding)
    if isinstance(value, float):
        value = round(value, 9)
        if value.is_integer():
            value = int(value)
    return Constant(value)


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    ">": lambda a, b: a > b,        # type: ignore[operator]
    "<": lambda a, b: a < b,        # type: ignore[operator]
    ">=": lambda a, b: a >= b,      # type: ignore[operator]
    "<=": lambda a, b: a <= b,      # type: ignore[operator]
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: Operators whose NL verbalization exists in the verbalizer.
COMPARISON_OPERATORS = tuple(_COMPARATORS)


@dataclass(frozen=True, slots=True)
class Comparison:
    """A condition ``left <op> right`` between two expressions.

    Example: in rule α of the paper's Example 4.3, ``s > p1`` is
    ``Comparison(">", Variable("s"), Variable("p1"))``.
    """

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> frozenset[Variable]:
        return frozenset(expression_variables(self.left)) | frozenset(
            expression_variables(self.right)
        )

    def holds(self, binding: Mapping[Variable, Term]) -> bool:
        """Evaluate the condition under a grounding substitution."""
        left = evaluate_expression(self.left, binding)
        right = evaluate_expression(self.right, binding)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def __str__(self) -> str:
        return (
            f"{expression_syntax(self.left)} {self.op} "
            f"{expression_syntax(self.right)}"
        )
