"""Terms of the Vadalog language: constants, variables and labelled nulls.

Following the paper's preliminaries (Section 3), we work with three disjoint
countably infinite sets:

* ``C`` — constants (wrapped Python values: strings, ints, floats, bools);
* ``V`` — variables (named placeholders, universally quantified in rules);
* ``N`` — labelled nulls (fresh witnesses for existentially quantified
  head variables, produced by chase steps).

All terms are immutable and hashable, so they can be used freely as members
of facts, substitution keys and set elements.
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass
from typing import Union

#: The Python types a :class:`Constant` may wrap.
ConstantValue = Union[str, int, float, bool]


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant from the domain ``C``.

    The wrapped ``value`` keeps its Python type: numeric constants take part
    in arithmetic and comparisons, strings are used for entity identifiers
    and channel labels (e.g. ``"long"`` / ``"short"`` in the stress test).
    """

    value: ConstantValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return self.value
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    @property
    def is_numeric(self) -> bool:
        """Whether the constant can take part in arithmetic."""
        return isinstance(self.value, (int, float)) and not isinstance(self.value, bool)


@dataclass(frozen=True, slots=True)
class Variable:
    """A variable from ``V``, identified by its name.

    By convention (matching the paper's rules) variable names are short
    lower-case identifiers such as ``x``, ``y``, ``s``, ``p1``; the parser
    treats any lowercase-initial identifier inside an atom as a variable.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null from ``N``.

    Nulls are produced by chase steps for existentially quantified head
    variables.  Each null carries a unique integer label; two nulls are
    equal iff their labels coincide.
    """

    label: int

    def __str__(self) -> str:
        return f"_N{self.label}"

    def __repr__(self) -> str:
        return f"Null({self.label})"


#: Any term: a member of ``C``, ``V`` or ``N``.
Term = Union[Constant, Variable, Null]


class NullFactory:
    """Thread-safe generator of fresh labelled nulls.

    A chase run owns one factory so that null labels are unique within the
    run and deterministic across runs with the same inputs.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self) -> Null:
        """Return a null that has never been produced by this factory."""
        with self._lock:
            return Null(next(self._counter))


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variable (constants and nulls are ground)."""
    return not isinstance(term, Variable)


_BARE_CONSTANT_RE_SOURCE = r"[A-Z][A-Za-z0-9_]*"


def term_syntax(term: Term) -> str:
    """Render a term in *rule syntax* (as opposed to natural language).

    Symbolic constants that the parser would read back as constants
    (capitalized identifiers) render bare; any other string constant is
    quoted, so that ``parse(str(rule))`` always round-trips.  Numbers and
    variables render as themselves.
    """
    if isinstance(term, Constant) and isinstance(term.value, str):
        if re.fullmatch(_BARE_CONSTANT_RE_SOURCE, term.value):
            return term.value
        return f'"{term.value}"'
    return str(term)


#: Shared :class:`Constant` objects, keyed by (type, value) so that
#: ``1``, ``1.0`` and ``True`` — equal values of distinct types — keep
#: their own wrapper and render exactly as written.  Bounded: beyond the
#: cap, fresh objects are returned (correctness never depends on sharing).
_CONSTANT_POOL: dict[tuple[type, ConstantValue], Constant] = {}
_CONSTANT_POOL_LIMIT = 1 << 16
_CONSTANT_POOL_LOCK = threading.Lock()


def intern_constant(value: ConstantValue) -> Constant:
    """A shared :class:`Constant` wrapping ``value``.

    The parser and the fact loaders funnel every constant through this
    pool, so the thousands of repeated entity names in a fact file share
    one object each — equality checks short-circuit on identity and the
    per-database symbol table (:mod:`repro.engine.symbols`) interns each
    distinct constant's hash once.  Pooling is by exact type as well as
    value: it is an allocation cache, not a value unification (that is
    the symbol table's job), so it must never swap ``1.0`` for ``1``.
    """
    key = (type(value), value)
    shared = _CONSTANT_POOL.get(key)
    if shared is None:
        shared = Constant(value)
        if len(_CONSTANT_POOL) < _CONSTANT_POOL_LIMIT:
            with _CONSTANT_POOL_LOCK:
                shared = _CONSTANT_POOL.setdefault(key, shared)
    return shared


def make_term(value: object) -> Term:
    """Coerce a raw Python value (or an existing term) into a :class:`Term`.

    Strings, numbers and booleans become constants; terms pass through
    unchanged.  This is the convenience entry point used by the fluent
    fact-construction helpers in :mod:`repro.engine.database`.
    """
    if isinstance(value, (Constant, Variable, Null)):
        return value
    if isinstance(value, (str, int, float, bool)):
        return intern_constant(value)
    raise TypeError(f"cannot interpret {value!r} as a term")
