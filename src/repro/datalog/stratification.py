"""Stratification for programs with negation.

Vadalog supports negation and negative constraints (paper, Section 3,
"Vadalog Extensions").  We implement the standard *stratified* semantics:
a program is evaluable iff no predicate depends on itself through a
negated edge; evaluation then proceeds stratum by stratum, so that by the
time a negated atom is checked, its predicate's extension is complete.

:func:`stratify` computes the strata (lists of rule groups, in evaluation
order) or raises :class:`StratificationError` when the program is not
stratifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import DatalogError
from .program import Program
from .rules import Rule


class StratificationError(DatalogError):
    """Raised when a program has recursion through negation."""


@dataclass(frozen=True)
class Stratification:
    """The evaluation plan: predicates and rules per stratum, in order."""

    strata: tuple[tuple[Rule, ...], ...]
    stratum_of: dict[str, int]

    @property
    def count(self) -> int:
        return len(self.strata)

    def describe(self) -> str:
        lines = [f"Stratification in {self.count} strata:"]
        for index, rules in enumerate(self.strata):
            labels = ", ".join(rule.label for rule in rules)
            lines.append(f"  stratum {index}: {labels or '(no rules)'}")
        return "\n".join(lines)


def stratify(program: Program) -> Stratification:
    """Assign every intensional predicate (and its rules) to a stratum.

    Uses the classical fixpoint characterization: ``stratum(P) >=
    stratum(Q)`` for every positive edge Q → P and ``stratum(P) >
    stratum(Q)`` for every negated edge; non-termination of the fixpoint
    (a value exceeding the predicate count) means recursion through
    negation.
    """
    intensional = program.intensional_predicates()
    stratum: dict[str, int] = {predicate: 0 for predicate in intensional}
    limit = len(intensional) + 1

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head_predicate
            for atom in rule.body:
                if atom.predicate not in intensional:
                    continue
                required = stratum[atom.predicate]
                if stratum[head] < required:
                    stratum[head] = required
                    changed = True
            for atom in rule.negated:
                if atom.predicate not in intensional:
                    continue
                required = stratum[atom.predicate] + 1
                if stratum[head] < required:
                    stratum[head] = required
                    changed = True
            if stratum[head] >= limit:
                raise StratificationError(
                    f"program {program.name!r} is not stratifiable: "
                    f"{head!r} depends on itself through negation"
                )

    count = max(stratum.values(), default=0) + 1
    buckets: list[list[Rule]] = [[] for _ in range(count)]
    for rule in program.rules:
        buckets[stratum[rule.head_predicate]].append(rule)
    return Stratification(
        strata=tuple(tuple(bucket) for bucket in buckets),
        stratum_of=stratum,
    )
