"""Rules (tuple-generating dependencies) of a Vadalog program.

A rule is a function-free Horn clause

    body_atom_1, ..., body_atom_k, cond_1, ..., cond_m [, r = agg(v)] -> head

where the body is a conjunction of atoms over the schema, conditions are
comparisons over body variables, the optional aggregate assignment binds a
fresh result variable, and the head is a single atom.  Head variables that
appear neither in the body nor as the aggregate result are existentially
quantified: a chase step invents a fresh labelled null for each.

Every rule carries a short ``label`` (such as ``alpha`` or ``sigma3``) used
throughout the structural analysis, the reasoning-path notation
(Π = {σ1, σ3}) and the explanation templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .aggregates import AggregateSpec
from .atoms import Atom
from .conditions import Comparison, Expression, expression_variables
from .errors import SafetyError
from .terms import Variable

#: Greek-letter rendering for common rule labels, used in reports.
GREEK_LABELS = {
    "alpha": "α", "beta": "β", "gamma": "γ", "delta": "δ",
    "sigma1": "σ1", "sigma2": "σ2", "sigma3": "σ3", "sigma4": "σ4",
    "sigma5": "σ5", "sigma6": "σ6", "sigma7": "σ7", "sigma8": "σ8",
    "sigma9": "σ9",
}


def pretty_label(label: str) -> str:
    """Render a rule label with its Greek glyph when one is conventional."""
    return GREEK_LABELS.get(label, label)


@dataclass(frozen=True)
class Rule:
    """A single-head TGD with optional conditions and aggregate.

    Use :func:`repro.datalog.parser.parse_rule` for the textual syntax; this
    constructor validates safety and normalizes the aggregate grouping.
    """

    label: str
    body: tuple[Atom, ...]
    head: Atom
    conditions: tuple[Comparison, ...] = ()
    aggregate: AggregateSpec | None = None
    #: Negated body atoms: ``not P(...)`` holds when no matching fact
    #: exists (stratified semantics, see datalog.stratification).
    negated: tuple[Atom, ...] = ()
    #: Computed assignments ``r = <expression>`` (Vadalog's body
    #: expressions): evaluated per homomorphism, binding fresh variables.
    assignments: tuple[tuple[Variable, Expression], ...] = ()
    #: Existential head variables (computed, do not pass explicitly).
    existentials: frozenset[Variable] = field(default=frozenset())

    def __post_init__(self) -> None:
        if not self.body:
            raise SafetyError(f"rule {self.label}: body must be non-empty")
        body_vars = self.body_variables()
        for atom in self.negated:
            unsafe = atom.variable_set() - body_vars
            if unsafe:
                raise SafetyError(
                    f"rule {self.label}: negated atom {atom} uses variables "
                    f"{sorted(v.name for v in unsafe)} not bound by a "
                    "positive body atom"
                )
        assigned: set[Variable] = set()
        for variable, expression in self.assignments:
            expression_vars = set(expression_variables(expression))
            unsafe = expression_vars - body_vars - assigned
            if unsafe:
                raise SafetyError(
                    f"rule {self.label}: assignment to {variable} uses "
                    f"unbound variables {sorted(v.name for v in unsafe)}"
                )
            if variable in body_vars or variable in assigned:
                raise SafetyError(
                    f"rule {self.label}: assignment target {variable} is "
                    "already bound"
                )
            assigned.add(variable)
        aggregate = self.aggregate
        if aggregate is not None:
            missing = aggregate.argument_variables() - body_vars - assigned
            if missing:
                raise SafetyError(
                    f"rule {self.label}: aggregate argument uses variables "
                    f"{sorted(v.name for v in missing)} not bound in the body"
                )
            if aggregate.result in body_vars or aggregate.result in assigned:
                raise SafetyError(
                    f"rule {self.label}: aggregate result {aggregate.result} "
                    "must be a fresh variable"
                )
            if not aggregate.group_by:
                default_group = tuple(
                    v for v in self._ordered_head_variables()
                    if v != aggregate.result and v in body_vars
                )
                object.__setattr__(
                    self, "aggregate", aggregate.with_group_by(default_group)
                )
        bound = body_vars | assigned | (
            {self.aggregate.result} if self.aggregate is not None else set()
        )
        for condition in self.conditions:
            unsafe = condition.variables() - bound
            if unsafe:
                raise SafetyError(
                    f"rule {self.label}: condition '{condition}' uses unbound "
                    f"variables {sorted(v.name for v in unsafe)}"
                )
        existentials = frozenset(
            v for v in self.head.variable_set() if v not in bound
        )
        object.__setattr__(self, "existentials", existentials)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def body_variables(self) -> frozenset[Variable]:
        variables: set[Variable] = set()
        for atom in self.body:
            variables.update(atom.variables())
        return frozenset(variables)

    def _ordered_head_variables(self) -> Iterator[Variable]:
        seen: set[Variable] = set()
        for term in self.head.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.add(term)
                yield term

    def body_predicates(self) -> tuple[str, ...]:
        """Body predicate names, left to right, with duplicates removed."""
        seen: list[str] = []
        for atom in self.body:
            if atom.predicate not in seen:
                seen.append(atom.predicate)
        return tuple(seen)

    @property
    def head_predicate(self) -> str:
        return self.head.predicate

    @property
    def has_aggregate(self) -> bool:
        return self.aggregate is not None

    @property
    def has_negation(self) -> bool:
        return bool(self.negated)

    @property
    def is_existential(self) -> bool:
        return bool(self.existentials)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts.extend(f"not {atom}" for atom in self.negated)
        parts.extend(
            f"{variable} = {expression}"
            for variable, expression in self.assignments
        )
        parts.extend(str(cond) for cond in self.conditions)
        if self.aggregate is not None:
            parts.append(str(self.aggregate))
        return f"{', '.join(parts)} -> {self.head}"

    def pretty(self) -> str:
        """Render with the Greek label prefix, e.g. ``(σ3) Control(...) ...``."""
        return f"({pretty_label(self.label)}) {self}"


@dataclass(frozen=True)
class Constraint:
    """A negative constraint φ(x̄, ȳ) → ⊥ (paper, Section 3).

    When the body (plus conditions, minus negated atoms) becomes
    satisfiable in the materialized instance, the constraint is violated;
    the engine reports violations rather than deriving anything.
    """

    label: str
    body: tuple[Atom, ...]
    conditions: tuple[Comparison, ...] = ()
    negated: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        if not self.body:
            raise SafetyError(f"constraint {self.label}: body must be non-empty")
        body_vars: set[Variable] = set()
        for atom in self.body:
            body_vars.update(atom.variables())
        for atom in self.negated:
            unsafe = atom.variable_set() - body_vars
            if unsafe:
                raise SafetyError(
                    f"constraint {self.label}: negated atom {atom} uses "
                    f"unbound variables {sorted(v.name for v in unsafe)}"
                )
        for condition in self.conditions:
            unsafe = condition.variables() - body_vars
            if unsafe:
                raise SafetyError(
                    f"constraint {self.label}: condition '{condition}' uses "
                    f"unbound variables {sorted(v.name for v in unsafe)}"
                )

    def body_predicates(self) -> tuple[str, ...]:
        seen: list[str] = []
        for atom in (*self.body, *self.negated):
            if atom.predicate not in seen:
                seen.append(atom.predicate)
        return tuple(seen)

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts.extend(f"not {atom}" for atom in self.negated)
        parts.extend(str(cond) for cond in self.conditions)
        return f"{', '.join(parts)} -> false"
