"""Programs: rule collections with EDB/IDB classification and a goal.

A reasoning task in the paper is a pair Q = (Σ, Ans): a set of rules and a
distinguished answer predicate.  :class:`Program` bundles the rule set with
the goal predicate (the *leaf* of the dependency graph, e.g. ``Control`` or
``Default``) and derives the intensional/extensional split:

* a predicate is **intensional** (IDB) iff it occurs in at least one head;
* otherwise it is **extensional** (EDB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .atoms import check_consistent_arities
from .errors import ArityError, DatalogError
from .rules import Constraint, Rule


@dataclass(frozen=True)
class Program:
    """An immutable Vadalog program Σ with an optional goal predicate."""

    name: str
    rules: tuple[Rule, ...]
    goal: str | None = None
    #: Negative constraints checked after materialization.
    constraints: tuple[Constraint, ...] = ()
    #: predicate -> arity, inferred from the rules (computed).
    schema: dict[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.rules:
            raise DatalogError(f"program {self.name!r} has no rules")
        labels = [rule.label for rule in self.rules] + [
            constraint.label for constraint in self.constraints
        ]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise DatalogError(
                f"program {self.name!r} has duplicate rule labels: {duplicates}"
            )
        atoms = [
            atom for rule in self.rules
            for atom in (*rule.body, *rule.negated, rule.head)
        ]
        atoms.extend(
            atom for constraint in self.constraints
            for atom in (*constraint.body, *constraint.negated)
        )
        object.__setattr__(self, "schema", check_consistent_arities(atoms))
        if self.goal is not None and self.goal not in self.schema:
            raise ArityError(
                f"goal predicate {self.goal!r} does not occur in program "
                f"{self.name!r}"
            )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def intensional_predicates(self) -> frozenset[str]:
        """Predicates occurring in at least one rule head (IDB)."""
        return frozenset(rule.head_predicate for rule in self.rules)

    def extensional_predicates(self) -> frozenset[str]:
        """Predicates never occurring in a head (EDB)."""
        return frozenset(self.schema) - self.intensional_predicates()

    def is_intensional(self, predicate: str) -> bool:
        return predicate in self.intensional_predicates()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def rule(self, label: str) -> Rule:
        """Look up a rule by its label, raising ``KeyError`` when absent."""
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise KeyError(f"no rule labelled {label!r} in program {self.name!r}")

    def rules_deriving(self, predicate: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is ``predicate``."""
        return tuple(r for r in self.rules if r.head_predicate == predicate)

    def rules_consuming(self, predicate: str) -> tuple[Rule, ...]:
        """All rules with ``predicate`` among their body predicates."""
        return tuple(r for r in self.rules if predicate in r.body_predicates())

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    # Derived programs
    # ------------------------------------------------------------------
    def with_goal(self, goal: str) -> "Program":
        """Return a copy of this program with a different goal predicate."""
        return Program(self.name, self.rules, goal, self.constraints)

    @property
    def has_negation(self) -> bool:
        """Whether any rule uses negated body atoms."""
        return any(rule.has_negation for rule in self.rules)

    def describe(self) -> str:
        """Multi-line human-readable listing of the program."""
        lines = [f"Program {self.name!r} (goal: {self.goal or 'unset'})"]
        lines.extend(f"  {rule.pretty()}" for rule in self.rules)
        lines.extend(f"  ({c.label}) {c}" for c in self.constraints)
        edb = ", ".join(sorted(self.extensional_predicates()))
        idb = ", ".join(sorted(self.intensional_predicates()))
        lines.append(f"  EDB: {edb}")
        lines.append(f"  IDB: {idb}")
        return "\n".join(lines)


def make_program(
    name: str,
    rules: Iterable[Rule],
    goal: str | None = None,
    constraints: Iterable[Constraint] = (),
) -> Program:
    """Convenience constructor accepting any iterable of rules."""
    return Program(name, tuple(rules), goal, tuple(constraints))
