"""Template-based explainable inference over financial knowledge graphs.

A from-scratch reproduction of

    Colombo, Baldazzi, Bellomarini, Sallinger, Ceri.
    "Template-based Explainable Inference over High-Stakes Financial
    Knowledge Graphs", EDBT 2025.

The package is organized by substrate (see DESIGN.md):

* :mod:`repro.datalog` — the Vadalog language fragment (rules, parser,
  dependency graphs);
* :mod:`repro.engine`  — the chase-based reasoning engine with provenance;
* :mod:`repro.core`    — the paper's contribution: structural analysis,
  explanation templates, chase-to-template mapping, explanation queries;
* :mod:`repro.llm`     — the offline simulated LLM (rewriting + calibrated
  omissions);
* :mod:`repro.apps`    — the financial KG applications and workload
  generators;
* :mod:`repro.study`   — the simulated user studies and statistics;
* :mod:`repro.render`  — DOT export and terminal tables.

Quickstart::

    from repro.apps import figures
    from repro.core import Explainer

    scenario = figures.figure8_instance()
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary)
    print(explainer.explain(scenario.target).text)
"""

from .apps.base import KGApplication, ScenarioInstance
from .core.explain import Explainer, Explanation
from .core.glossary import DomainGlossary, GlossaryEntry
from .core.structural import StructuralAnalysis
from .datalog.atoms import Atom, fact
from .datalog.parser import parse_program, parse_rule
from .datalog.program import Program
from .engine.database import Database
from .engine.reasoning import ReasoningResult, reason
from .llm.simulated import SimulatedLLM

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Database",
    "DomainGlossary",
    "Explainer",
    "Explanation",
    "GlossaryEntry",
    "KGApplication",
    "Program",
    "ReasoningResult",
    "ScenarioInstance",
    "SimulatedLLM",
    "StructuralAnalysis",
    "fact",
    "parse_program",
    "parse_rule",
    "reason",
    "__version__",
]
