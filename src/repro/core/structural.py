"""Structural analysis of the dependency graph (paper, Section 4.1).

This module pre-distills all database-independent "reasoning stories" of a
program: the finite set of reasoning paths that generalize every possible
root-to-leaf path of any chase graph the program can produce.

Definitions implemented here:

* **Critical node** (Def. 4.1): an intensional node V with ``deg(V) > 1``
  outgoing rule edges, or the leaf node.  (The paper writes ``deg^-``;
  consistency with its worked examples — ``Risk`` is *not* critical in
  either stress-test program although two rules derive it — pins the
  intended reading to the out-degree.)
* **Simple reasoning path** (Def. 4.2): a subgraph of D(Σ) conducting from
  roots to the leaf or to a critical node.
* **Reasoning cycle** (Def. 4.2): a subgraph connecting a critical node
  with itself or with another critical node.

Both are computed allowing one visit per edge, hence are finite.  The
enumeration works at the rule level: a path is the set of rules labelling
its edges.  Rules with aggregations admit *joint* contributions — several
derivation branches of the same body predicate merging into one aggregate —
which yields the joint paths of the paper (Π5 for company control, Π9 for
the stress test) and marks the aggregate structurally multi-input.

Aggregation analysis then expands every path into its variants (single vs.
multiple contributors per aggregate rule), the paper's plain vs. "dashed"
notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import chain, combinations, product
from typing import Iterator, Sequence

from .. import obs
from ..datalog.depgraph import DependencyGraph
from ..datalog.errors import DatalogError
from ..datalog.program import Program
from ..datalog.rules import Rule
from .paths import ReasoningPath


class StructuralAnalysisError(DatalogError):
    """Raised when the analysis cannot be carried out (e.g. no goal)."""


@dataclass(frozen=True)
class _Story:
    """An intermediate rule story: ordered rules + forced multi flags +
    the critical nodes the story's recursion bottomed out at."""

    rules: tuple[Rule, ...]
    forced_multi: frozenset[str]
    anchors: frozenset[str] = frozenset()

    @property
    def labels(self) -> frozenset[str]:
        return frozenset(rule.label for rule in self.rules)

    def key(self) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
        return (self.labels, self.forced_multi, self.anchors)


def _merge_stories(stories: Sequence[_Story], tail: Rule, forced: bool) -> _Story:
    """Concatenate substories and append the consuming rule, deduplicating
    rules while preserving the topological firing order."""
    ordered: dict[str, Rule] = {}
    anchors: set[str] = set()
    forced_multi: set[str] = set()
    for story in stories:
        for rule in story.rules:
            ordered.setdefault(rule.label, rule)
        anchors.update(story.anchors)
        forced_multi.update(story.forced_multi)
    ordered.setdefault(tail.label, tail)
    if forced:
        forced_multi.add(tail.label)
    return _Story(tuple(ordered.values()), frozenset(forced_multi), frozenset(anchors))


def _nonempty_subsets(items: Sequence[_Story]) -> Iterator[tuple[_Story, ...]]:
    yield from chain.from_iterable(
        combinations(items, size) for size in range(1, len(items) + 1)
    )


class StructuralAnalysis:
    """Computes critical nodes, simple reasoning paths and reasoning cycles
    for a program, together with their aggregation variants."""

    def __init__(self, program: Program, max_paths: int = 10_000):
        if program.goal is None:
            raise StructuralAnalysisError(
                f"program {program.name!r} needs a goal predicate for the "
                "structural analysis (the dependency-graph leaf)"
            )
        self.program = program
        with obs.span("compile.depgraph", program=program.name):
            self.graph = DependencyGraph(program)
        self.max_paths = max_paths

    # ------------------------------------------------------------------
    # Critical nodes (Definition 4.1)
    # ------------------------------------------------------------------
    @cached_property
    def critical_nodes(self) -> frozenset[str]:
        intensional = self.program.intensional_predicates()
        leaf = self.graph.leaf()
        critical = {
            node for node in intensional if self.graph.out_degree(node) > 1
        }
        critical.add(leaf)
        return frozenset(critical & (intensional | {leaf}))

    # ------------------------------------------------------------------
    # Simple reasoning paths
    # ------------------------------------------------------------------
    @cached_property
    def simple_paths(self) -> tuple[ReasoningPath, ...]:
        """All simple reasoning paths, named Π1, Π2, … deterministically."""
        stories: dict[tuple, tuple[_Story, str]] = {}
        for target in sorted(self.critical_nodes):
            for story in self._root_stories(target, frozenset()):
                stories.setdefault(story.key() + (target,), (story, target))
        paths = [
            ReasoningPath(
                kind="simple",
                rules=story.rules,
                multi_rules=story.forced_multi,
                forced_multi=story.forced_multi,
                target=target,
            )
            for story, target in stories.values()
        ]
        paths.sort(key=self._path_sort_key)
        return tuple(
            ReasoningPath(
                kind=path.kind,
                rules=path.rules,
                multi_rules=path.multi_rules,
                forced_multi=path.forced_multi,
                name=f"Pi{index + 1}",
                target=path.target,
            )
            for index, path in enumerate(paths)
        )

    def _root_stories(self, predicate: str, used: frozenset[str]) -> list[_Story]:
        """Stories deriving ``predicate`` from extensional roots only."""
        results: list[_Story] = []
        for rule in self.program.rules_deriving(predicate):
            if rule.label in used:
                continue
            extended = used | {rule.label}
            body_intensional = [
                b for b in rule.body_predicates() if self.program.is_intensional(b)
            ]
            options_per_predicate: list[list[tuple[_Story, ...]]] = []
            feasible = True
            for body_predicate in body_intensional:
                substories = self._root_stories(body_predicate, extended)
                if not substories:
                    feasible = False
                    break
                if rule.has_aggregate and len(substories) > 1:
                    options = list(_nonempty_subsets(substories))
                else:
                    options = [(s,) for s in substories]
                options_per_predicate.append(options)
            if not feasible:
                continue
            for combo in product(*options_per_predicate):
                chosen = tuple(chain.from_iterable(combo))
                forced = rule.has_aggregate and any(
                    len(subset) > 1 for subset in combo
                )
                results.append(_merge_stories(chosen, rule, forced))
                if len(results) > self.max_paths:
                    raise StructuralAnalysisError(
                        f"more than {self.max_paths} reasoning paths for "
                        f"{predicate!r}; the program is too entangled"
                    )
        return self._dedupe(results)

    # ------------------------------------------------------------------
    # Reasoning cycles
    # ------------------------------------------------------------------
    @cached_property
    def cycles(self) -> tuple[ReasoningPath, ...]:
        """All reasoning cycles, named Γ1, Γ2, … deterministically."""
        stories: dict[tuple, tuple[_Story, str, str]] = {}
        for target in sorted(self.critical_nodes):
            for story in self._anchored_stories(target, frozenset()):
                for anchor in sorted(story.anchors):
                    stories.setdefault(
                        story.key() + (target, anchor),
                        (story, target, anchor),
                    )
        paths = [
            ReasoningPath(
                kind="cycle",
                rules=story.rules,
                multi_rules=story.forced_multi,
                forced_multi=story.forced_multi,
                anchor=anchor,
                target=target,
            )
            for story, target, anchor in stories.values()
        ]
        paths.sort(key=self._path_sort_key)
        return tuple(
            ReasoningPath(
                kind=path.kind,
                rules=path.rules,
                multi_rules=path.multi_rules,
                forced_multi=path.forced_multi,
                name=f"Gamma{index + 1}",
                anchor=path.anchor,
                target=path.target,
            )
            for index, path in enumerate(paths)
        )

    def _anchored_stories(
        self, predicate: str, used: frozenset[str]
    ) -> list[_Story]:
        """Stories deriving ``predicate`` whose recursion bottoms out at
        critical nodes (the cycle anchors) rather than at the roots."""
        results: list[_Story] = []
        for rule in self.program.rules_deriving(predicate):
            if rule.label in used:
                continue
            extended = used | {rule.label}
            body_intensional = [
                b for b in rule.body_predicates() if self.program.is_intensional(b)
            ]
            if not body_intensional:
                continue  # purely extensional bodies never close a cycle
            options_per_predicate: list[list[tuple[_Story, ...]]] = []
            feasible = True
            for body_predicate in body_intensional:
                substories: list[_Story] = []
                if body_predicate in self.critical_nodes:
                    substories.append(
                        _Story((), frozenset(), frozenset({body_predicate}))
                    )
                substories.extend(self._anchored_stories(body_predicate, extended))
                if not substories:
                    feasible = False
                    break
                if rule.has_aggregate and len(substories) > 1:
                    options = list(_nonempty_subsets(substories))
                else:
                    options = [(s,) for s in substories]
                options_per_predicate.append(options)
            if not feasible:
                continue
            for combo in product(*options_per_predicate):
                chosen = tuple(chain.from_iterable(combo))
                merged_anchors = frozenset(
                    chain.from_iterable(s.anchors for s in chosen)
                )
                if not merged_anchors:
                    continue  # must connect a critical node to the target
                forced = rule.has_aggregate and any(
                    len(subset) > 1 for subset in combo
                )
                results.append(_merge_stories(chosen, rule, forced))
                if len(results) > self.max_paths:
                    raise StructuralAnalysisError(
                        f"more than {self.max_paths} reasoning cycles for "
                        f"{predicate!r}; the program is too entangled"
                    )
        return self._dedupe(results)

    # ------------------------------------------------------------------
    # Variants and lookup
    # ------------------------------------------------------------------
    @cached_property
    def all_paths(self) -> tuple[ReasoningPath, ...]:
        """Simple paths followed by cycles (base variants)."""
        return self.simple_paths + self.cycles

    @cached_property
    def all_variants(self) -> tuple[ReasoningPath, ...]:
        """Every aggregation variant of every path — the candidate set the
        chase-to-template mapping selects from."""
        return tuple(
            variant for path in self.all_paths for variant in path.variants()
        )

    def simple_variants(self) -> tuple[ReasoningPath, ...]:
        return tuple(v for v in self.all_variants if not v.is_cycle)

    def cycle_variants(self) -> tuple[ReasoningPath, ...]:
        return tuple(v for v in self.all_variants if v.is_cycle)

    def path_by_name(self, name: str) -> ReasoningPath:
        for path in self.all_paths:
            if path.name == name:
                return path
        raise KeyError(f"no reasoning path named {name!r}")

    # ------------------------------------------------------------------
    # Helpers / rendering
    # ------------------------------------------------------------------
    def _path_sort_key(self, path: ReasoningPath) -> tuple:
        index_of = {rule.label: i for i, rule in enumerate(self.program.rules)}
        indices = tuple(sorted(index_of[label] for label in path.labels))
        return (len(indices), indices, path.target, path.anchor or "")

    @staticmethod
    def _dedupe(stories: list[_Story]) -> list[_Story]:
        unique: dict[tuple, _Story] = {}
        for story in stories:
            unique.setdefault(story.key(), story)
        return list(unique.values())

    def describe(self) -> str:
        """Fig-10-style summary: paths and cycles in compact notation,
        marking with ``*`` the paths whose aggregation variant exists."""
        lines = [f"Structural analysis of {self.program.name!r}:"]
        lines.append(f"  critical nodes: {', '.join(sorted(self.critical_nodes))}")
        lines.append("  simple reasoning paths:")
        for path in self.simple_paths:
            star = "*" if path.has_aggregation_variants else ""
            lines.append(f"    {path.notation()}{star}")
        lines.append("  reasoning cycles:")
        for cycle in self.cycles:
            star = "*" if cycle.has_aggregation_variants else ""
            lines.append(f"    {cycle.notation()}{star}")
        return "\n".join(lines)
