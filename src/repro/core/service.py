"""The service layer: compiled-program cache, sessions, batched serving.

An :class:`ExplanationService` is the long-lived, production-facing front
of the explanation stack.  It owns

* a bounded cache of :class:`~repro.core.compiler.CompiledProgram`
  artifacts keyed by content hash — a program/glossary/enhancer triple is
  compiled once for the service lifetime (warm starts can pre-seed the
  cache from disk via :meth:`ExplanationService.warm_start`);
* a shared bounded LRU of generated explanations spanning all sessions;
* a thread pool serving :meth:`ExplanationSession.explain_batch`;
* per-service hit/miss/latency counters (:class:`ServiceMetrics`).

A *session* binds one compiled program to one database instance: the
service runs the chase and returns an :class:`ExplanationSession` whose
``explain``/``explain_batch``/``report``/``why_not`` calls serve queries
against the materialized instance.

Typical use::

    service = ExplanationService(llm=SimulatedLLM(seed=0, faithful=True))
    session = service.session(app, database)       # compiles once
    texts = session.explain_batch(session.answers())
    other = service.session(app, other_database)   # compile-cache hit
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from .. import obs
from ..datalog.atoms import Fact
from ..datalog.program import Program
from ..engine.chase import ChaseEngine
from ..engine.database import Database
from ..engine.incremental import UpdateOutcome, extensional_facts
from ..engine.reasoning import ReasoningResult, reason

# Deprecation alias: the historical service-metrics surface now lives in
# the observability layer (repro.obs.metrics) backed by the registry;
# import from there going forward.
from ..obs.metrics import ServiceMetrics
from ..resilience.policy import Deadline, DeadlineExceeded, RetryPolicy
from .cache import DEFAULT_EXPLANATION_CACHE_SIZE, LRUCache
from .compiler import (
    CompiledProgram,
    compilation_fingerprint,
    compile_program,
)
from .enhancer import SupportsComplete
from .explain import Explainer, Explanation
from .glossary import DomainGlossary
from .reports import BusinessReport, ReportBuilder
from .whynot import WhyNotAnswer, WhyNotExplainer

_UNSET = object()


@dataclass(frozen=True)
class BatchOutcome:
    """Per-query result of a deadline-bounded ``explain_batch``.

    ``status`` is ``"ok"`` (``explanation`` is set),
    ``"deadline_exceeded"`` (the per-batch budget ran out before this
    query was served) or ``"error"`` (the query itself failed; ``error``
    carries ``TypeName: message``).  Partial service beats no service: a
    batch under deadline returns one outcome per query, in input order,
    instead of hanging the pool behind the slowest straggler.
    """

    query: Fact
    explanation: Explanation | None = None
    status: str = "ok"
    error: str | None = None

    STATUS_OK = "ok"
    STATUS_DEADLINE = "deadline_exceeded"
    STATUS_ERROR = "error"

    @property
    def ok(self) -> bool:
        return self.status == self.STATUS_OK

    @classmethod
    def success(cls, query: Fact, explanation: Explanation) -> "BatchOutcome":
        return cls(query=query, explanation=explanation)

    @classmethod
    def missed(cls, query: Fact, error: BaseException | None = None) -> "BatchOutcome":
        message = (
            f"{type(error).__name__}: {error}" if error is not None
            else "DeadlineExceeded: batch budget spent before this query"
        )
        return cls(query=query, status=cls.STATUS_DEADLINE, error=message)

    @classmethod
    def failed(cls, query: Fact, error: BaseException) -> "BatchOutcome":
        return cls(
            query=query, status=cls.STATUS_ERROR,
            error=f"{type(error).__name__}: {error}",
        )


class _Timed:
    """Context manager feeding one latency sample into the metrics and
    one ``service.<name>`` span into the ambient tracer.

    When a flight record is open on the calling thread, the sample also
    lands as a phase on that record and the histogram observation
    carries the record's query id as its exemplar — so a slow latency
    bucket resolves back to the flight that caused it.
    """

    def __init__(self, metrics: ServiceMetrics, name: str):
        self._metrics = metrics
        self._name = name
        self.elapsed = 0.0

    def __enter__(self) -> "_Timed":
        self._span = obs.span(f"service.{self._name}")
        self._span.__enter__()
        self._flight = obs.current_flight()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._span.__exit__(*exc_info)
        flight = self._flight
        if flight is not None:
            flight.add_phase(self._name, self.elapsed)
            self._metrics.observe(
                self._name, self.elapsed, exemplar=flight.query_id
            )
        else:
            self._metrics.observe(self._name, self.elapsed)


class ExplanationSession:
    """One compiled program bound to one materialized instance."""

    def __init__(
        self,
        service: "ExplanationService",
        compiled: CompiledProgram,
        result: ReasoningResult,
    ):
        self.service = service
        self.compiled = compiled
        self.result = result
        self.explainer = Explainer(
            result, compiled=compiled, cache=service.explanation_cache
        )
        # The why-not prober is built lazily and kept for the session: it
        # shares the session's provenance index, and its answers are
        # memoized in their own region of the shared LRU.
        self._whynot: WhyNotExplainer | None = None
        self._whynot_region = service.explanation_cache.region("whynot")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def answers(self, predicate: str | None = None) -> tuple[Fact, ...]:
        return self.result.answers(predicate)

    def explain(self, query: Fact, **options) -> Explanation:
        recorder = obs.get_flight()
        with recorder.record(
            "explain", query=str(query),
            fingerprint=self.compiled.fingerprint,
        ):
            with _Timed(self.service.metrics, "explain"):
                explanation = self.explainer.explain(query, **options)
        self.service.metrics.incr("explanations")
        return explanation

    def explain_batch(
        self,
        queries: Iterable[Fact],
        deadline: Deadline | float | None = None,
        **options,
    ) -> list[Explanation] | list[BatchOutcome]:
        """Explain many queries, preserving input order.

        Queries fan out over the service thread pool; the pipeline is
        pure over the frozen result, segments share the compiled
        artifact, and the explanation cache is a thread-safe LRU, so
        concurrent generation is safe.  Provenance is forced up front —
        it is shared state all workers would otherwise race to build.

        With ``deadline`` (a :class:`~repro.resilience.policy.Deadline`
        or a budget in seconds) the batch degrades instead of blocking:
        the return value becomes a list of :class:`BatchOutcome`, one per
        query in input order, where queries the budget could not cover
        carry ``status="deadline_exceeded"`` and queued work is abandoned
        rather than left hanging the pool.  Without a deadline the
        historical ``list[Explanation]`` contract is unchanged.
        """
        chosen: Sequence[Fact] = list(queries)
        bounded = Deadline.coerce(deadline)
        if bounded is not None:
            return self._explain_batch_bounded(chosen, bounded, options)
        if not chosen:
            return []
        self.result.index  # materialize the shared provenance index once
        metrics = self.service.metrics
        recorder = obs.get_flight()
        with recorder.record(
            "explain_batch", fingerprint=self.compiled.fingerprint,
            queries=len(chosen),
        ) as batch_record, _Timed(metrics, "explain_batch"):
            if len(chosen) == 1 or self.service.max_workers <= 1:
                explanations = [
                    self.explainer.explain(query, **options)
                    for query in chosen
                ]
            else:
                tracer = obs.get_tracer()
                batch_span = tracer.current()

                def run_one(query: Fact, submitted: float) -> Explanation:
                    # Queue wait (submit -> worker pickup) vs. execution
                    # time, per worker task: the two numbers that say
                    # whether a slow batch is under-provisioned (wait
                    # dominates) or generation-bound (execute dominates).
                    # The submitting request's span and flight record are
                    # adopted for the task's lifetime, so worker-side
                    # spans parent to the batch (not the ambient root)
                    # and kernel/cache counters land on the right flight.
                    started = time.perf_counter()
                    metrics.observe("explain_queue_wait", started - submitted)
                    with tracer.attach(batch_span), recorder.attach(
                        batch_record
                    ):
                        with tracer.span(
                            "service.explain_task", query=str(query)
                        ):
                            with recorder.record(
                                "explain_task", query=str(query),
                                fingerprint=self.compiled.fingerprint,
                            ) as task_record:
                                explanation = self.explainer.explain(
                                    query, **options
                                )
                        metrics.observe(
                            "explain_execute",
                            time.perf_counter() - started,
                            exemplar=task_record.query_id,
                        )
                    return explanation

                pool = self.service._thread_pool()
                slots: list[Explanation | None] = [None] * len(chosen)
                first, rest = self._subtree_waves(chosen)
                metrics.observe("explain_batch_groups", len(first))
                for wave in (first, rest):
                    futures = {
                        position: pool.submit(
                            run_one, chosen[position], time.perf_counter()
                        )
                        for position in wave
                    }
                    for position, future in futures.items():
                        slots[position] = future.result()
                explanations = [
                    slot for slot in slots if slot is not None
                ]
        metrics.incr("explanations", len(chosen))
        metrics.observe("explain_batch_size", len(chosen))
        return explanations

    def _subtree_waves(
        self, chosen: Sequence[Fact]
    ) -> tuple[list[int], list[int]]:
        """Schedule a batch in two waves grouped by shared derivation
        subtrees.

        Queries whose derivation spines share a root share the bulk of
        their proof subtree, so serving one *representative* per root
        first pays the subtree's mapping/verbalization once; the rest of
        the group then lands on warm memo entries instead of parking on
        the in-flight latch behind it.  Returns (representatives,
        followers) as input positions — callers place results back by
        position, so input order is preserved.  Queries the index cannot
        root (not derived — the error must surface from the worker, not
        here) are scheduled as their own representatives.
        """
        index = self.result.index
        seen: set[str] = set()
        first: list[int] = []
        rest: list[int] = []
        for position, query in enumerate(chosen):
            try:
                spine = index.spine(query)
                root = index.fact_key(spine.steps[0].record.fact)
            except KeyError:
                root = None
            if root is None or root not in seen:
                if root is not None:
                    seen.add(root)
                first.append(position)
            else:
                rest.append(position)
        return first, rest

    def _explain_batch_bounded(
        self,
        chosen: Sequence[Fact],
        deadline: Deadline,
        options: dict,
    ) -> list[BatchOutcome]:
        """Deadline-bounded batch: partial results, never a hung pool.

        Workers check the deadline before starting, so queued tasks whose
        budget is already spent fail fast instead of occupying threads; a
        task that *began* within budget is allowed to finish and its
        result is returned (computed work is never discarded).
        """
        if not chosen:
            return []
        metrics = self.service.metrics
        recorder = obs.get_flight()
        outcomes: list[BatchOutcome | None] = [None] * len(chosen)
        with recorder.record(
            "explain_batch", fingerprint=self.compiled.fingerprint,
            queries=len(chosen), deadline_s=deadline.budget_s,
        ) as batch_record, _Timed(metrics, "explain_batch"):
            try:
                deadline.check("explain_batch provenance")
                self.result.index  # materialize the shared index once
            except DeadlineExceeded:
                outcomes = [BatchOutcome.missed(query) for query in chosen]
                metrics.incr("explain_deadline_exceeded", len(chosen))
                metrics.observe("explain_batch_size", len(chosen))
                batch_record.event(
                    "deadline_exceeded", where="provenance", missed=len(chosen)
                )
                return outcomes
            if len(chosen) == 1 or self.service.max_workers <= 1:
                for index, query in enumerate(chosen):
                    if deadline.expired:
                        outcomes[index] = BatchOutcome.missed(query)
                        continue
                    outcomes[index] = self._bounded_one(query, options)
            else:
                tracer = obs.get_tracer()
                batch_span = tracer.current()
                pool = self.service._thread_pool()

                def run_one(query: Fact) -> Explanation:
                    deadline.check("explain_batch task")
                    with tracer.attach(batch_span), recorder.attach(
                        batch_record
                    ):
                        with tracer.span(
                            "service.explain_task", query=str(query)
                        ):
                            with recorder.record(
                                "explain_task", query=str(query),
                                fingerprint=self.compiled.fingerprint,
                            ):
                                return self.explainer.explain(
                                    query, **options
                                )

                futures = [pool.submit(run_one, query) for query in chosen]
                for index, (query, future) in enumerate(zip(chosen, futures)):
                    try:
                        explanation = future.result(
                            timeout=deadline.remaining()
                        )
                        outcomes[index] = BatchOutcome.success(
                            query, explanation
                        )
                    except FuturesTimeout:
                        future.cancel()
                        outcomes[index] = BatchOutcome.missed(query)
                    except DeadlineExceeded as error:
                        outcomes[index] = BatchOutcome.missed(query, error)
                    except Exception as error:
                        outcomes[index] = BatchOutcome.failed(query, error)
        final = [outcome for outcome in outcomes if outcome is not None]
        served = sum(1 for outcome in final if outcome.ok)
        missed = sum(
            1 for outcome in final
            if outcome.status == BatchOutcome.STATUS_DEADLINE
        )
        metrics.incr("explanations", served)
        if missed:
            metrics.incr("explain_deadline_exceeded", missed)
            batch_record.event(
                "deadline_exceeded", where="tasks", missed=missed
            )
        metrics.observe("explain_batch_size", len(chosen))
        return final

    def _bounded_one(self, query: Fact, options: dict) -> BatchOutcome:
        try:
            return BatchOutcome.success(
                query, self.explainer.explain(query, **options)
            )
        except DeadlineExceeded as error:
            return BatchOutcome.missed(query, error)
        except Exception as error:
            return BatchOutcome.failed(query, error)

    def report(self, **options) -> BusinessReport:
        """A business report over this instance (see ReportBuilder)."""
        with _Timed(self.service.metrics, "report"):
            report = ReportBuilder(self.explainer).build(**options)
        self.service.metrics.incr("reports")
        return report

    def why(self, query: Fact) -> str:
        return self.explainer.why(query)

    def why_not(self, query: Fact) -> WhyNotAnswer:
        """Why ``query`` is *not* derived, memoized per session.

        The prober is kept for the session (it shares the provenance
        index's active-fact view) and its answers live in the shared
        LRU's ``whynot`` region, scoped by the explainer's memo scope so
        a re-reasoned session never serves stale reports.
        """
        recorder = obs.get_flight()
        with recorder.record(
            "why_not", query=str(query),
            fingerprint=self.compiled.fingerprint,
        ), _Timed(self.service.metrics, "why_not"):
            answer = self._whynot_region.get_or_create(
                (
                    self.explainer.memo_scope,
                    self.explainer.index.fact_key(query),
                ),
                lambda: self._whynot_explainer().explain_why_not(query),
            )
        self.service.metrics.incr("why_not")
        return answer

    def _whynot_explainer(self) -> WhyNotExplainer:
        if self._whynot is None:
            self._whynot = WhyNotExplainer(
                self.result, self.compiled.glossary, index=self.result.index
            )
        return self._whynot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def update(
        self,
        adds: Iterable[Fact] = (),
        retracts: Iterable[Fact] = (),
        max_rounds: int = 10_000,
    ) -> UpdateOutcome:
        """Apply an extensional add/retract delta to this session, live.

        The chase result is maintained incrementally
        (:mod:`repro.engine.incremental`) at a cost proportional to the
        delta's consequences, the provenance index is rebound in place
        (memoized spines/proofs for untouched subtrees survive), and the
        explainer is rebound under a fresh memo scope so stale
        explanation and why-not entries are scoped out exactly as
        :meth:`re_reason` does.  The returned
        :class:`~repro.engine.incremental.UpdateOutcome` reports the
        effective delta and whether the replay ran or fell back to a
        full re-chase.
        """
        adds = tuple(adds)
        retracts = tuple(retracts)
        recorder = obs.get_flight()
        with recorder.record(
            "update", query=self.compiled.program.name,
            fingerprint=self.compiled.fingerprint,
            adds=len(adds), retracts=len(retracts),
        ) as flight, _Timed(self.service.metrics, "update"):
            engine = ChaseEngine(strategy="planned", max_rounds=max_rounds)
            outcome = engine.update(
                self.compiled.program, self.result.chase_result,
                adds, retracts,
            )
            flight.set(mode=outcome.mode)
            if outcome.mode != "noop":
                self.result.apply_update(outcome.result)
                self.explainer = Explainer(
                    self.result, compiled=self.compiled,
                    cache=self.service.explanation_cache,
                )
                self._whynot = None
        self.service.metrics.incr("updates")
        self.service.metrics.incr(f"updates_{outcome.mode}")
        return outcome

    def add_facts(self, facts: Iterable[Fact]) -> UpdateOutcome:
        """Insert extensional facts into the live session (see update)."""
        return self.update(adds=facts)

    def retract_facts(self, facts: Iterable[Fact]) -> UpdateOutcome:
        """Retract extensional facts from the live session (see update)."""
        return self.update(retracts=facts)

    def re_reason(
        self,
        database: Database | Iterable[Fact],
        max_rounds: int = 10_000,
        strategy: str = "naive",
    ) -> "ExplanationSession":
        """Re-materialize this session over new data, in place.

        When the new database is expressible as an add/retract delta
        against the current extensional instance (retained facts keep
        their relative order, new facts appended), the change routes
        through the incremental :meth:`update` path; otherwise a fresh
        chase runs, which rebuilds the provenance index from scratch.
        Either way the explainer is rebound under a fresh memo scope:
        every cache key of the old instance carries the old binding id,
        so stale entries can never be served again — they simply age out
        of the shared LRU.  The compiled artifact is reused as-is (it is
        database-independent).
        """
        facts = (
            tuple(database.facts()) if isinstance(database, Database)
            else tuple(database)
        )
        delta = self._as_delta(facts)
        if delta is not None:
            adds, retracts = delta
            self.update(adds=adds, retracts=retracts, max_rounds=max_rounds)
            self.service.metrics.incr("re_reasons")
            self.service.metrics.incr("re_reason_incremental")
            return self
        with _Timed(self.service.metrics, "chase"):
            result = reason(
                self.compiled.program, facts,
                max_rounds=max_rounds, strategy=strategy,
            )
        self.result = result
        self.explainer = Explainer(
            result, compiled=self.compiled,
            cache=self.service.explanation_cache,
        )
        self._whynot = None
        self.service.metrics.incr("re_reasons")
        self.service.metrics.incr("re_reason_full")
        return self

    def _as_delta(
        self, facts: tuple[Fact, ...]
    ) -> tuple[tuple[Fact, ...], tuple[Fact, ...]] | None:
        """Express ``facts`` as (adds, retracts) against the current EDB.

        Returns ``None`` when the request is not delta-shaped: duplicate
        facts, retained facts reordered, or new facts interleaved rather
        than appended — those need the full re-chase to reproduce the
        requested insertion order.
        """
        if len(set(facts)) != len(facts):
            return None
        old_edb = extensional_facts(self.result.chase_result)
        new_set = set(facts)
        adds = tuple(f for f in facts if f not in set(old_edb))
        retained = tuple(f for f in old_edb if f in new_set)
        if retained + adds != facts:
            return None
        retracts = tuple(f for f in old_edb if f not in new_set)
        return adds, retracts


class ExplanationService:
    """Serves explanation workloads off a compiled-program cache.

    Parameters
    ----------
    llm:
        Default template enhancer for compilations that do not pass one
        explicitly (``None`` keeps templates deterministic).
    enhanced_versions:
        Interchangeable enhanced versions collected per template.
    max_compiled_programs:
        Bound of the compiled-artifact LRU.
    explanation_cache_size:
        Bound of the shared cross-session explanation LRU.
    max_workers:
        Thread-pool width for ``explain_batch`` (1 disables threading).
    metrics:
        The :class:`~repro.obs.metrics.ServiceMetrics` registry to report
        into; pass one to pool service telemetry with ambient chase and
        compile counters in a single stats document.  A fresh registry is
        created when omitted.
    retry_policy:
        The :class:`~repro.resilience.policy.RetryPolicy` applied to
        enhancement calls during compilation (``None`` uses the default
        policy; the enhancer degrades to base templates either way).
    """

    def __init__(
        self,
        llm: SupportsComplete | None = None,
        enhanced_versions: int = 1,
        max_compiled_programs: int = 32,
        explanation_cache_size: int = DEFAULT_EXPLANATION_CACHE_SIZE,
        max_workers: int = 4,
        metrics: ServiceMetrics | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.llm = llm
        self.enhanced_versions = enhanced_versions
        self.retry_policy = retry_policy
        self.max_workers = max_workers
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.compiled_cache = LRUCache(max_compiled_programs)
        self.explanation_cache = LRUCache(explanation_cache_size)
        self.metrics.register_cache("compiled_cache", self.compiled_cache)
        self.metrics.register_cache("explanation_cache", self.explanation_cache)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compile layer access
    # ------------------------------------------------------------------
    def compile(
        self,
        program: Program,
        glossary: DomainGlossary,
        llm: SupportsComplete | None = _UNSET,  # type: ignore[assignment]
        enhanced_versions: int | None = None,
    ) -> CompiledProgram:
        """The compiled artifact for (program, glossary, enhancer).

        Cache hits are free; misses run the database-independent phase
        once and store the artifact under its content hash.
        """
        chosen_llm = self.llm if llm is _UNSET else llm
        versions = (
            self.enhanced_versions if enhanced_versions is None
            else enhanced_versions
        )
        fingerprint = compilation_fingerprint(
            program, glossary, chosen_llm, versions
        )
        cached = self.compiled_cache.get(fingerprint)
        if cached is not None:
            self.metrics.incr("compile_hits")
            return cached
        self.metrics.incr("compile_misses")
        with _Timed(self.metrics, "compile"):
            compiled = compile_program(
                program, glossary, llm=chosen_llm, enhanced_versions=versions,
                retry_policy=self.retry_policy,
            )
        self.compiled_cache.put(fingerprint, compiled)
        return compiled

    def install(self, compiled: CompiledProgram) -> CompiledProgram:
        """Pre-seed the compile cache with an existing artifact (e.g. one
        deserialized from disk); returns the artifact that is now cached."""
        self.compiled_cache.put(compiled.fingerprint, compiled)
        self.metrics.incr("compile_installed")
        return compiled

    def warm_start(
        self, path, program: Program, glossary: DomainGlossary
    ) -> CompiledProgram:
        """Load a serialized compiled artifact and install it.

        The artifact keeps its compile-time fingerprint, so a later
        :meth:`compile` with the matching enhancer configuration hits the
        cache and skips both analysis and enhancement.
        """
        from ..io import load_compiled_program

        with _Timed(self.metrics, "warm_start"):
            compiled = load_compiled_program(
                path, program, glossary, llm=self.llm
            )
        return self.install(compiled)

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def session(
        self,
        application_or_program,
        database: Database | Iterable[Fact],
        glossary: DomainGlossary | None = None,
        llm: SupportsComplete | None = _UNSET,  # type: ignore[assignment]
        max_rounds: int = 10_000,
        strategy: str = "naive",
    ) -> ExplanationSession:
        """Accept one (program, database) workload.

        ``application_or_program`` is either a
        :class:`~repro.apps.base.KGApplication` (its glossary is used) or
        a bare :class:`~repro.datalog.program.Program` plus ``glossary``.
        Compiles (or reuses) the artifact, runs the chase over
        ``database`` with the chosen evaluation ``strategy`` (naive,
        semi-naive or planned) and returns the bound session.
        """
        program, chosen_glossary = _unpack_application(
            application_or_program, glossary
        )
        recorder = obs.get_flight()
        with recorder.record(
            "session", query=program.name, strategy=strategy
        ) as flight:
            compiled = self.compile(program, chosen_glossary, llm=llm)
            flight.set(fingerprint=compiled.fingerprint)
            with _Timed(self.metrics, "chase"):
                result = reason(
                    program, database, max_rounds=max_rounds,
                    strategy=strategy,
                )
        self.metrics.incr("sessions")
        return ExplanationSession(self, compiled, result)

    def bind(self, application_or_program, result: ReasoningResult,
             glossary: DomainGlossary | None = None) -> ExplanationSession:
        """A session over an already-materialized reasoning result."""
        program, chosen_glossary = _unpack_application(
            application_or_program, glossary
        )
        compiled = self.compile(program, chosen_glossary)
        self.metrics.incr("sessions")
        return ExplanationSession(self, compiled, result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-explain",
                )
            return self._pool

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        # Full cache snapshots (occupancy plus the per-region hit/miss
        # breakdown of the memoized explanation-serving layers).
        snapshot["compiled_cache"] = self.compiled_cache.snapshot()
        snapshot["explanation_cache"] = self.explanation_cache.snapshot()
        profiler = obs.get_profiler()
        if profiler.enabled:
            snapshot["profile"] = profiler.snapshot()
        return snapshot


def _unpack_application(
    application_or_program, glossary: DomainGlossary | None
) -> tuple[Program, DomainGlossary]:
    program = getattr(application_or_program, "program", None)
    if program is not None and glossary is None:
        glossary = getattr(application_or_program, "glossary", None)
    if program is None:
        program = application_or_program
    if glossary is None:
        raise ValueError(
            "a glossary is required (pass a KGApplication or an explicit "
            "glossary argument)"
        )
    return program, glossary
