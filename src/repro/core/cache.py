"""A small thread-safe bounded LRU cache with hit/miss accounting.

The explanation stack is pure over frozen inputs, which makes caching
safe — but the seed implementation cached in plain unbounded dicts, one
per :class:`~repro.core.explain.Explainer`.  Under service traffic
(many instances, many queries) that is a slow memory leak.  This module
provides the shared bounded replacement used by the runtime and service
layers: an ordinary ``OrderedDict``-based LRU guarded by a lock, with
counters that feed the service metrics.

Two additions serve the memoized explanation fast path:

* :meth:`LRUCache.get_or_create` installs a **per-key in-flight latch**,
  so two threads racing on the same key never both run the factory —
  the second waits for the first's value instead of duplicating
  milliseconds of mapping/verbalization work (and instead of the old
  compute-twice/first-store-wins behaviour);
* :class:`CacheRegion` carves named, separately counted regions out of
  one shared LRU (final explanations, memoized subtrees, ``why()``
  sentences, violation reports), keeping the bound global while the
  telemetry stays per-region (see :meth:`LRUCache.snapshot`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from .. import obs

#: Default number of explanations kept per shared cache.  Explanations
#: are small (text plus provenance records already held by the chase),
#: so a few thousand entries are cheap; the bound is what matters.
DEFAULT_EXPLANATION_CACHE_SIZE = 4096

_SENTINEL = object()


@dataclass
class CacheStats:
    """Monotonic counters describing a cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class _InFlight:
    """The latch other threads wait on while one runs the factory."""

    __slots__ = ("event", "value", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.failed = False


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    All operations are O(1) and thread-safe; ``get`` refreshes recency.
    ``capacity <= 0`` disables storage entirely (every lookup misses),
    which gives benchmarks a switch to measure uncached latency.
    """

    def __init__(self, capacity: int = DEFAULT_EXPLANATION_CACHE_SIZE):
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._pending: dict[Hashable, _InFlight] = {}
        self._regions: dict[str, "CacheRegion"] = {}
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, creating (and storing) it on a miss.

        The factory runs outside the lock: explanation generation can
        take milliseconds and must not serialize unrelated lookups.  A
        per-key in-flight latch guarantees the factory runs **at most
        once per concurrent miss**: the first thread to miss becomes the
        owner and computes, racing threads park on the latch and are
        served the owner's value (counted as hits — they never ran the
        factory).  If the owner's factory raises, the error propagates
        to the owner, the latch is torn down, and waiters retry from the
        top (one of them becomes the next owner).

        Hit/miss accounting happens under the same lock as the lookup it
        describes — one logical lookup, one counted outcome — so a
        concurrent :meth:`snapshot` always sees counters consistent with
        the entries.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
                latch = self._pending.get(key)
                if latch is None:
                    latch = _InFlight()
                    self._pending[key] = latch
                    self.stats.misses += 1
                    owner = True
                else:
                    owner = False
            if not owner:
                latch.event.wait()
                if latch.failed:
                    continue  # the owner's factory raised: retry
                with self._lock:
                    self.stats.hits += 1
                    if key in self._entries:
                        self._entries.move_to_end(key)
                return latch.value
            try:
                created = factory()
            except BaseException:
                with self._lock:
                    if self._pending.get(key) is latch:
                        del self._pending[key]
                latch.failed = True
                latch.event.set()
                raise
            with self._lock:
                if self._pending.get(key) is latch:
                    del self._pending[key]
                existing = self._entries.get(key, _SENTINEL)
                if existing is not _SENTINEL:
                    # A direct put() raced in; the stored value wins.
                    self._entries.move_to_end(key)
                    created = existing
                elif self.capacity > 0:
                    self._entries[key] = created
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
            latch.value = created
            latch.event.set()
            return created

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def region(self, name: str) -> "CacheRegion":
        """The named region view of this cache (created on first use).

        Regions share the LRU's storage and global bound but namespace
        their keys and keep their own hit/miss counters, so one shared
        cache can back several memoization layers without collisions.
        """
        with self._lock:
            found = self._regions.get(name)
            if found is None:
                found = CacheRegion(self, name)
                self._regions[name] = found
            return found

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Stats plus occupancy, read atomically under the cache lock
        (the view the obs registry exports for each attached cache).
        Carries a per-region breakdown when regions are in use."""
        with self._lock:
            data = self.stats.snapshot()
            data["size"] = len(self._entries)
            data["capacity"] = self.capacity
            if self._regions:
                data["regions"] = {
                    name: region.stats.snapshot()
                    for name, region in sorted(self._regions.items())
                }
            return data

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CacheRegion:
    """A named, separately counted view of a shared :class:`LRUCache`.

    Keys are namespaced with the region name, so regions never collide;
    storage, eviction and the in-flight latch all belong to the parent.
    Obtain regions via :meth:`LRUCache.region` — constructing one
    directly would bypass the parent's registry (and the snapshot).
    """

    def __init__(self, cache: LRUCache, name: str):
        self.cache = cache
        self.name = name
        self.stats = CacheStats()

    def _scoped(self, key: Hashable) -> Hashable:
        return (self.name, key)

    def get(self, key: Hashable, default: Any = None) -> Any:
        found = self.cache.get(self._scoped(key), _SENTINEL)
        with self.cache._lock:
            if found is _SENTINEL:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        self._record_flight(found is not _SENTINEL)
        return default if found is _SENTINEL else found

    def _record_flight(self, hit: bool) -> None:
        """Attribute this lookup to the open flight record, if any."""
        record = obs.current_flight()
        if record is not None:
            record.count(
                f"cache.{self.name}.{'hit' if hit else 'miss'}"
            )

    def put(self, key: Hashable, value: Any) -> None:
        self.cache.put(self._scoped(key), value)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        ran = False

        def wrapped() -> Any:
            nonlocal ran
            ran = True
            return factory()

        try:
            value = self.cache.get_or_create(self._scoped(key), wrapped)
        except BaseException:
            # The factory raised (ours, or we were a waiter whose retry
            # ran it): the lookup still happened and was a miss — count
            # it, or the region's hit rate overstates itself under load.
            if ran:
                with self.cache._lock:
                    self.stats.misses += 1
                self._record_flight(False)
            raise
        with self.cache._lock:
            if ran:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        self._record_flight(not ran)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return self._scoped(key) in self.cache
