"""A small thread-safe bounded LRU cache with hit/miss accounting.

The explanation stack is pure over frozen inputs, which makes caching
safe — but the seed implementation cached in plain unbounded dicts, one
per :class:`~repro.core.explain.Explainer`.  Under service traffic
(many instances, many queries) that is a slow memory leak.  This module
provides the shared bounded replacement used by the runtime and service
layers: an ordinary ``OrderedDict``-based LRU guarded by a lock, with
counters that feed the service metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

#: Default number of explanations kept per shared cache.  Explanations
#: are small (text plus provenance records already held by the chase),
#: so a few thousand entries are cheap; the bound is what matters.
DEFAULT_EXPLANATION_CACHE_SIZE = 4096


@dataclass
class CacheStats:
    """Monotonic counters describing a cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    All operations are O(1) and thread-safe; ``get`` refreshes recency.
    ``capacity <= 0`` disables storage entirely (every lookup misses),
    which gives benchmarks a switch to measure uncached latency.
    """

    def __init__(self, capacity: int = DEFAULT_EXPLANATION_CACHE_SIZE):
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, creating (and storing) it on a miss.

        The factory runs outside the lock: explanation generation can
        take milliseconds and must not serialize unrelated lookups.  Two
        racing threads may both compute; the first stored value wins and
        both calls return an equivalent object (the pipeline is pure).

        Hit/miss accounting happens under the same lock as the lookup it
        describes — one logical lookup, one counted outcome — and the
        post-factory recheck and insert share a single critical section,
        so a concurrent :meth:`snapshot` always sees counters consistent
        with the entries.
        """
        sentinel = object()
        found = self.get(key, sentinel)  # counts the hit/miss under lock
        if found is not sentinel:
            return found
        created = factory()
        with self._lock:
            existing = self._entries.get(key, sentinel)
            if existing is not sentinel:
                # A racing thread stored first; its value wins.  The miss
                # was already counted for this logical lookup.
                self._entries.move_to_end(key)
                return existing
            if self.capacity > 0:
                self._entries[key] = created
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return created

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Stats plus occupancy, read atomically under the cache lock
        (the view the obs registry exports for each attached cache)."""
        with self._lock:
            data = self.stats.snapshot()
            data["size"] = len(self._entries)
            data["capacity"] = self.capacity
            return data

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
