"""The verbalizer: deterministic Vadalog-to-natural-language conversion.

Implements the module described in Section 4.2 of the paper: each rule is
algorithmically translated into a sentence of the form *"Since ⟨body⟩, then
⟨head⟩."*, where atoms are rendered through the domain glossary, "and"
joins conjuncts, built-in comparison operators become phrases such as "is
higher than", and aggregations become *"with ⟨result⟩ given by the sum of
⟨contributors⟩"*.

The verbalizer serves two distinct callers:

* **template generation** — rules of a reasoning path are verbalized with
  *tokens* (``<x>``) in place of variables; token names are unified across
  the rule interfaces of the path (the head of a producing rule shares
  tokens with the consuming body atom) so the story reads coherently;
* **instance verbalization** — the chase steps of a concrete proof are
  verbalized with the actual constants, producing the long deterministic
  explanation the LLM baselines paraphrase or summarize (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..datalog.atoms import Atom
from ..datalog.conditions import BinaryOp, Comparison, Expression
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Null, Term, Variable
from ..datalog.unify import apply_substitution as apply_substitution_for_display
from ..engine.chase import ChaseStepRecord
from .glossary import DomainGlossary
from .paths import ReasoningPath

#: NL phrasing of the comparison operators (paper, Section 4.2).
OPERATOR_PHRASES = {
    ">": "is higher than",
    "<": "is lower than",
    ">=": "is at least",
    "<=": "is at most",
    "==": "is equal to",
    "!=": "is different from",
}

#: NL names of the aggregation functions.
AGGREGATE_PHRASES = {
    "sum": "the sum of",
    "prod": "the product of",
    "min": "the minimum of",
    "max": "the maximum of",
    "count": "the count of",
}

_ARITHMETIC_PHRASES = {"+": "plus", "-": "minus", "*": "times", "/": "divided by"}


def render_constant(constant: Constant) -> str:
    """Render a constant for inclusion in text (ints without trailing .0)."""
    return str(constant)


@dataclass(frozen=True)
class PathTokenMap:
    """Token assignment for a reasoning path.

    Maps ``(rule_label, variable_name)`` to a token name.  Tokens are
    shared across rules exactly when the path's topology unifies the
    variables (a producing rule's head variable with the consuming body
    atom's variable); otherwise same-named variables of different rules
    receive distinct tokens (``y``, ``y2``, …).
    """

    mapping: Mapping[tuple[str, str], str]

    def token(self, rule_label: str, variable: Variable | str) -> str:
        name = variable.name if isinstance(variable, Variable) else variable
        return self.mapping[(rule_label, name)]

    def tokens(self) -> frozenset[str]:
        return frozenset(self.mapping.values())

    def items(self):
        return self.mapping.items()


def build_path_tokens(path: ReasoningPath) -> PathTokenMap:
    """Assign unified tokens to every variable of every rule in the path.

    Processing rules in firing order, the body atoms whose predicate is
    produced by an earlier rule of the path inherit that rule's head tokens
    positionally; every other variable receives a fresh token derived from
    its name.
    """
    mapping: dict[tuple[str, str], str] = {}
    taken: set[str] = set()
    head_tokens: dict[str, tuple[str, Rule]] = {}  # predicate -> (label, rule)

    def fresh(name: str) -> str:
        if name not in taken:
            taken.add(name)
            return name
        suffix = 2
        while f"{name}{suffix}" in taken:
            suffix += 1
        token = f"{name}{suffix}"
        taken.add(token)
        return token

    for rule in path.rules:
        # Variables eligible for token inheritance from producing rules.
        # An aggregate rule combines *several* facts of its input
        # predicate, so only its grouping variables stay tied to any one
        # producer; contributor-side variables get fresh tokens whose
        # values are collected per contributor at instantiation time
        # (keeping parallel enumerations like "short and long ... 8 and 2"
        # aligned).
        if rule.aggregate is not None:
            inheritable = set(rule.aggregate.group_by)
        else:
            inheritable = None  # every variable
        # A predicate consumed twice in one body (e.g. Control(z, x),
        # Control(z, y) in the close-links λ3) makes positional
        # inheritance ambiguous: those atoms keep fresh tokens.
        body_predicate_counts: dict[str, int] = {}
        for atom in rule.body:
            body_predicate_counts[atom.predicate] = (
                body_predicate_counts.get(atom.predicate, 0) + 1
            )
        # Inherit tokens through produced body atoms.
        for atom in rule.body:
            if body_predicate_counts[atom.predicate] > 1:
                continue
            producer = head_tokens.get(atom.predicate)
            if producer is None:
                continue
            producer_label, producer_rule = producer
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    continue
                if inheritable is not None and term not in inheritable:
                    continue
                key = (rule.label, term.name)
                if key in mapping:
                    continue
                head_term = producer_rule.head.terms[position]
                if isinstance(head_term, Variable):
                    inherited = mapping.get((producer_label, head_term.name))
                    if inherited is not None:
                        mapping[key] = inherited
        # Fresh tokens for everything still unassigned.
        seen_vars: list[Variable] = []
        for atom in (*rule.body, rule.head):
            for variable in atom.variables():
                if variable not in seen_vars:
                    seen_vars.append(variable)
        if rule.aggregate is not None and rule.aggregate.result not in seen_vars:
            seen_vars.append(rule.aggregate.result)
        for variable, __ in rule.assignments:
            if variable not in seen_vars:
                seen_vars.append(variable)
        for variable in seen_vars:
            key = (rule.label, variable.name)
            if key not in mapping:
                mapping[key] = fresh(variable.name)
        # Register this rule as the producer of its head predicate.  The
        # *latest* producer wins: in a chained path the consumer reads
        # the most recent rule's output (e.g. delta4 consumes the AtRisk
        # fact delta3 derived, not the one delta2 derived earlier).
        head_tokens[rule.head_predicate] = (rule.label, rule)
    return PathTokenMap(mapping)


class Verbalizer:
    """Deterministic rule/step/path verbalization through a glossary."""

    def __init__(self, glossary: DomainGlossary):
        self.glossary = glossary

    # ------------------------------------------------------------------
    # Term/expression rendering
    # ------------------------------------------------------------------
    def _term_text(
        self, term: Term, rule_label: str, tokens: PathTokenMap | None
    ) -> str:
        if isinstance(term, Constant):
            return render_constant(term)
        if isinstance(term, Null):
            return "some entity"
        if tokens is None:
            return f"<{term.name}>"
        return f"<{tokens.token(rule_label, term)}>"

    def _expression_text(
        self, expr: Expression, rule_label: str, tokens: PathTokenMap | None
    ) -> str:
        if isinstance(expr, BinaryOp):
            left = self._expression_text(expr.left, rule_label, tokens)
            right = self._expression_text(expr.right, rule_label, tokens)
            return f"{left} {_ARITHMETIC_PHRASES[expr.op]} {right}"
        return self._term_text(expr, rule_label, tokens)

    # ------------------------------------------------------------------
    # Atom / condition / aggregate rendering
    # ------------------------------------------------------------------
    def atom_text(
        self, atom: Atom, rule_label: str, tokens: PathTokenMap | None = None
    ) -> str:
        entry = self.glossary.entry(atom.predicate)
        token_of = {
            position: self._term_text(term, rule_label, tokens)
            for position, term in enumerate(atom.terms)
        }
        return entry.render_atom(atom, token_of).rstrip(".")

    def condition_text(
        self, condition: Comparison, rule_label: str, tokens: PathTokenMap | None
    ) -> str:
        left = self._expression_text(condition.left, rule_label, tokens)
        right = self._expression_text(condition.right, rule_label, tokens)
        return f"{left} {OPERATOR_PHRASES[condition.op]} {right}"

    # ------------------------------------------------------------------
    # Rule rendering (template mode)
    # ------------------------------------------------------------------
    def rule_sentence(
        self,
        rule: Rule,
        tokens: PathTokenMap | None = None,
        multi_contributors: bool = False,
    ) -> str:
        """One *"Since ..., then ..."* sentence for a rule.

        ``multi_contributors`` selects the aggregation phrasing: when
        ``False`` the aggregate is truncated — the rule reads like a plain
        rule (paper, Section 4.2); when ``True`` the *"with <r> given by
        the sum of <v>"* clause is emitted and the contributor tokens may
        be substituted by several values at instantiation time.
        """
        aggregate = rule.aggregate
        pre, post = [], []
        for condition in rule.conditions:
            if aggregate is not None and aggregate.result in condition.variables():
                post.append(condition)
            else:
                pre.append(condition)

        clauses = [self.atom_text(atom, rule.label, tokens) for atom in rule.body]
        clauses.extend(
            "it is not the case that "
            + self.atom_text(atom, rule.label, tokens)
            for atom in rule.negated
        )
        clauses.extend(
            f"{self._term_text(variable, rule.label, tokens)} being "
            f"{self._expression_text(expression, rule.label, tokens)}"
            for variable, expression in rule.assignments
        )
        clauses.extend(self.condition_text(c, rule.label, tokens) for c in pre)
        body_text = ", and ".join(clauses)
        if aggregate is not None and multi_contributors:
            result = self._term_text(aggregate.result, rule.label, tokens)
            argument = self._expression_text(aggregate.argument, rule.label, tokens)
            phrase = AGGREGATE_PHRASES[aggregate.function]
            body_text += f", with {result} given by {phrase} {argument}"
        if post:
            post_text = ", and ".join(
                self.condition_text(c, rule.label, tokens) for c in post
            )
            body_text += f", and {post_text}"
        head_text = self.atom_text(rule.head, rule.label, tokens)
        return f"Since {body_text}, then {head_text}."

    def path_text(self, path: ReasoningPath) -> tuple[str, PathTokenMap]:
        """Verbalize a whole reasoning path into a deterministic
        explanation template (Section 4.2), returning the text and the
        token map needed to instantiate it."""
        tokens = build_path_tokens(path)
        sentences = [
            self.rule_sentence(rule, tokens, multi_contributors=path.is_multi(rule.label))
            for rule in path.rules
        ]
        return " ".join(sentences), tokens

    # ------------------------------------------------------------------
    # Instance rendering (deterministic proof explanation)
    # ------------------------------------------------------------------
    def ground_atom_text(self, atom: Atom) -> str:
        """Render one ground atom through its glossary entry, constants
        substituted — the sentence fragment every instance-level
        verbalization (steps, proofs, violations, why-not obstacles)
        builds on."""
        entry = self.glossary.entry(atom.predicate)
        token_of = {
            position: (
                render_constant(term) if isinstance(term, Constant)
                else str(term)
            )
            for position, term in enumerate(atom.terms)
        }
        return entry.render_atom(atom, token_of).rstrip(".")

    # Backwards-compatible alias for the pre-service-layer private name.
    _ground_atom_text = ground_atom_text

    def _ground_condition_text(
        self, condition: Comparison, record: ChaseStepRecord
    ) -> str | None:
        """Render a condition with the step's actual values, when every
        variable it mentions is bound in the record (group bindings of
        aggregate steps omit per-contributor variables)."""
        binding = record.binding
        if any(v not in binding for v in condition.variables()):
            return None
        left = self._grounded_expression(condition.left, binding)
        right = self._grounded_expression(condition.right, binding)
        return f"{left} {OPERATOR_PHRASES[condition.op]} {right}"

    def _grounded_expression(self, expr: Expression, binding) -> str:
        if isinstance(expr, BinaryOp):
            left = self._grounded_expression(expr.left, binding)
            right = self._grounded_expression(expr.right, binding)
            return f"{left} {_ARITHMETIC_PHRASES[expr.op]} {right}"
        if isinstance(expr, Variable):
            bound = binding.get(expr, expr)
            if isinstance(bound, Constant):
                return render_constant(bound)
            return str(bound)
        if isinstance(expr, Constant):
            return render_constant(expr)
        return str(expr)

    def step_sentence(self, record: ChaseStepRecord) -> str:
        """Verbalize one concrete chase step with its actual constants.

        This is the building block of the deterministic instance
        explanation used as the LLM baselines' input (Section 6.2).
        """
        clauses = [self.ground_atom_text(parent) for parent in record.parents]
        for negated in record.rule.negated:
            grounded = apply_substitution_for_display(negated, record.binding)
            clauses.append(
                "there is no record that " + self.ground_atom_text(grounded)
            )
        for variable, expression in record.rule.assignments:
            if variable in record.binding:
                value = self._grounded_expression(variable, record.binding)
                clauses.append(
                    f"{value} being "
                    f"{self._grounded_expression(expression, record.binding)}"
                )
        for condition in record.rule.conditions:
            rendered = self._ground_condition_text(condition, record)
            if rendered is not None:
                clauses.append(rendered)
        if record.is_aggregate and record.multi_contributor:
            values = " and ".join(
                render_constant(Constant(c.value))  # type: ignore[arg-type]
                if not isinstance(c.value, Constant) else str(c.value)
                for c in record.contributors
            )
            aggregate = record.rule.aggregate
            assert aggregate is not None
            phrase = AGGREGATE_PHRASES[aggregate.function]
            total = render_constant(Constant(record.aggregate_value))  # type: ignore[arg-type]
            clauses.append(f"{total} is given by {phrase} {values}")
        body_text = ", and ".join(clauses)
        head_text = self.ground_atom_text(record.fact)
        return f"Since {body_text}, then {head_text}."

    def proof_text(self, records: list[ChaseStepRecord]) -> str:
        """The full deterministic explanation of a proof: every chase step
        verbalized one by one, in derivation order."""
        return " ".join(self.step_sentence(record) for record in records)
