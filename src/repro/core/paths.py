"""Reasoning paths: the symbolic skeletons of explanations.

A *reasoning path* (paper, Definition 4.2) is a subgraph of the dependency
graph D(Σ) that either

* conducts from root nodes to the leaf or to a critical node — a **simple
  reasoning path** Π; or
* connects a critical node with itself or with another critical node — a
  **reasoning cycle** Γ.

We adopt the paper's compact rule-based notation: a path is represented by
the set of rules labelling its edges, e.g. Π5 = {σ1, σ2, σ3}, kept in the
topological order in which the rules fire.

Aggregation analysis (Section 4.1) adds *variants*: for every rule of the
path carrying an aggregation, the path exists in a version where that
aggregation combines a single input (verbalized like a plain rule) and a
"dashed" version where it combines several inputs (verbalized with the
aggregator and multi-valued tokens).  A variant is identified by the set
of rule labels flagged multi-contributor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, combinations
from typing import Iterator

from ..datalog.rules import Rule, pretty_label
from ..datalog.unify import unify_head_with_body_atom


@dataclass(frozen=True)
class ReasoningPath:
    """A simple reasoning path or reasoning cycle in compact notation.

    Attributes
    ----------
    kind:
        ``"simple"`` or ``"cycle"``.
    rules:
        The path's rules in topological firing order.
    multi_rules:
        Labels of aggregate rules flagged as multi-contributor in this
        variant (the "dashed" edges).
    forced_multi:
        Labels whose aggregation is *structurally* multi-input because the
        path merges several derivation branches into it (e.g. σ7 in the
        joint-channel path Π9); these are flagged in every variant.
    name:
        Display name (Π1, Γ2, ...) assigned by the structural analysis.
    anchor:
        For cycles: the critical node the cycle starts from.
    target:
        The predicate the path derives (leaf or critical node).
    """

    kind: str
    rules: tuple[Rule, ...]
    multi_rules: frozenset[str] = frozenset()
    forced_multi: frozenset[str] = frozenset()
    name: str = ""
    anchor: str | None = None
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("simple", "cycle"):
            raise ValueError(f"unknown reasoning-path kind {self.kind!r}")
        if not self.rules:
            raise ValueError("a reasoning path must contain at least one rule")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(rule.label for rule in self.rules)

    @property
    def label_set(self) -> frozenset[str]:
        return frozenset(self.labels)

    @property
    def is_cycle(self) -> bool:
        return self.kind == "cycle"

    def aggregate_labels(self) -> tuple[str, ...]:
        """Labels of the rules in this path that carry an aggregation."""
        return tuple(rule.label for rule in self.rules if rule.has_aggregate)

    @property
    def has_aggregation_variants(self) -> bool:
        """Whether a "dashed" alternative version exists (the * marker of
        the paper's Figure 10)."""
        return any(
            label not in self.forced_multi for label in self.aggregate_labels()
        )

    def is_multi(self, label: str) -> bool:
        return label in self.multi_rules

    def rule(self, label: str) -> Rule:
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise KeyError(f"rule {label!r} not in path {self.name or self.labels}")

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def variants(self) -> Iterator["ReasoningPath"]:
        """Enumerate the aggregation variants of this path.

        Yields one path per subset of optional aggregate rules flagged
        multi (always including the structurally forced ones).  The first
        yielded variant is the base (only forced flags).
        """
        optional = [
            label for label in self.aggregate_labels()
            if label not in self.forced_multi
        ]
        subsets = chain.from_iterable(
            combinations(optional, size) for size in range(len(optional) + 1)
        )
        for subset in subsets:
            yield ReasoningPath(
                kind=self.kind,
                rules=self.rules,
                multi_rules=self.forced_multi | frozenset(subset),
                forced_multi=self.forced_multi,
                name=self.name,
                anchor=self.anchor,
                target=self.target,
            )

    def base_variant(self) -> "ReasoningPath":
        """The variant with only the structurally forced multi flags."""
        return next(self.variants())

    # ------------------------------------------------------------------
    # Identity & rendering
    # ------------------------------------------------------------------
    def signature(self) -> tuple[str, frozenset[str], frozenset[str]]:
        """Structural identity ignoring the display name."""
        return (self.kind, self.label_set, self.multi_rules)

    def is_adjacent_to(self, other: "ReasoningPath") -> bool:
        """Path adjacency (paper, Section 4.1): ``other`` can extend this
        path when there is a homomorphism from the head of this path's
        last rule to a body atom of one of ``other``'s rules.

        Every chase path decomposes into a simple reasoning path followed
        by pairwise-adjacent reasoning cycles; the mapper's compositions
        satisfy this by construction (asserted in tests).
        """
        head = self.rules[-1].head
        for rule in other.rules:
            for atom in rule.body:
                if unify_head_with_body_atom(head, atom):
                    return True
        return False

    def notation(self) -> str:
        """The paper's compact notation, e.g. ``Π5 = {σ1, σ2, σ3}``."""
        labels = ", ".join(pretty_label(l) for l in self.labels)
        marker = "*" if self.multi_rules else ""
        name = self.name or ("Γ" if self.is_cycle else "Π")
        return f"{name}{marker} = {{{labels}}}"

    def __str__(self) -> str:
        return self.notation()
