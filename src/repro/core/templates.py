"""Explanation templates and their instantiation.

An *explanation template* (paper, Section 4.2) is the verbalization of a
reasoning path: fluent text containing ``<tokens>`` that map back to the
path rules' variables.  Given a concrete derivation, an instantiated
explanation is obtained by replacing each token with the constants bound by
the corresponding chase steps — possibly several constants joined by a
textual conjunction when an aggregation combined multiple contributors.

The :class:`TemplateStore` holds one template per aggregation variant of
every reasoning path, each carrying:

* the deterministic text (always available, omission-free by construction);
* zero or more *enhanced* texts produced by an LLM and validated by the
  token-presence guard (Section 4.4) — interchangeable enriched versions;
* a review flag supporting the once-for-all human-in-the-loop check.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..datalog.errors import DatalogError
from ..datalog.terms import Constant, Variable
from ..engine.chase import ChaseStepRecord
from .glossary import DomainGlossary
from .paths import ReasoningPath
from .structural import StructuralAnalysis
from .verbalizer import PathTokenMap, Verbalizer, render_constant

_TOKEN_RE = re.compile(r"<([A-Za-z_][A-Za-z0-9_]*)>")


class TemplateError(DatalogError):
    """Raised when a template cannot be built or instantiated."""


def extract_tokens(text: str) -> frozenset[str]:
    """The set of ``<token>`` names occurring in a template text."""
    return frozenset(_TOKEN_RE.findall(text))


def join_values(values: Sequence[str]) -> str:
    """Textual conjunction: ``a`` / ``a and b`` / ``a, b and c``."""
    if not values:
        raise TemplateError("cannot render a token with no values")
    if len(values) == 1:
        return values[0]
    return ", ".join(values[:-1]) + " and " + values[-1]


@dataclass(frozen=True)
class InstantiatedExplanation:
    """The result of substituting constants into a template."""

    text: str
    template: "ExplanationTemplate"
    token_values: Mapping[str, tuple[str, ...]]

    def constants(self) -> frozenset[str]:
        """Every constant value mentioned through token substitution."""
        return frozenset(
            value for values in self.token_values.values() for value in values
        )


@dataclass
class ExplanationTemplate:
    """A template for one reasoning-path variant."""

    path: ReasoningPath
    deterministic_text: str
    tokens: PathTokenMap
    enhanced_texts: list[str] = field(default_factory=list)
    approved: bool = False

    # ------------------------------------------------------------------
    # Text selection
    # ------------------------------------------------------------------
    @property
    def token_names(self) -> frozenset[str]:
        return self.tokens.tokens()

    def text(self, prefer_enhanced: bool = True, variant_index: int = 0) -> str:
        """The template text: an enhanced version when available and
        requested, the deterministic verbalization otherwise."""
        if prefer_enhanced and self.enhanced_texts:
            return self.enhanced_texts[variant_index % len(self.enhanced_texts)]
        return self.deterministic_text

    def add_enhanced(self, text: str) -> None:
        """Register an enhanced version (caller must have run the token
        guard; see :mod:`repro.core.enhancer`)."""
        self.enhanced_texts.append(text)

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def token_values_for(
        self, assignments: Mapping[str, Sequence[ChaseStepRecord] | ChaseStepRecord]
    ) -> dict[str, tuple[str, ...]]:
        """Resolve every token to its constant value(s) from the chase
        steps assigned to the path's rules.

        A rule label may be assigned several records (the same rule fired
        for several joint contributions); values are collected across all
        of them in assignment order, which keeps parallel multi-valued
        tokens aligned ("FondoItaliano and FrenchPLC ... 0.36 and 0.21").
        """
        collected: dict[str, list[str]] = {}
        for (label, variable_name), token in self.tokens.items():
            assigned = assignments.get(label)
            if assigned is None:
                raise TemplateError(
                    f"no chase step assigned to rule {label!r} of path "
                    f"{self.path.name or self.path.labels}"
                )
            records = (
                (assigned,) if isinstance(assigned, ChaseStepRecord) else assigned
            )
            bucket = collected.setdefault(token, [])
            for record in records:
                values, enumerated = self._variable_values(record, variable_name)
                if enumerated:
                    # One value per contributor, duplicates included: the
                    # enumeration must stay parallel to its sibling tokens
                    # ("0.22, 0.22 and 0.22" sums to the stated total).
                    bucket.extend(values)
                else:
                    for value in values:
                        if value not in bucket:
                            bucket.append(value)
        return {
            token: self._finalize_bucket(values)
            for token, values in collected.items()
        }

    @staticmethod
    def _finalize_bucket(values: list[str]) -> tuple[str, ...]:
        """Collapse an all-equal enumeration ("B and B defaults" never
        reads well); mixed enumerations keep their parallel order."""
        if len(set(values)) == 1:
            return (values[0],)
        return tuple(values)

    def _variable_values(
        self, record: ChaseStepRecord, variable_name: str
    ) -> tuple[list[str], bool]:
        """Values of one rule variable in one chase step.

        Returns ``(values, enumerated)``: ``enumerated`` is ``True`` when
        the values run over the contributors of a multi-input aggregation
        — one value per contributor, duplicates preserved, order shared
        with every other contributor-varying token of the record.
        """
        variable = Variable(variable_name)
        rule = record.rule
        aggregate = rule.aggregate
        if aggregate is not None and variable == aggregate.result:
            return [self._render(record.binding[variable])], False
        if record.contributors:
            if variable in record.binding:
                # Grouping (and post-condition) variables are constant
                # within the aggregate's group.
                return [self._render(record.binding[variable])], False
            values = [
                self._render(contribution.binding[variable])
                for contribution in record.contributors
                if variable in contribution.binding
            ]
            if values:
                return values, len(record.contributors) > 1
            raise TemplateError(
                f"variable {variable_name!r} of rule {rule.label} is unbound "
                "in the aggregate chase step"
            )
        bound = record.binding.get(variable)
        if bound is None:
            raise TemplateError(
                f"variable {variable_name!r} of rule {rule.label} is unbound "
                "in the chase step"
            )
        return [self._render(bound)], False

    @staticmethod
    def _render(term: object) -> str:
        if isinstance(term, Constant):
            return render_constant(term)
        return str(term)

    def instantiate(
        self,
        assignments: Mapping[str, Sequence[ChaseStepRecord] | ChaseStepRecord],
        prefer_enhanced: bool = True,
        variant_index: int = 0,
    ) -> InstantiatedExplanation:
        """Produce the final text for a concrete derivation segment."""
        token_values = self.token_values_for(assignments)
        text = self.text(prefer_enhanced, variant_index)

        def substitute(match: re.Match[str]) -> str:
            token = match.group(1)
            values = token_values.get(token)
            if values is None:
                raise TemplateError(
                    f"template for {self.path.name or self.path.labels} "
                    f"mentions unknown token <{token}>"
                )
            return join_values(list(values))

        return InstantiatedExplanation(
            text=_TOKEN_RE.sub(substitute, text),
            template=self,
            token_values=token_values,
        )

    def __str__(self) -> str:
        return f"Template[{self.path.notation()}]"


class TemplateStore:
    """All explanation templates of a program, keyed by path variant.

    Built once per deployed KG application (the paper's "once-for-all"
    pre-computation); enhancement and review happen against this store.
    """

    def __init__(self, analysis: StructuralAnalysis, glossary: DomainGlossary):
        glossary.validate_against(analysis.program)
        self.analysis = analysis
        self.glossary = glossary
        self.verbalizer = Verbalizer(glossary)
        self._templates: dict[tuple[str, frozenset[str]], ExplanationTemplate] = {}
        for variant in analysis.all_variants:
            text, tokens = self.verbalizer.path_text(variant)
            template = ExplanationTemplate(
                path=variant, deterministic_text=text, tokens=tokens
            )
            self._templates[self._key(variant)] = template

    @staticmethod
    def _key(path: ReasoningPath) -> tuple[str, frozenset[str]]:
        return (path.name, path.multi_rules)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, path: ReasoningPath) -> ExplanationTemplate:
        template = self._templates.get(self._key(path))
        if template is None:
            raise TemplateError(
                f"no template for path variant {path.notation()}"
            )
        return template

    def templates(self) -> tuple[ExplanationTemplate, ...]:
        return tuple(self._templates.values())

    def __len__(self) -> int:
        return len(self._templates)

    # ------------------------------------------------------------------
    # Review workflow (Section 4.4, human-in-the-loop)
    # ------------------------------------------------------------------
    def pending_review(self) -> tuple[ExplanationTemplate, ...]:
        return tuple(t for t in self._templates.values() if not t.approved)

    def approve_all(self) -> None:
        for template in self._templates.values():
            template.approved = True

    def describe(self) -> str:
        lines = [f"Template store for {self.analysis.program.name!r}:"]
        for template in self._templates.values():
            enhanced = len(template.enhanced_texts)
            lines.append(
                f"  {template.path.notation()}: "
                f"{len(template.token_names)} tokens, "
                f"{enhanced} enhanced version(s)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence of the once-for-all pre-computation (Section 4.4)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialize the reviewed enhancement state.

        The deterministic templates are pure functions of the program and
        glossary and are rebuilt on load; what is worth persisting is the
        LLM-enhanced, expert-reviewed material: the enhanced texts and the
        approval flags, keyed by path identity.
        """
        return {
            "program": self.analysis.program.name,
            "templates": [
                {
                    "path": name,
                    "multi_rules": sorted(multi),
                    "enhanced": list(template.enhanced_texts),
                    "approved": template.approved,
                }
                for (name, multi), template in self._templates.items()
            ],
        }

    def import_state(self, payload: dict) -> int:
        """Restore enhancement state exported by :meth:`export_state`.

        Imported enhanced texts re-pass the token guard against the
        freshly rebuilt deterministic templates — a stale export (after a
        rule or glossary change) cannot smuggle omissions in.  Returns the
        number of enhanced versions accepted.
        """
        if payload.get("program") != self.analysis.program.name:
            raise TemplateError(
                f"template state was exported for program "
                f"{payload.get('program')!r}, not "
                f"{self.analysis.program.name!r}"
            )
        accepted = 0
        for item in payload.get("templates", []):
            key = (item["path"], frozenset(item["multi_rules"]))
            template = self._templates.get(key)
            if template is None:
                continue
            for text in item.get("enhanced", []):
                original_tokens = extract_tokens(template.deterministic_text)
                if extract_tokens(text) >= original_tokens:
                    template.add_enhanced(text)
                    accepted += 1
            template.approved = bool(item.get("approved", False))
        return accepted
