"""Completeness and token-presence checks.

Two guards from the paper live here:

* the **token-presence check** of Section 4.4: after an LLM enhances a
  template, every token of the original must survive in the output —
  otherwise the enhanced version is rejected (omissions are a special case
  of hallucination the system must prevent);
* the **completeness measurement** of Section 6.3: the ratio between the
  constants an explanation text actually mentions and the constants the
  proof used — the metric of Figure 17.
"""

from __future__ import annotations

import re
from typing import Iterable

from .templates import extract_tokens


def missing_tokens(original: str, candidate: str) -> frozenset[str]:
    """Tokens of ``original`` that do not appear in ``candidate``.

    An empty result means the candidate passes the preventive check of
    Section 4.4 and may be stored as an enhanced template.
    """
    return extract_tokens(original) - extract_tokens(candidate)


def tokens_preserved(original: str, candidate: str) -> bool:
    return not missing_tokens(original, candidate)


def _constant_pattern(constant: str) -> re.Pattern[str]:
    """Word-boundary-aware pattern for one constant value.

    Numeric constants must not match inside longer numbers (``7`` must not
    match ``17`` or ``7.5``); symbolic constants must not match inside
    longer identifiers.
    """
    return re.compile(rf"(?<![\w.]){re.escape(constant)}(?!\w|\.\d)")


def constants_present(text: str, constants: Iterable[str]) -> frozenset[str]:
    """The subset of ``constants`` that the text mentions."""
    return frozenset(
        constant for constant in constants
        if _constant_pattern(constant).search(text)
    )


def constants_omitted(text: str, constants: Iterable[str]) -> frozenset[str]:
    """The subset of ``constants`` missing from the text."""
    wanted = frozenset(constants)
    return wanted - constants_present(text, wanted)


def completeness_ratio(text: str, constants: Iterable[str]) -> float:
    """Fraction of the proof's constants that the explanation mentions.

    This is the measurement plotted (as its complement, the omission
    ratio) in the paper's Figure 17.  Returns 1.0 for an empty constant
    set: nothing to omit.
    """
    wanted = frozenset(constants)
    if not wanted:
        return 1.0
    return len(constants_present(text, wanted)) / len(wanted)


def omission_ratio(text: str, constants: Iterable[str]) -> float:
    """Fraction of proof constants the explanation omits (Figure 17 y axis)."""
    return 1.0 - completeness_ratio(text, constants)
