"""Domain glossaries: predicate-to-natural-language data dictionaries.

A domain glossary (paper, Section 4.2, Figures 7 and 11) maps every
predicate of the schema to a natural-language description with one
``<token>`` placeholder per argument position, e.g.::

    HasCapital(f, p)  ->  "<f> is a financial institution with capital of <p>"

The glossary is the Datalog counterpart of a corporate data dictionary;
the verbalizer instantiates its entries against rule atoms, renaming the
entry's formal parameters to the rule's (path-qualified) tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..datalog.atoms import Atom
from ..datalog.errors import GlossaryError
from ..datalog.program import Program

_TOKEN_RE = re.compile(r"<([A-Za-z_][A-Za-z0-9_]*)>")


@dataclass(frozen=True)
class GlossaryEntry:
    """One data-dictionary row: a predicate's NL description.

    ``params`` names the argument positions, in order; each must occur in
    ``text`` as ``<param>`` (and every ``<token>`` in the text must be a
    declared parameter).
    """

    predicate: str
    params: tuple[str, ...]
    text: str

    def __post_init__(self) -> None:
        declared = set(self.params)
        mentioned = set(_TOKEN_RE.findall(self.text))
        undeclared = mentioned - declared
        if undeclared:
            raise GlossaryError(
                f"glossary entry for {self.predicate}: tokens "
                f"{sorted(undeclared)} are not declared parameters"
            )
        unused = declared - mentioned
        if unused:
            raise GlossaryError(
                f"glossary entry for {self.predicate}: parameters "
                f"{sorted(unused)} never appear in the description"
            )
        if len(declared) != len(self.params):
            raise GlossaryError(
                f"glossary entry for {self.predicate}: duplicate parameters"
            )

    @property
    def arity(self) -> int:
        return len(self.params)

    def render(self, replacements: Mapping[str, str]) -> str:
        """Substitute each ``<param>`` with ``replacements[param]``.

        Replacement values are typically themselves tokens (``<c2>``) at
        template-generation time, or constants at instantiation time.
        """
        def substitute(match: re.Match[str]) -> str:
            name = match.group(1)
            if name not in replacements:
                raise GlossaryError(
                    f"no replacement for token <{name}> of {self.predicate}"
                )
            return replacements[name]

        return _TOKEN_RE.sub(substitute, self.text)

    def render_atom(self, atom: Atom, token_of: Mapping[int, str]) -> str:
        """Render this entry for ``atom``: argument position ``i`` is
        replaced by ``token_of[i]``."""
        if atom.arity != self.arity:
            raise GlossaryError(
                f"glossary arity mismatch for {self.predicate}: entry has "
                f"{self.arity} parameters, atom {atom} has arity {atom.arity}"
            )
        replacements = {
            param: token_of[i] for i, param in enumerate(self.params)
        }
        return self.render(replacements)


class DomainGlossary:
    """A collection of glossary entries, validated against a program."""

    def __init__(self, entries: Iterable[GlossaryEntry] = ()):
        self._entries: dict[str, GlossaryEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: GlossaryEntry) -> None:
        if entry.predicate in self._entries:
            raise GlossaryError(f"duplicate glossary entry for {entry.predicate}")
        self._entries[entry.predicate] = entry

    def define(self, predicate: str, params: Iterable[str], text: str) -> None:
        """Fluent helper: ``glossary.define("Shock", ["f", "s"], "...")``."""
        self.add(GlossaryEntry(predicate, tuple(params), text))

    def entry(self, predicate: str) -> GlossaryEntry:
        found = self._entries.get(predicate)
        if found is None:
            raise GlossaryError(f"no glossary entry for predicate {predicate!r}")
        return found

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def predicates(self) -> frozenset[str]:
        return frozenset(self._entries)

    def validate_against(self, program: Program) -> None:
        """Check the glossary covers the program's schema with matching
        arities; raises :class:`GlossaryError` otherwise."""
        for predicate, arity in program.schema.items():
            entry = self._entries.get(predicate)
            if entry is None:
                raise GlossaryError(
                    f"glossary misses predicate {predicate!r} used by "
                    f"program {program.name!r}"
                )
            if entry.arity != arity:
                raise GlossaryError(
                    f"glossary entry for {predicate!r} has {entry.arity} "
                    f"parameters but the program uses arity {arity}"
                )

    def describe(self) -> str:
        lines = ["Domain glossary:"]
        for predicate in sorted(self._entries):
            entry = self._entries[predicate]
            args = ", ".join(entry.params)
            lines.append(f"  {predicate}({args}): {entry.text}")
        return "\n".join(lines)


def _split_camel_case(name: str) -> str:
    words = re.findall(r"[A-Z][a-z0-9]*|[a-z0-9]+", name)
    return " ".join(word.lower() for word in words) or name.lower()


def draft_glossary(program: Program) -> DomainGlossary:
    """Draft a placeholder glossary from a program's schema.

    The paper assumes a corporate data dictionary exists (§4.2); when one
    does not — prototyping a new application — this drafts serviceable
    entries from the predicate names ("LongTermDebts(d, c, v)" →
    "<a1> is in relation 'long term debts' with <a2> and <a3>"), meant to
    be reviewed and rewritten by a domain expert.
    """
    glossary = DomainGlossary()
    for predicate in sorted(program.schema):
        arity = program.schema[predicate]
        params = [f"a{i + 1}" for i in range(arity)]
        phrase = _split_camel_case(predicate)
        if arity == 0:
            continue
        if arity == 1:
            text = f"<{params[0]}> satisfies '{phrase}'"
        else:
            others = " and ".join(f"<{p}>" for p in params[1:])
            text = f"<{params[0]}> is in relation '{phrase}' with {others}"
        glossary.define(predicate, params, text)
    return glossary
