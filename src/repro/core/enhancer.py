"""Template enhancement through an LLM, with the token-presence guard.

Deterministic explanation templates contain repetitions ("Since ..., then
...") that make the text redundant.  Section 4.2 of the paper enhances them
by prompting an LLM — *"Rephrase the following text:"* — once per template,
never on instance data, so no confidential fact ever leaves the system.

Every enhanced candidate is automatically double-checked for the presence
of all original tokens (Section 4.4); candidates that drop tokens are
rejected and the enhancement retried.  The step can be repeated to collect
several interchangeable enriched versions of the same template.

The LLM call is the pipeline's single external dependency, so it runs
under the resilience layer (:mod:`repro.resilience`): each completion is
retried per :class:`~repro.resilience.policy.RetryPolicy` behind the
client's shared :class:`~repro.resilience.breaker.CircuitBreaker`, and an
optional :class:`~repro.resilience.policy.Deadline` bounds a whole
``enhance_store`` run.  When resilience gives up — retries exhausted,
circuit open, deadline spent, permanent backend error — the template
*keeps its deterministic base text*, which the paper guarantees is always
correct and complete; the degradation is recorded in the
:class:`EnhancementReport` and the ``enhance.fallback_total`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .. import obs
from ..resilience.breaker import CircuitBreaker, breaker_for
from ..resilience.policy import (
    Deadline,
    ResilienceError,
    RetryPolicy,
    resilient_complete,
)
from .templates import ExplanationTemplate, TemplateStore
from .validation import missing_tokens

#: The paper's enhancement prompt (Section 4.2).
ENHANCEMENT_PROMPT = "Rephrase the following text: "

#: Deprecated alias (one release): callers that caught bare
#: ``RuntimeError`` around enhancement should migrate to the typed
#: taxonomy — ``ResilienceError`` and its subclasses ``TransientLLMError``
#: / ``PermanentLLMError`` / ``DeadlineExceeded`` / ``CircuitOpen`` in
#: :mod:`repro.resilience`.  The alias (and the ``RuntimeError`` base of
#: the taxonomy) keeps old handlers working in the meantime.
EnhancementError = ResilienceError


class SupportsComplete(Protocol):
    """Anything that looks like an LLM client (see :mod:`repro.llm`)."""

    def complete(self, prompt: str) -> str:  # pragma: no cover - protocol
        ...


@dataclass
class EnhancementReport:
    """Outcome of an enhancement run over a template store.

    ``rejected`` counts token-guard rejections (the model dropped a
    ``<token>``); ``fallbacks`` counts templates left on their base text
    because the *backend* failed (retries exhausted, circuit open,
    deadline exceeded, permanent error) — the two numbers separate "the
    model fought the guard" from "the backend was unavailable".
    """

    enhanced: int = 0
    rejected: int = 0
    fallbacks: int = 0
    failures: list[tuple[str, frozenset[str]]] = field(default_factory=list)
    fallback_errors: list[tuple[str, str]] = field(default_factory=list)

    def record_rejection(self, template_name: str, missing: frozenset[str]) -> None:
        self.rejected += 1
        self.failures.append((template_name, missing))

    def record_fallback(self, template_name: str, error: BaseException) -> None:
        self.fallbacks += 1
        self.fallback_errors.append(
            (template_name, f"{type(error).__name__}: {error}")
        )


class TemplateEnhancer:
    """Drives LLM enhancement of templates with automatic validation.

    Parameters
    ----------
    llm:
        The completion backend.
    max_attempts:
        Token-guard attempts per template (§4.4) — re-prompts after a
        candidate *returned successfully* but dropped tokens.
    retry_policy:
        Backend retry policy per completion (transient errors, backoff).
        Distinct from ``max_attempts``: the guard retries bad *answers*,
        the policy retries failed *calls*.
    breaker:
        Circuit breaker guarding the client; defaults to the shared
        per-client breaker from :func:`repro.resilience.breaker_for`.
        Pass ``False`` to disable breaking entirely.
    """

    def __init__(
        self,
        llm: SupportsComplete,
        max_attempts: int = 3,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | bool | None = None,
    ):
        self.llm = llm
        self.max_attempts = max_attempts
        self.retry_policy = retry_policy
        if breaker is False:
            self.breaker: CircuitBreaker | None = None
        elif breaker is None or breaker is True:
            self.breaker = breaker_for(llm)
        else:
            self.breaker = breaker

    def _complete(self, prompt: str, deadline: Deadline | None) -> str:
        return resilient_complete(
            self.llm, prompt,
            policy=self.retry_policy, breaker=self.breaker, deadline=deadline,
        )

    def enhance_template(
        self,
        template: ExplanationTemplate,
        report: EnhancementReport | None = None,
        deadline: Deadline | None = None,
    ) -> bool:
        """Try to add one enhanced version to ``template``.

        Returns ``True`` on success.  Candidates failing the token guard
        are rejected; after ``max_attempts`` rejections — or when the
        resilience layer gives up on the backend — the template keeps its
        deterministic text (always correct and complete).
        """
        original = template.deterministic_text
        name = template.path.name or str(template.path.labels)
        for _ in range(self.max_attempts):
            obs.incr("llm.enhance_attempts")
            try:
                candidate = self._complete(
                    ENHANCEMENT_PROMPT + original, deadline
                )
            except ResilienceError as error:
                # Backend-level degradation: keep the base template for
                # this path and record why.  The caller's store stays
                # complete — every path still has its deterministic text.
                obs.incr("enhance.fallback_total")
                if report is not None:
                    report.record_fallback(name, error)
                return False
            missing = missing_tokens(original, candidate)
            if not missing:
                template.add_enhanced(candidate)
                obs.incr("llm.enhanced_templates")
                if report is not None:
                    report.enhanced += 1
                return True
            # Token guard tripped (Section 4.4): count the retry so the
            # stats document shows how hard the model fought the guard.
            obs.incr("llm.enhance_rejections")
            if report is not None:
                report.record_rejection(name, missing)
        obs.incr("llm.enhance_gave_up")
        return False

    def enhance_store(
        self,
        store: TemplateStore,
        versions: int = 1,
        deadline: Deadline | float | None = None,
    ) -> EnhancementReport:
        """Enhance every template in the store, collecting ``versions``
        interchangeable enriched versions per template.

        Degradation is per template: a backend failure on one template
        falls back to its base text and moves on.  An open circuit or an
        expired deadline makes the remaining templates fall back fast —
        no further backend call is attempted for them.
        """
        chosen = Deadline.coerce(deadline)
        report = EnhancementReport()
        for template in store.templates():
            for _ in range(versions):
                self.enhance_template(template, report, deadline=chosen)
        return report
