"""Template enhancement through an LLM, with the token-presence guard.

Deterministic explanation templates contain repetitions ("Since ..., then
...") that make the text redundant.  Section 4.2 of the paper enhances them
by prompting an LLM — *"Rephrase the following text:"* — once per template,
never on instance data, so no confidential fact ever leaves the system.

Every enhanced candidate is automatically double-checked for the presence
of all original tokens (Section 4.4); candidates that drop tokens are
rejected and the enhancement retried.  The step can be repeated to collect
several interchangeable enriched versions of the same template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .. import obs
from .templates import ExplanationTemplate, TemplateStore
from .validation import missing_tokens

#: The paper's enhancement prompt (Section 4.2).
ENHANCEMENT_PROMPT = "Rephrase the following text: "


class SupportsComplete(Protocol):
    """Anything that looks like an LLM client (see :mod:`repro.llm`)."""

    def complete(self, prompt: str) -> str:  # pragma: no cover - protocol
        ...


@dataclass
class EnhancementReport:
    """Outcome of an enhancement run over a template store."""

    enhanced: int = 0
    rejected: int = 0
    failures: list[tuple[str, frozenset[str]]] = field(default_factory=list)

    def record_rejection(self, template_name: str, missing: frozenset[str]) -> None:
        self.rejected += 1
        self.failures.append((template_name, missing))


class TemplateEnhancer:
    """Drives LLM enhancement of templates with automatic validation."""

    def __init__(self, llm: SupportsComplete, max_attempts: int = 3):
        self.llm = llm
        self.max_attempts = max_attempts

    def enhance_template(
        self,
        template: ExplanationTemplate,
        report: EnhancementReport | None = None,
    ) -> bool:
        """Try to add one enhanced version to ``template``.

        Returns ``True`` on success.  Candidates failing the token guard
        are rejected; after ``max_attempts`` rejections the template keeps
        its deterministic text (always correct and complete).
        """
        original = template.deterministic_text
        for _ in range(self.max_attempts):
            obs.incr("llm.enhance_attempts")
            candidate = self.llm.complete(ENHANCEMENT_PROMPT + original)
            missing = missing_tokens(original, candidate)
            if not missing:
                template.add_enhanced(candidate)
                obs.incr("llm.enhanced_templates")
                if report is not None:
                    report.enhanced += 1
                return True
            # Token guard tripped (Section 4.4): count the retry so the
            # stats document shows how hard the model fought the guard.
            obs.incr("llm.enhance_rejections")
            if report is not None:
                report.record_rejection(
                    template.path.name or str(template.path.labels), missing
                )
        obs.incr("llm.enhance_gave_up")
        return False

    def enhance_store(
        self, store: TemplateStore, versions: int = 1
    ) -> EnhancementReport:
        """Enhance every template in the store, collecting ``versions``
        interchangeable enriched versions per template."""
        report = EnhancementReport()
        for template in store.templates():
            for _ in range(versions):
                self.enhance_template(template, report)
        return report
