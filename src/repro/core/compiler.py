"""The compile layer: once-per-program artifacts for the explanation stack.

The paper's pipeline is explicitly two-phase.  The *database-independent*
phase — dependency-graph analysis, reasoning-path enumeration, template
generation and the one-shot LLM enhancement (Figure 2, left) — depends
only on the program, the glossary and the enhancer configuration.  The
*per-instance* phase (chase, mapping, instantiation) depends on the data.

:func:`compile_program` runs the first phase exactly once and bundles the
result into a :class:`CompiledProgram`: the structural analysis, the
template store (optionally enhanced), the mapper, and every secondary
per-predicate pipeline needed for drill-down queries on non-goal
predicates.  The artifact is keyed by a content hash of (program,
glossary, enhancer config), so a service can recognise a program it has
already compiled and serve many instances and many queries off one
compilation — the compile-once/run-many separation of Vadalog-style
reasoning engines.

Compiled artifacts serialize through :mod:`repro.io`
(:func:`~repro.io.save_compiled_program` /
:func:`~repro.io.load_compiled_program`): the deterministic templates are
pure functions of program and glossary and are rebuilt on load (cheap),
while the expensive, LLM-produced enhanced texts and the review flags are
restored verbatim — re-validated by the token guard — so warm starts skip
the enhancement calls entirely.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from .. import obs
from ..datalog.program import Program
from ..resilience.policy import Deadline, ResilienceError, RetryPolicy
from .enhancer import EnhancementReport, SupportsComplete, TemplateEnhancer
from .glossary import DomainGlossary
from .mapping import TemplateMapper
from .structural import StructuralAnalysis
from .templates import TemplateStore
from .verbalizer import Verbalizer

#: Version tag of the serialized artifact layout.
COMPILED_FORMAT = "repro-compiled/1"


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------

def llm_signature(llm: SupportsComplete | None) -> str | None:
    """A stable description of the enhancer model configuration.

    Clients may expose an explicit ``signature()``; otherwise the class
    name plus the common knobs (seed, faithfulness) identify the
    deterministic simulators used throughout the reproduction.
    """
    if llm is None:
        return None
    describe = getattr(llm, "signature", None)
    if callable(describe):
        return str(describe())
    parts = [type(llm).__qualname__]
    for knob in ("seed", "faithful", "model"):
        value = getattr(llm, knob, None)
        if value is not None:
            parts.append(f"{knob}={value}")
    return ":".join(parts)


def _hash_lines(lines: list[str]) -> str:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def program_key(program: Program, glossary: DomainGlossary) -> str:
    """Content hash of the database-independent *inputs* minus the
    enhancer: rules, constraints, goal and data dictionary.  This is the
    compatibility key a serialized artifact is validated against."""
    lines = [f"program {program.name}", f"goal {program.goal}"]
    lines.extend(str(rule) for rule in program.rules)
    lines.extend(str(constraint) for constraint in program.constraints)
    for predicate in sorted(glossary.predicates()):
        entry = glossary.entry(predicate)
        lines.append(f"gloss {predicate}({', '.join(entry.params)}): {entry.text}")
    return _hash_lines(lines)


def compilation_fingerprint(
    program: Program,
    glossary: DomainGlossary,
    llm: SupportsComplete | None = None,
    enhanced_versions: int = 1,
) -> str:
    """Content hash of (program, glossary, enhancer config) — the cache
    key under which a service stores the compiled artifact."""
    return _hash_lines([
        program_key(program, glossary),
        f"llm {llm_signature(llm)}",
        f"versions {enhanced_versions}",
    ])


# ----------------------------------------------------------------------
# Compiled artifacts
# ----------------------------------------------------------------------

@dataclass
class CompileStats:
    """Counters proving the once-per-program property.

    Every structural analysis, template-store build and enhancement run
    performed on behalf of a :class:`CompiledProgram` is counted here;
    tests bind one artifact to several reasoning results and assert the
    numbers do not move.
    """

    structural_analyses: int = 0
    template_stores: int = 0
    enhancement_runs: int = 0
    secondary_pipelines: int = 0

    def snapshot(self) -> dict:
        return {
            "structural_analyses": self.structural_analyses,
            "template_stores": self.template_stores,
            "enhancement_runs": self.enhancement_runs,
            "secondary_pipelines": self.secondary_pipelines,
        }


@dataclass(frozen=True)
class CompiledPipeline:
    """One goal predicate's ready-to-serve pipeline."""

    goal: str
    analysis: StructuralAnalysis
    store: TemplateStore
    mapper: TemplateMapper


class CompiledProgram:
    """The once-per-program artifact of the explanation pipeline.

    Holds the primary pipeline for the program goal plus the secondary
    pipelines for drill-down queries on other intensional predicates
    (built on demand, shared by every runtime binding).  Instances are
    immutable as far as callers are concerned and safe to share across
    threads: the secondary-pipeline map is guarded by a lock.
    """

    def __init__(
        self,
        program: Program,
        glossary: DomainGlossary,
        primary: CompiledPipeline,
        llm: SupportsComplete | None = None,
        enhanced_versions: int = 1,
        enhancement_report: EnhancementReport | None = None,
        fingerprint: str | None = None,
        stats: CompileStats | None = None,
    ):
        self.program = program
        self.glossary = glossary
        self.primary = primary
        self.enhancement_report = enhancement_report
        self.enhanced_versions = enhanced_versions
        self.fingerprint = fingerprint or compilation_fingerprint(
            program, glossary, llm, enhanced_versions
        )
        self.program_key = program_key(program, glossary)
        self.stats = stats or CompileStats()
        self._llm = llm
        self._secondary: dict[str, CompiledPipeline] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def analysis(self) -> StructuralAnalysis:
        return self.primary.analysis

    @property
    def store(self) -> TemplateStore:
        return self.primary.store

    @property
    def mapper(self) -> TemplateMapper:
        return self.primary.mapper

    @property
    def verbalizer(self) -> Verbalizer:
        return self.primary.store.verbalizer

    def pipeline_for(self, predicate: str) -> CompiledPipeline:
        """The pipeline able to explain facts of ``predicate``.

        Reasoning paths end at the leaf or at critical nodes; queries on
        other intensional predicates (interactive drill-down) re-run the
        database-independent analysis with that predicate as the goal —
        compiled once per predicate and shared by every binding.
        """
        if (
            predicate == self.program.goal
            or predicate in self.primary.analysis.critical_nodes
        ):
            return self.primary
        with self._lock:
            cached = self._secondary.get(predicate)
            if cached is not None:
                return cached
            pipeline = _build_pipeline(
                self.program.with_goal(predicate), self.glossary,
                self._llm, self.enhanced_versions, self.stats,
            )
            self._secondary[predicate] = pipeline
            self.stats.secondary_pipelines += 1
            return pipeline

    def secondary_goals(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._secondary))

    def describe(self) -> str:
        lines = [
            f"Compiled program {self.program.name!r} "
            f"[{self.fingerprint[:12]}]:",
            f"  goal: {self.program.goal}",
            f"  templates: {len(self.primary.store)}",
            f"  secondary pipelines: {len(self.secondary_goals())}",
        ]
        if self.enhancement_report is not None:
            lines.append(
                f"  enhanced: {self.enhancement_report.enhanced} "
                f"(rejected {self.enhancement_report.rejected}, "
                f"fallbacks {self.enhancement_report.fallbacks})"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (see repro.io for the file front end)
    # ------------------------------------------------------------------
    def export_payload(self) -> dict:
        """The JSON-serializable warm-start artifact.

        Deterministic templates are rebuilt on load; what is persisted is
        the identity (hashes), the enhancer configuration, and the
        enhanced/review state of every pipeline built so far.
        """
        with self._lock:
            secondaries = {
                predicate: pipeline.store.export_state()
                for predicate, pipeline in sorted(self._secondary.items())
            }
        return {
            "format": COMPILED_FORMAT,
            "program": self.program.name,
            "goal": self.program.goal,
            "fingerprint": self.fingerprint,
            "program_key": self.program_key,
            "llm_signature": llm_signature(self._llm),
            "enhanced_versions": self.enhanced_versions,
            "primary": self.primary.store.export_state(),
            "secondaries": secondaries,
            "enhancement": None if self.enhancement_report is None else {
                "enhanced": self.enhancement_report.enhanced,
                "rejected": self.enhancement_report.rejected,
                "fallbacks": self.enhancement_report.fallbacks,
            },
        }

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        program: Program,
        glossary: DomainGlossary,
        llm: SupportsComplete | None = None,
    ) -> "CompiledProgram":
        """Rebuild a compiled artifact from :meth:`export_payload` output.

        The payload must have been exported for byte-identical inputs:
        the stored ``program_key`` is checked against the live program
        and glossary, so a stale artifact (edited rules, changed data
        dictionary) is rejected instead of silently mis-explaining.
        Imported enhanced texts re-pass the token guard on the rebuilt
        deterministic templates.  No LLM call is made; ``llm`` is only
        retained for *new* secondary pipelines compiled later.
        """
        if payload.get("format") != COMPILED_FORMAT:
            raise CompilationError(
                f"unsupported compiled-program format "
                f"{payload.get('format')!r} (expected {COMPILED_FORMAT!r})"
            )
        expected_key = program_key(program, glossary)
        if payload.get("program_key") != expected_key:
            raise CompilationError(
                f"compiled artifact for {payload.get('program')!r} does not "
                f"match the supplied program/glossary (stale artifact?)"
            )
        stats = CompileStats()
        versions = int(payload.get("enhanced_versions", 1))
        primary = _build_pipeline(program, glossary, None, versions, stats)
        primary.store.import_state(payload["primary"])
        compiled = cls(
            program=program,
            glossary=glossary,
            primary=primary,
            llm=llm,
            enhanced_versions=versions,
            enhancement_report=None,
            fingerprint=payload["fingerprint"],
            stats=stats,
        )
        for predicate, state in payload.get("secondaries", {}).items():
            pipeline = _build_pipeline(
                program.with_goal(predicate), glossary, None, versions, stats
            )
            pipeline.store.import_state(state)
            compiled._secondary[predicate] = pipeline
            stats.secondary_pipelines += 1
        return compiled


class CompilationError(Exception):
    """Raised when a compiled artifact cannot be built or restored."""


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

def _build_pipeline(
    program: Program,
    glossary: DomainGlossary,
    llm: SupportsComplete | None,
    enhanced_versions: int,
    stats: CompileStats,
    report: EnhancementReport | None = None,
    retry_policy: RetryPolicy | None = None,
    deadline: Deadline | None = None,
) -> CompiledPipeline:
    with obs.span("compile.analysis", goal=program.goal) as analysis_span:
        analysis = StructuralAnalysis(program)
        # Path enumeration is lazy; force it here so the span covers it
        # (and per-stage timing is not smeared into template building).
        with obs.span("compile.paths", goal=program.goal):
            paths = analysis.all_paths
        analysis_span.set(paths=len(paths))
    stats.structural_analyses += 1
    with obs.span("compile.verbalize", goal=program.goal) as store_span:
        store = TemplateStore(analysis, glossary)
        store_span.set(templates=len(store))
    stats.template_stores += 1
    if llm is not None:
        enhancer = TemplateEnhancer(llm, retry_policy=retry_policy)
        with obs.span(
            "compile.enhance", goal=program.goal, versions=enhanced_versions
        ):
            try:
                enhancer_report = enhancer.enhance_store(
                    store, versions=enhanced_versions, deadline=deadline
                )
            except ResilienceError as error:
                # Defence in depth: the enhancer degrades per template and
                # should never let a resilience error escape, but if one
                # does, the compile still completes on base templates —
                # enhanced text is an optional refinement (§4.2), never a
                # prerequisite for a valid explanation.
                obs.incr("compile.enhance_aborted")
                if report is not None:
                    report.record_fallback(f"store:{program.goal}", error)
            else:
                if enhancer_report.fallbacks:
                    obs.incr("compile.degraded")
                if report is not None:
                    report.enhanced += enhancer_report.enhanced
                    report.rejected += enhancer_report.rejected
                    report.fallbacks += enhancer_report.fallbacks
                    report.failures.extend(enhancer_report.failures)
                    report.fallback_errors.extend(
                        enhancer_report.fallback_errors
                    )
        stats.enhancement_runs += 1
    assert program.goal is not None  # StructuralAnalysis guarantees it
    return CompiledPipeline(
        goal=program.goal, analysis=analysis, store=store,
        mapper=TemplateMapper(analysis),
    )


def compile_program(
    program: Program,
    glossary: DomainGlossary,
    llm: SupportsComplete | None = None,
    enhanced_versions: int = 1,
    retry_policy: RetryPolicy | None = None,
    deadline: Deadline | float | None = None,
) -> CompiledProgram:
    """Run the database-independent phase once, returning the artifact.

    This is the single entry point performing structural analysis,
    template generation and (when ``llm`` is given) enhancement; the
    runtime layer (:class:`~repro.core.explain.Explainer`) and the
    service layer (:class:`~repro.core.service.ExplanationService`) both
    build on the artifact instead of redoing the work per instance.

    Compilation never fails on a misbehaving enhancer backend:
    ``retry_policy`` governs per-call retries, ``deadline`` bounds the
    whole enhancement phase, and any template whose enhancement the
    resilience layer gives up on keeps its deterministic base text (the
    fallback is recorded in the artifact's enhancement report and the
    ``enhance.fallback_total`` counter).
    """
    stats = CompileStats()
    report: EnhancementReport | None = None
    if llm is not None:
        report = EnhancementReport()
    with obs.span(
        "compile.program", program=program.name, goal=program.goal,
        enhanced=llm is not None,
    ):
        primary = _build_pipeline(
            program, glossary, llm, enhanced_versions, stats, report,
            retry_policy=retry_policy, deadline=Deadline.coerce(deadline),
        )
    obs.incr("compile.programs")
    return CompiledProgram(
        program=program,
        glossary=glossary,
        primary=primary,
        llm=llm,
        enhanced_versions=enhanced_versions,
        enhancement_report=report,
        stats=stats,
    )
