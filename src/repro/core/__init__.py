"""The paper's primary contribution: template-based explanations.

Pipeline (Figure 2 of the paper): structural analysis of the dependency
graph → reasoning paths → deterministic explanation templates via the
verbalizer and the domain glossary → optional LLM enhancement with a token
guard → per-query mapping of chase steps to templates → token substitution.
"""

from .enhancer import (
    ENHANCEMENT_PROMPT,
    EnhancementReport,
    TemplateEnhancer,
)
from .explain import Explainer, Explanation
from .reports import BusinessReport, ReportBuilder, ReportSection
from .glossary import DomainGlossary, GlossaryEntry, draft_glossary
from .mapping import MappingError, SegmentMatch, TemplateMapper
from .paths import ReasoningPath
from .structural import StructuralAnalysis, StructuralAnalysisError
from .templates import (
    ExplanationTemplate,
    InstantiatedExplanation,
    TemplateError,
    TemplateStore,
    extract_tokens,
    join_values,
)
from .validation import (
    completeness_ratio,
    constants_omitted,
    constants_present,
    missing_tokens,
    omission_ratio,
    tokens_preserved,
)
from .whynot import Obstacle, WhyNotAnswer, WhyNotExplainer
from .verbalizer import (
    AGGREGATE_PHRASES,
    OPERATOR_PHRASES,
    PathTokenMap,
    Verbalizer,
    build_path_tokens,
)

__all__ = [
    "AGGREGATE_PHRASES",
    "ENHANCEMENT_PROMPT",
    "DomainGlossary",
    "EnhancementReport",
    "BusinessReport",
    "Explainer",
    "Explanation",
    "ReportBuilder",
    "ReportSection",
    "ExplanationTemplate",
    "GlossaryEntry",
    "InstantiatedExplanation",
    "MappingError",
    "OPERATOR_PHRASES",
    "PathTokenMap",
    "ReasoningPath",
    "SegmentMatch",
    "StructuralAnalysis",
    "StructuralAnalysisError",
    "TemplateEnhancer",
    "TemplateError",
    "TemplateMapper",
    "TemplateStore",
    "Verbalizer",
    "WhyNotAnswer",
    "WhyNotExplainer",
    "Obstacle",
    "build_path_tokens",
    "completeness_ratio",
    "constants_omitted",
    "constants_present",
    "draft_glossary",
    "extract_tokens",
    "join_values",
    "missing_tokens",
    "omission_ratio",
    "tokens_preserved",
]
