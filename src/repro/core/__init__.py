"""The paper's primary contribution: template-based explanations.

Pipeline (Figure 2 of the paper): structural analysis of the dependency
graph → reasoning paths → deterministic explanation templates via the
verbalizer and the domain glossary → optional LLM enhancement with a token
guard → per-query mapping of chase steps to templates → token substitution.

The pipeline is layered for production serving:

* **compile layer** (:mod:`.compiler`) — database-independent work, once
  per (program, glossary, enhancer) content hash;
* **runtime layer** (:mod:`.explain`) — one compiled artifact bound to
  one reasoning result, per-query mapping and instantiation;
* **service layer** (:mod:`.service`) — compiled-program cache, shared
  bounded explanation LRU, chase execution, batched serving, metrics.
"""

from .cache import CacheStats, LRUCache
from .compiler import (
    CompilationError,
    CompiledPipeline,
    CompiledProgram,
    CompileStats,
    compilation_fingerprint,
    compile_program,
    program_key,
)
from .enhancer import (
    ENHANCEMENT_PROMPT,
    EnhancementReport,
    TemplateEnhancer,
)
from .explain import Explainer, Explanation
from .reports import BusinessReport, ReportBuilder, ReportSection
from .glossary import DomainGlossary, GlossaryEntry, draft_glossary
from .mapping import MappingError, SegmentMatch, TemplateMapper
from .paths import ReasoningPath
from .structural import StructuralAnalysis, StructuralAnalysisError
from .templates import (
    ExplanationTemplate,
    InstantiatedExplanation,
    TemplateError,
    TemplateStore,
    extract_tokens,
    join_values,
)
from .validation import (
    completeness_ratio,
    constants_omitted,
    constants_present,
    missing_tokens,
    omission_ratio,
    tokens_preserved,
)
from .service import (
    ExplanationService,
    ExplanationSession,
    ServiceMetrics,
)
from .whynot import Obstacle, WhyNotAnswer, WhyNotExplainer
from .verbalizer import (
    AGGREGATE_PHRASES,
    OPERATOR_PHRASES,
    PathTokenMap,
    Verbalizer,
    build_path_tokens,
)

__all__ = [
    "AGGREGATE_PHRASES",
    "ENHANCEMENT_PROMPT",
    "CacheStats",
    "CompilationError",
    "CompileStats",
    "CompiledPipeline",
    "CompiledProgram",
    "DomainGlossary",
    "EnhancementReport",
    "BusinessReport",
    "Explainer",
    "Explanation",
    "ExplanationService",
    "ExplanationSession",
    "LRUCache",
    "ServiceMetrics",
    "compilation_fingerprint",
    "compile_program",
    "program_key",
    "ReportBuilder",
    "ReportSection",
    "ExplanationTemplate",
    "GlossaryEntry",
    "InstantiatedExplanation",
    "MappingError",
    "OPERATOR_PHRASES",
    "PathTokenMap",
    "ReasoningPath",
    "SegmentMatch",
    "StructuralAnalysis",
    "StructuralAnalysisError",
    "TemplateEnhancer",
    "TemplateError",
    "TemplateMapper",
    "TemplateStore",
    "Verbalizer",
    "WhyNotAnswer",
    "WhyNotExplainer",
    "Obstacle",
    "build_path_tokens",
    "completeness_ratio",
    "constants_omitted",
    "constants_present",
    "draft_glossary",
    "extract_tokens",
    "join_values",
    "missing_tokens",
    "omission_ratio",
    "tokens_preserved",
]
