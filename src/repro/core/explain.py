"""The runtime layer: from explanation query to final text.

The explanation stack is split in two, mirroring the paper's Figure 2:

* the **compile layer** (:mod:`repro.core.compiler`) runs the
  database-independent phase — structural analysis, template generation,
  optional LLM enhancement — once per program, producing a
  :class:`~repro.core.compiler.CompiledProgram`;
* the **runtime layer** (this module) binds one compiled artifact to one
  :class:`~repro.engine.reasoning.ReasoningResult` and answers per-query
  work: derivation-spine extraction, greedy mapping of chase steps to
  reasoning paths, template instantiation, concatenation.

The result carries the text plus full metadata — which paths explained
which steps, which constants were substituted — so that completeness can
be audited mechanically (and is, in the benchmarks).

As an extension beyond the paper's single source-to-leaf path, the
explainer can recursively cover *side branches*: derived facts feeding the
spine whose own stories are not on it (e.g. a second, independently
shocked debtor).  This keeps explanations complete for arbitrary proof
DAGs and is on by default.

For the legacy one-shot call ``Explainer(result, glossary, llm=...)``
still compiles on the fly; pass ``compiled=`` (or go through
:class:`~repro.core.service.ExplanationService`) to reuse one artifact
across many instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import count
from typing import Sequence

from .. import obs
from ..datalog.atoms import Fact
from ..engine.provenance import DerivationSpine
from ..engine.provenance_index import ProvenanceIndex
from ..engine.reasoning import ReasoningResult
from .cache import DEFAULT_EXPLANATION_CACHE_SIZE, LRUCache
from .compiler import CompiledProgram, compile_program
from .enhancer import EnhancementReport, SupportsComplete
from .glossary import DomainGlossary
from .mapping import SegmentMatch, TemplateMapper
from .structural import StructuralAnalysis
from .templates import InstantiatedExplanation, TemplateStore
from .verbalizer import Verbalizer

#: Distinguishes cache entries of different runtime bindings inside a
#: shared LRU (two bindings may explain equal facts of different
#: instances; ``id()`` is unsafe across garbage collection).
_BINDING_IDS = count(1)


@dataclass(frozen=True)
class Explanation:
    """A generated textual explanation with its full provenance."""

    query: Fact
    text: str
    spine: DerivationSpine
    segments: tuple[SegmentMatch, ...]
    instantiations: tuple[InstantiatedExplanation, ...]
    side_explanations: tuple["Explanation", ...] = ()

    def paths_used(self) -> tuple[str, ...]:
        """Names of the reasoning paths composing this explanation, e.g.
        ``("Pi2", "Gamma3", "Gamma4")`` — cf. Section 5's {Π7, Γ3, Γ4}."""
        own = tuple(segment.path.name for segment in self.segments)
        sides = tuple(
            name for side in self.side_explanations for name in side.paths_used()
        )
        return sides + own

    def constants(self) -> frozenset[str]:
        """Every constant substituted into the text (tokens' values)."""
        mentioned = frozenset(
            value
            for instance in self.instantiations
            for values in instance.token_values.values()
            for value in values
        )
        for side in self.side_explanations:
            mentioned |= side.constants()
        return mentioned

    def to_dict(self) -> dict:
        """A JSON-serializable audit record of this explanation.

        Captures the query, the text, the chase path π, the reasoning-path
        composition (with aggregation-variant flags) and every token
        substitution — everything an auditor needs to retrace the
        derivation without re-running the system.
        """
        return {
            "query": str(self.query),
            "text": self.text,
            "chase_path": list(self.spine.rule_sequence),
            "segments": [
                {
                    "path": segment.path.name,
                    "rules": list(segment.path.labels),
                    "multi_rules": sorted(segment.path.multi_rules),
                    "steps": [segment.start + 1, segment.end],
                }
                for segment in self.segments
            ],
            "tokens": [
                {token: list(values) for token, values in instance.token_values.items()}
                for instance in self.instantiations
            ],
            "side_explanations": [
                side.to_dict() for side in self.side_explanations
            ],
        }

    def __str__(self) -> str:
        return self.text


class Explainer:
    """Per-instance runtime binding of a compiled program.

    Binds one :class:`~repro.core.compiler.CompiledProgram` to one
    reasoning result (one deployed KG application over one instance) and
    serves explanation queries off it.  When no pre-compiled artifact is
    supplied the constructor compiles on the fly, which keeps the
    historical one-object API working — but then the compile work is paid
    per instance; services should compile once and share.
    """

    def __init__(
        self,
        result: ReasoningResult,
        glossary: DomainGlossary | None = None,
        llm: SupportsComplete | None = None,
        enhanced_versions: int = 1,
        *,
        compiled: CompiledProgram | None = None,
        cache: LRUCache | None = None,
    ):
        if compiled is None:
            if glossary is None:
                raise ValueError(
                    "Explainer needs either a glossary (to compile on the "
                    "fly) or a pre-compiled program"
                )
            compiled = compile_program(
                result.program, glossary, llm=llm,
                enhanced_versions=enhanced_versions,
            )
        elif compiled.program != result.program:
            raise ValueError(
                f"compiled program {compiled.program.name!r} does not match "
                f"the reasoning result's program {result.program.name!r}"
            )
        self.compiled = compiled
        self.result = result
        self.glossary = compiled.glossary
        self.verbalizer = compiled.verbalizer
        # Explanations are pure functions of (query, options) over the
        # frozen reasoning result: cache them for interactive drill-down.
        # The cache is bounded and may be shared across bindings (the
        # service layer passes one per-service LRU); the binding id keeps
        # entries of different instances apart.
        self._binding_id = next(_BINDING_IDS)
        self._cache = (
            cache if cache is not None
            else LRUCache(DEFAULT_EXPLANATION_CACHE_SIZE)
        )
        # Region views of the shared LRU: final explanations plus every
        # memoized sub-explanation live in "explain"; one-step why()
        # sentences and violation reports get their own regions so their
        # hit rates stay separately inspectable in the snapshot.
        self._explain_region = self._cache.region("explain")
        self._why_region = self._cache.region("why")
        self._violation_region = self._cache.region("violation")
        # Entries are scoped by the binding id (instance identity — two
        # bindings may explain equal facts of different instances) AND
        # the compile fingerprint, so a key says exactly which program
        # artifact and which materialized instance produced the text.
        self._memo_scope = (self._binding_id, compiled.fingerprint)

    # ------------------------------------------------------------------
    # Compiled-artifact views (stable public surface)
    # ------------------------------------------------------------------
    @property
    def analysis(self) -> StructuralAnalysis:
        return self.compiled.analysis

    @property
    def store(self) -> TemplateStore:
        return self.compiled.store

    @property
    def mapper(self) -> TemplateMapper:
        return self.compiled.mapper

    @property
    def enhancement_report(self) -> EnhancementReport | None:
        return self.compiled.enhancement_report

    def _pipeline_for(self, predicate: str) -> tuple[TemplateStore, TemplateMapper]:
        """The (store, mapper) pair able to explain facts of ``predicate``
        (delegated to the compiled artifact, shared across bindings)."""
        pipeline = self.compiled.pipeline_for(predicate)
        return pipeline.store, pipeline.mapper

    @property
    def index(self) -> ProvenanceIndex:
        """The per-session provenance index (built once per result)."""
        return self.result.index

    @property
    def memo_scope(self) -> tuple:
        """The prefix identifying this (instance, artifact) binding in
        the shared cache — service layers reuse it to scope their own
        memo entries (e.g. why-not answers) to this binding."""
        return self._memo_scope

    # ------------------------------------------------------------------
    # Explanation queries
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Fact,
        prefer_enhanced: bool = True,
        variant_index: int = 0,
        include_side_branches: bool = True,
    ) -> Explanation:
        """Answer the explanation query Q_e = {``query``}.

        Raises ``KeyError`` when the fact was not derived by the chase.
        Results are memoized per (binding, query, options) — the
        reasoning result is frozen, so explanations are pure — and the
        memoization extends to every *sub*-explanation (side branches),
        so derivation subtrees shared across queries are mapped and
        verbalized once per session (see :meth:`_explain_memoized`).
        """
        started = time.perf_counter()
        explanation = self._explain_memoized(
            query, prefer_enhanced, variant_index, include_side_branches,
            visited=set(),
        )
        obs.observe("explain.serve_s", time.perf_counter() - started)
        return explanation

    def _explain_memoized(
        self,
        query: Fact,
        prefer_enhanced: bool,
        variant_index: int,
        include_side_branches: bool,
        visited: set[Fact],
    ) -> Explanation:
        """The subtree-memoized serving path.

        An explanation of ``query`` depends on the recursion context only
        through ``visited ∩ derived-proof-subtree(query)`` — facts outside
        the subtree are never tested by the side-branch logic.  Keying on
        that (usually empty) overlap instead of the full visited set makes
        cached subtrees shareable across queries while keeping the output
        **byte-identical** to the uncached recursion.  A hit must still
        replay the subtree's visited-set mutations (so sibling
        side-branch decisions after the hit match the uncached run):
        each entry therefore stores the explanation *plus* the facts its
        recursion marked visited.
        """
        index = self.result.index
        if visited:
            subtree = index.derived_proof_facts(query)
            relevant = frozenset(f for f in visited if f in subtree)
        else:
            relevant = frozenset()
        key = (
            self._memo_scope, index.fact_key(query), prefer_enhanced,
            variant_index, include_side_branches, relevant,
        )
        hit = True

        def build() -> tuple[Explanation, frozenset[Fact]]:
            nonlocal hit
            hit = False
            local = set(relevant)
            explanation = self._explain(
                query, prefer_enhanced, variant_index, include_side_branches,
                visited=local,
            )
            return explanation, frozenset(local - relevant)

        explanation, marked = self._explain_region.get_or_create(key, build)
        obs.incr("explain.index_hit" if hit else "explain.index_miss")
        visited |= marked
        return explanation

    def _explain(
        self,
        query: Fact,
        prefer_enhanced: bool,
        variant_index: int,
        include_side_branches: bool,
        visited: set[Fact],
    ) -> Explanation:
        visited.add(query)
        store, mapper = self._pipeline_for(query.predicate)
        spine = self.result.spine(query)
        segments = mapper.map_spine(
            spine, self.result.chase_result.derivation
        )
        side_explanations: tuple[Explanation, ...] = ()
        if include_side_branches:
            side_explanations = self._explain_side_branches(
                segments, prefer_enhanced, variant_index, visited
            )
        instantiations = tuple(
            store.get(segment.path).instantiate(
                segment.assignments, prefer_enhanced, variant_index
            )
            for segment in segments
        )
        parts = [side.text for side in side_explanations]
        parts.extend(instance.text for instance in instantiations)
        return Explanation(
            query=query,
            text=" ".join(parts),
            spine=spine,
            segments=tuple(segments),
            instantiations=instantiations,
            side_explanations=side_explanations,
        )

    def _explain_side_branches(
        self,
        segments: Sequence[SegmentMatch],
        prefer_enhanced: bool,
        variant_index: int,
        visited: set[Fact],
    ) -> tuple[Explanation, ...]:
        """Recursively explain derived facts that feed the mapped segments
        but whose own derivations are not covered by them."""
        covered = {
            record.fact
            for segment in segments
            for records in segment.assignments.values()
            for record in records
        }
        derivation = self.result.chase_result.derivation
        sides: list[Explanation] = []
        for segment in segments:
            for records in segment.assignments.values():
                for record in records:
                    for parent in record.parents:
                        needs_story = (
                            parent in derivation
                            and parent not in covered
                            and parent not in visited
                        )
                        if needs_story:
                            sides.append(
                                self._explain_memoized(
                                    parent, prefer_enhanced, variant_index,
                                    include_side_branches=True,
                                    visited=visited,
                                )
                            )
        return tuple(sides)

    # ------------------------------------------------------------------
    # Interactive drill-down
    # ------------------------------------------------------------------
    def why(self, query: Fact) -> str:
        """One-step drill-down: the single chase step deriving ``query``.

        Where :meth:`explain` tells the whole story, ``why`` answers the
        interactive "and where does *this* come from?" click on a derived
        edge (the KG-Roar-style interaction of the paper's reference
        [10]): the applied rule verbalized with the actual premises.
        """
        index = self.result.index
        record = index.record(query)
        return self._why_region.get_or_create(
            (self._memo_scope, index.fact_key(query)),
            lambda: self.verbalizer.step_sentence(record),
        )

    # ------------------------------------------------------------------
    # Constraint violations
    # ------------------------------------------------------------------
    def explain_violation(
        self,
        violation,
        prefer_enhanced: bool = True,
        include_side_branches: bool = True,
    ) -> str:
        """A textual report for a negative-constraint violation.

        The witnesses' own derivations are explained first (when they are
        intensional), then the violated condition is stated — giving the
        compliance officer the full story behind the ⊥.  Reports are
        memoized per (binding, constraint, witnesses, options), and the
        witness stories go through the memoized serving path, so repeated
        compliance checks over one session cost one rendering.
        """
        key = (
            self._memo_scope, violation.constraint.label,
            violation.witnesses, prefer_enhanced, include_side_branches,
        )
        return self._violation_region.get_or_create(
            key,
            lambda: self._explain_violation(
                violation, prefer_enhanced, include_side_branches
            ),
        )

    def _explain_violation(
        self,
        violation,
        prefer_enhanced: bool,
        include_side_branches: bool,
    ) -> str:
        index = self.result.index
        parts: list[str] = []
        for witness in violation.witnesses:
            if index.is_derived(witness):
                story = self.explain(
                    witness, prefer_enhanced=prefer_enhanced,
                    include_side_branches=include_side_branches,
                )
                parts.append(story.text)
        witness_texts = ", and ".join(
            self.verbalizer.ground_atom_text(witness)
            for witness in violation.witnesses
        )
        parts.append(
            f"This violates constraint {violation.constraint.label}: "
            f"{witness_texts} must not hold together."
        )
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Baseline: deterministic instance verbalization
    # ------------------------------------------------------------------
    def deterministic_explanation(self, query: Fact) -> str:
        """The plain proof-to-text conversion of the whole derivation —
        verbose and repetitive, but trivially complete.  This is the input
        handed to the pure-LLM baselines in the paper's experiments."""
        records = self.result.provenance.proof_records(query)
        return self.verbalizer.proof_text(records)

    def proof_constants(self, query: Fact) -> tuple[str, ...]:
        """Ground truth for completeness checks (Section 6.3).

        Served from the provenance index, which memoizes the proof-DAG
        walk per fact — repeated audits of one session are O(1).
        """
        return self.result.index.proof_constants(query)
