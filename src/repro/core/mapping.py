"""Mapping chase steps to explanation templates (paper, Section 4.3).

Given the derivation spine of a fact (the materialized root-to-leaf chase
path π, e.g. π = {α, β, γ, β, γ} in Example 4.7), the composition of
explanation templates is built by:

(i)  finding the simple reasoning path Π that instantiates the highest
     number of the first chase steps, then
(ii) repeatedly adding the reasoning cycle Γ that instantiates the highest
     number of the following steps, until the leaf is reached.

"Instantiates" is checked structurally: walking the spine, a path variant
matches a segment when every step's rule belongs to the path (consumed once
each), the step's aggregation multiplicity agrees with the variant's
plain/dashed flags, and joint off-spine contributions (side branches, e.g.
the second exposure channel feeding a default) are themselves covered by
the path's rules — which is exactly what selects Γ4 = {σ5, σ6, σ7} over
Γ2 = {σ5, σ7} for a two-channel cascade step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..datalog.atoms import Fact
from ..datalog.errors import DatalogError
from ..engine.chase import ChaseStepRecord
from ..engine.provenance import DerivationSpine, SpineStep
from .paths import ReasoningPath
from .structural import StructuralAnalysis


class MappingError(DatalogError):
    """Raised when no reasoning path covers a spine segment."""


@dataclass(frozen=True)
class SegmentMatch:
    """A reasoning-path variant matched onto spine steps [start, end).

    ``assignments`` maps each rule label of the path to the chase steps it
    explains — spine steps plus the records of covered side branches.  A
    label maps to *several* records when the same rule fired for several
    joint contributions (e.g. the two σ1 direct controls feeding the σ3
    aggregation of the paper's Figure 15); token values are then collected
    across all of them, in order.
    """

    path: ReasoningPath
    start: int
    end: int
    assignments: Mapping[str, tuple[ChaseStepRecord, ...]]

    @property
    def coverage(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        return f"{self.path.notation()} covering steps {self.start + 1}..{self.end}"


class TemplateMapper:
    """Greedy longest-prefix composition of reasoning paths over a spine."""

    def __init__(self, analysis: StructuralAnalysis):
        self.analysis = analysis
        # Per-rule-label candidate buckets, built lazily: a variant can
        # only match at a position whose step rule belongs to it, so the
        # linear scan over *all* variants per position collapses to the
        # (usually tiny) bucket of variants containing that rule.  Pure
        # acceleration — bucket order preserves the variant enumeration
        # order, and `_prefer` breaks every tie deterministically anyway.
        self._simple_buckets: Mapping[str, tuple[ReasoningPath, ...]] | None = None
        self._cycle_buckets: Mapping[str, tuple[ReasoningPath, ...]] | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def map_spine(
        self,
        spine: DerivationSpine,
        derivation: Mapping[Fact, ChaseStepRecord],
    ) -> list[SegmentMatch]:
        """Decompose the spine into adjacent reasoning-path segments."""
        steps = spine.steps
        segments: list[SegmentMatch] = []
        position = 0
        while position < len(steps):
            first = position == 0
            match = self._best_match(steps, position, derivation, simple=first)
            if match is None:
                # A fact's derivation may start from an intensional fact
                # seeded directly in the EDB: then no simple path grounds
                # it, but a cycle does — its anchor is "given".
                match = self._best_match(
                    steps, position, derivation, simple=not first
                )
            if match is None:
                match = self._best_match(
                    steps, position, derivation, simple=first, ignore_sides=True
                ) or self._best_match(
                    steps, position, derivation, simple=not first,
                    ignore_sides=True,
                )
            if match is None:
                label = steps[position].rule_label
                raise MappingError(
                    f"no reasoning path of {self.analysis.program.name!r} "
                    f"covers spine step {position + 1} (rule {label!r})"
                )
            segments.append(match)
            position = match.end
        return segments

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def _best_match(
        self,
        steps: Sequence[SpineStep],
        start: int,
        derivation: Mapping[Fact, ChaseStepRecord],
        simple: bool,
        ignore_sides: bool = False,
    ) -> SegmentMatch | None:
        candidates = self._candidates(simple, steps[start].rule_label)
        best: SegmentMatch | None = None
        for variant in candidates:
            match = self._try_match(variant, steps, start, derivation, ignore_sides)
            if match is None:
                continue
            if best is None or self._prefer(match, best):
                best = match
        return best

    def _candidates(
        self, simple: bool, label: str
    ) -> tuple[ReasoningPath, ...]:
        """The variants that contain ``label`` (the only possible matches
        at a position whose first step applies that rule)."""
        if simple:
            buckets = self._simple_buckets
            if buckets is None:
                buckets = self._bucket(self.analysis.simple_variants())
                self._simple_buckets = buckets
        else:
            buckets = self._cycle_buckets
            if buckets is None:
                buckets = self._bucket(self.analysis.cycle_variants())
                self._cycle_buckets = buckets
        return buckets.get(label, ())

    @staticmethod
    def _bucket(
        variants: Sequence[ReasoningPath],
    ) -> Mapping[str, tuple[ReasoningPath, ...]]:
        table: dict[str, list[ReasoningPath]] = {}
        for variant in variants:
            for label in dict.fromkeys(variant.labels):
                table.setdefault(label, []).append(variant)
        return {label: tuple(found) for label, found in table.items()}

    @staticmethod
    def _prefer(challenger: SegmentMatch, incumbent: SegmentMatch) -> bool:
        """Longest coverage wins; ties go to the leaner path, then to the
        deterministic name order."""
        challenger_key = (
            -challenger.coverage,
            len(challenger.path.rules),
            challenger.path.name,
        )
        incumbent_key = (
            -incumbent.coverage,
            len(incumbent.path.rules),
            incumbent.path.name,
        )
        return challenger_key < incumbent_key

    # ------------------------------------------------------------------
    # Structural matching of one variant at one position
    # ------------------------------------------------------------------
    def _try_match(
        self,
        variant: ReasoningPath,
        steps: Sequence[SpineStep],
        start: int,
        derivation: Mapping[Fact, ChaseStepRecord],
        ignore_sides: bool,
    ) -> SegmentMatch | None:
        remaining = set(variant.labels)
        assignments: dict[str, tuple[ChaseStepRecord, ...]] = {}
        position = start
        while position < len(steps) and remaining:
            step = steps[position]
            if step.rule_label not in remaining:
                break
            if variant.is_multi(step.rule_label) != step.multi_contributor:
                break
            remaining.discard(step.rule_label)
            assignments[step.rule_label] = (step.record,)
            if not self._absorb_side_branches(
                step, variant, remaining, assignments, derivation, ignore_sides
            ):
                return None
            position += 1
        if remaining or position == start:
            return None
        return SegmentMatch(
            path=variant, start=start, end=position, assignments=assignments
        )

    def _absorb_side_branches(
        self,
        step: SpineStep,
        variant: ReasoningPath,
        remaining: set[str],
        assignments: dict[str, tuple[ChaseStepRecord, ...]],
        derivation: Mapping[Fact, ChaseStepRecord],
        ignore_sides: bool,
    ) -> bool:
        """Account for the off-spine intensional parents of a step.

        Each side branch's deriving rule must be part of the path (a joint
        path such as Γ4) — otherwise the variant does not tell the whole
        story of this step and is rejected.  Two exemptions: side parents
        matching a cycle's anchor predicate are "given" by definition (the
        cycle assumes the critical node's facts as premises), and
        ``ignore_sides`` relaxes the requirement entirely (fallback mode).
        """
        for parent in step.record.parents:
            if parent == step.spine_parent:
                continue
            record = derivation.get(parent)
            if record is None:
                continue  # extensional side input, no story needed
            side_label = record.rule_label
            if variant.is_cycle and parent.predicate == variant.anchor:
                # The anchor's facts are the cycle's premises: they carry
                # their own stories (covered by earlier segments or by
                # side-branch recursion), never merged into this one.
                continue
            if side_label in remaining:
                remaining.discard(side_label)
                assignments[side_label] = (record,)
            elif side_label in assignments:
                if record in assignments[side_label]:
                    continue
                # The same rule fired again for a joint contribution:
                # merge, so every instantiation of it reaches the text —
                # but only when the already-assigned records feed this
                # very step too (the Figure 15 pattern of two σ1 controls
                # jointly entering one σ3 aggregation).  A same-label
                # record feeding a *different* step tells a separate
                # story and must not pollute shared tokens.
                co_parents = all(
                    existing.fact in step.record.parents
                    for existing in assignments[side_label]
                )
                if co_parents:
                    assignments[side_label] = assignments[side_label] + (record,)
                elif not ignore_sides:
                    return False
            elif ignore_sides:
                continue
            else:
                return False
        return True

