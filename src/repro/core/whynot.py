"""Why-not explanations: why was a fact *not* derived?

The provenance literature the paper builds on treats answers and
non-answers symmetrically (cf. its reference [48], "Provenance Summaries
for Answers and Non-Answers"); an analyst who asks "why is C in default?"
will next ask "why is D *not* in default?".  This module answers the
second question:

for every rule that could produce the queried fact, it finds the body
match that gets *closest* (most atoms satisfied) and verbalizes the first
obstacle — a missing premise, a failing comparison (with the actual
values), a blocking negated atom, or an aggregate that did not clear its
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom, Fact
from ..datalog.conditions import Comparison, evaluate_expression
from ..datalog.errors import EvaluationError
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from ..datalog.unify import MutableSubstitution, apply_substitution, match_atom
from ..engine.provenance_index import ProvenanceIndex
from ..engine.reasoning import ReasoningResult
from .glossary import DomainGlossary
from .verbalizer import OPERATOR_PHRASES, Verbalizer


@dataclass(frozen=True)
class Obstacle:
    """Why one rule failed to derive the queried fact."""

    rule: Rule
    kind: str                  # "missing-premise" | "condition" | "negation" | "head-mismatch"
    detail: str
    satisfied: int             # body atoms the best attempt did satisfy

    def __str__(self) -> str:
        return f"[{self.rule.label}] {self.detail}"


@dataclass(frozen=True)
class WhyNotAnswer:
    """The full non-derivation report for a fact."""

    query: Fact
    obstacles: tuple[Obstacle, ...]
    text: str

    def __str__(self) -> str:
        return self.text


class WhyNotExplainer:
    """Explains non-answers against a materialized reasoning result.

    Probing replays rule bodies against the *active* (non-superseded)
    instance; that list is served by the session's
    :class:`~repro.engine.provenance_index.ProvenanceIndex` instead of
    being rebuilt per query (pass ``index=`` to share one, otherwise the
    result's own index is used).
    """

    def __init__(
        self,
        result: ReasoningResult,
        glossary: DomainGlossary,
        index: ProvenanceIndex | None = None,
    ):
        self.result = result
        self.glossary = glossary
        self.verbalizer = Verbalizer(glossary)
        self.index = index if index is not None else result.index

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def explain_why_not(self, query: Fact) -> WhyNotAnswer:
        """Why ``query`` is not in the materialized instance.

        Raises ``ValueError`` when the fact *is* derived (ask the regular
        explainer instead).
        """
        if query in self.result.database and query not in \
                self.result.chase_result.superseded:
            raise ValueError(f"{query} holds — ask for its explanation instead")
        candidates = self.result.program.rules_deriving(query.predicate)
        obstacles = []
        for rule in candidates:
            obstacles.append(self._probe_rule(rule, query))
        if not candidates:
            text = (
                f"No rule derives {query.predicate} facts: "
                f"{self._atom_text(query)} could only hold as input data."
            )
            return WhyNotAnswer(query=query, obstacles=(), text=text)
        statement = self._atom_text(query)
        if statement and statement[0].islower():
            statement = statement[0].upper() + statement[1:]
        sentences = [f"{statement} does not hold."]
        for obstacle in obstacles:
            sentences.append(obstacle.detail)
        return WhyNotAnswer(
            query=query, obstacles=tuple(obstacles), text=" ".join(sentences)
        )

    # ------------------------------------------------------------------
    # Per-rule probing
    # ------------------------------------------------------------------
    def _probe_rule(self, rule: Rule, query: Fact) -> Obstacle:
        head_binding = match_atom(rule.head, query)
        if head_binding is None:
            return Obstacle(
                rule=rule, kind="head-mismatch", satisfied=0,
                detail=(
                    f"Rule {rule.label} cannot produce it: the conclusion "
                    "pattern does not match."
                ),
            )
        best = self._best_attempt(rule, head_binding)
        return self._verbalize_attempt(rule, best)

    def _best_attempt(
        self, rule: Rule, head_binding: MutableSubstitution
    ) -> tuple[int, MutableSubstitution, int | None, Comparison | None, Atom | None]:
        """DFS for the body match satisfying the most atoms.

        Returns (atoms satisfied, binding, failing atom index, failing
        condition, blocking negated atom) for the best attempt.
        """
        active = self.index.active_facts()
        best: tuple = (-1, dict(head_binding), 0, None, None)

        def consider(candidate: tuple) -> None:
            nonlocal best
            if candidate[0] > best[0]:
                best = candidate

        def recurse(index: int, binding: MutableSubstitution) -> None:
            if index == len(rule.body):
                # All atoms satisfied: check negation, then conditions.
                for negated in rule.negated:
                    grounded = apply_substitution(negated, binding)
                    blockers = [
                        f for f in active if match_atom(grounded, f) is not None
                    ]
                    if blockers:
                        consider((index, dict(binding), None, None, grounded))
                        return
                failing, augmented = self._failing_condition(rule, binding)
                consider((index, augmented, None, failing, None))
                return
            pattern = rule.body[index]
            matched_any = False
            for candidate in active:
                extended = match_atom(pattern, candidate, binding)
                if extended is not None:
                    matched_any = True
                    recurse(index + 1, extended)
            if not matched_any:
                consider((index, dict(binding), index, None, None))

        recurse(0, dict(head_binding))
        return best  # type: ignore[return-value]

    def _failing_condition(
        self, rule: Rule, binding: MutableSubstitution
    ) -> tuple[Comparison | None, MutableSubstitution]:
        """The first condition this complete body match violates, with the
        aggregate evaluated over the match's group when needed.  Returns
        the condition (or None) and the binding augmented with assignment
        and aggregate values, for value-accurate verbalization."""
        working = dict(binding)
        for variable, expression in rule.assignments:
            try:
                working[variable] = Constant(
                    evaluate_expression(expression, working)
                )
            except EvaluationError:
                return None, working
        aggregate = rule.aggregate
        if aggregate is not None and aggregate.result not in working:
            try:
                values = self._group_values(rule, working)
                working[aggregate.result] = Constant(
                    aggregate.evaluate(values)
                )
            except EvaluationError:
                return None, working
        for condition in rule.conditions:
            try:
                if not condition.holds(working):
                    return condition, working
            except EvaluationError:
                return None, working
        return None, working

    def _group_values(
        self, rule: Rule, binding: MutableSubstitution
    ) -> list[object]:
        """All aggregate contributions of the match's group — the value an
        analyst is told must be compared against the full group total, not
        a single contribution."""
        from ..datalog.unify import find_homomorphisms

        aggregate = rule.aggregate
        assert aggregate is not None
        active = self.index.active_facts()
        group_binding = {
            variable: binding[variable]
            for variable in aggregate.group_by
            if variable in binding
        }
        values = []
        for match in find_homomorphisms(list(rule.body), active, group_binding):
            values.append(evaluate_expression(aggregate.argument, match))
        if not values:
            values.append(evaluate_expression(aggregate.argument, binding))
        return values

    # ------------------------------------------------------------------
    # Verbalization
    # ------------------------------------------------------------------
    def _atom_text(self, atom: Atom) -> str:
        return self.verbalizer.ground_atom_text(atom)

    def _verbalize_attempt(self, rule: Rule, best: tuple) -> Obstacle:
        satisfied, binding, failing_index, failing_condition, blocker = best
        if failing_index is not None:
            pattern = apply_substitution(rule.body[failing_index], binding)
            missing = self._pattern_text(pattern)
            return Obstacle(
                rule=rule, kind="missing-premise", satisfied=satisfied,
                detail=(
                    f"Rule {rule.label} does not apply: there is no evidence "
                    f"that {missing}."
                ),
            )
        if blocker is not None:
            return Obstacle(
                rule=rule, kind="negation", satisfied=satisfied,
                detail=(
                    f"Rule {rule.label} is blocked: it requires that it is "
                    f"not the case that {self._pattern_text(blocker)}, but "
                    "it is."
                ),
            )
        if failing_condition is not None:
            left = self._value_text(failing_condition.left, binding)
            right = self._value_text(failing_condition.right, binding)
            phrase = OPERATOR_PHRASES[failing_condition.op]
            return Obstacle(
                rule=rule, kind="condition", satisfied=satisfied,
                detail=(
                    f"Rule {rule.label} came closest but its condition "
                    f"fails: {left} is not such that it {phrase} {right}."
                ),
            )
        aggregate = rule.aggregate
        if aggregate is not None and aggregate.result in binding:
            # The body is satisfiable but the queried aggregate value is
            # not the one the group actually totals.
            try:
                probe = dict(binding)
                del probe[aggregate.result]
                actual = aggregate.evaluate(self._group_values(rule, probe))
                queried = binding[aggregate.result]
                if Constant(actual) != queried:
                    return Obstacle(
                        rule=rule, kind="value-mismatch", satisfied=satisfied,
                        detail=(
                            f"Rule {rule.label} does derive a conclusion "
                            f"here, but its aggregate totals {actual}, not "
                            f"{queried}."
                        ),
                    )
            except EvaluationError:
                pass
        return Obstacle(
            rule=rule, kind="condition", satisfied=satisfied,
            detail=(
                f"Rule {rule.label} has a satisfiable body, but its "
                "conclusion instantiates differently than the queried fact."
            ),
        )

    def _pattern_text(self, pattern: Atom) -> str:
        """Glossary rendering with unbound variables as 'some …'."""
        entry = self.glossary.entry(pattern.predicate)
        token_of = {}
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                token_of[position] = "something"
            else:
                token_of[position] = str(term)
        return entry.render_atom(pattern, token_of).rstrip(".")

    def _value_text(self, expression, binding) -> str:
        try:
            value = evaluate_expression(expression, binding)
            if isinstance(value, float) and value.is_integer():
                return str(int(value))
            return str(value)
        except EvaluationError:
            return str(expression)
