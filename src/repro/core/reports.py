"""Business-report generation: many explanations, one document.

The paper motivates "natural language business reports" for analysts
(Sections 1 and 5).  A single explanation query covers one fact; this
module assembles whole reports: every derived goal fact (or a chosen
subset) explained in order of derivation, plus a section for negative-
constraint violations — rendered as plain text or Markdown.

The privacy property is inherited: reports are composed exclusively from
token-guarded templates instantiated locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.atoms import Fact
from .explain import Explainer, Explanation


@dataclass(frozen=True)
class ReportSection:
    """One explained fact within a report."""

    target: Fact
    explanation: Explanation

    @property
    def heading(self) -> str:
        return str(self.target)


@dataclass(frozen=True)
class BusinessReport:
    """A complete analyst-facing document."""

    title: str
    sections: tuple[ReportSection, ...]
    violation_texts: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def constants(self) -> frozenset[str]:
        mentioned: frozenset[str] = frozenset()
        for section in self.sections:
            mentioned |= section.explanation.constants()
        return mentioned

    def __len__(self) -> int:
        return len(self.sections)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        lines = [self.title, "=" * len(self.title), ""]
        for index, section in enumerate(self.sections, start=1):
            lines.append(f"{index}. {section.heading}")
            lines.append(f"   {section.explanation.text}")
            lines.append("")
        if self.violation_texts:
            lines.append("Constraint violations")
            lines.append("-" * len("Constraint violations"))
            for text in self.violation_texts:
                lines.append(f"  ! {text}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        for section in self.sections:
            lines.append(f"## {section.heading}")
            lines.append("")
            paths = ", ".join(section.explanation.paths_used())
            lines.append(f"*Reasoning paths: {paths}*")
            lines.append("")
            lines.append(section.explanation.text)
            lines.append("")
        if self.violation_texts:
            lines.append("## Constraint violations")
            lines.append("")
            for text in self.violation_texts:
                lines.append(f"- ⚠ {text}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


class ReportBuilder:
    """Assembles business reports from an :class:`Explainer`."""

    def __init__(self, explainer: Explainer):
        self.explainer = explainer

    @classmethod
    def for_result(cls, compiled, result, cache=None) -> "ReportBuilder":
        """A builder over a pre-compiled program bound to ``result`` —
        the service-layer construction path (compile once, report on many
        instances)."""
        return cls(Explainer(result, compiled=compiled, cache=cache))

    def build(
        self,
        targets: Iterable[Fact] | None = None,
        title: str | None = None,
        prefer_enhanced: bool = True,
        include_violations: bool = True,
        rotate_template_versions: bool = False,
    ) -> BusinessReport:
        """Explain ``targets`` (default: every derived goal fact).

        ``rotate_template_versions`` cycles through the interchangeable
        enhanced template versions section by section, so long reports do
        not repeat the same phrasing (paper, Section 4.2: "different but
        interchangeable enriched versions").
        """
        result = self.explainer.result
        if targets is None:
            targets = [
                current for current in result.answers()
                if result.chase_result.is_derived(current)
            ]
        chosen: Sequence[Fact] = list(targets)
        sections = []
        for index, target in enumerate(chosen):
            explanation = self.explainer.explain(
                target,
                prefer_enhanced=prefer_enhanced,
                variant_index=index if rotate_template_versions else 0,
            )
            sections.append(ReportSection(target=target, explanation=explanation))
        violation_texts: tuple[str, ...] = ()
        if include_violations:
            violation_texts = tuple(
                self.explainer.explain_violation(
                    violation, prefer_enhanced=prefer_enhanced
                )
                for violation in result.chase_result.violations
            )
        program_name = result.program.name
        return BusinessReport(
            title=title or f"Reasoning report — {program_name}",
            sections=tuple(sections),
            violation_texts=violation_texts,
        )
