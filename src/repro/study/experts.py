"""The expert user study (paper, Section 6.2, Figures 15 and 16).

14 Central-Bank experts graded, on a 5-value Likert scale, three textual
explanations of the same proof: a GPT paraphrase of the deterministic
verbalization, a GPT summary of it, and the template-based text.  Four
scenarios were used (a short and a long company-control chain, a stress
test, a close-links case), yielding 168 individual data points.

The human raters are replaced by :class:`SimulatedExpert`s: a rater scores
measurable proxies of textual quality — rigidity of the "Since…, then…"
style, sentence-opener variety, verbosity per information unit, vague
filler phrases left by omissions — plus a per-rater leniency bias and
per-item noise, then rounds to the Likert scale.  The model is calibrated
so the three methods land in the same quality band (the paper's headline:
no statistically significant difference), with the templates' determinism
showing up as the lowest rating variance, as in Figure 16.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from ..apps import generators
from ..apps.base import ScenarioInstance
from ..core.explain import Explainer
from ..llm.client import LLMClient, PARAPHRASE_PROMPT, SUMMARY_PROMPT

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")
_FILLERS = (
    "a certain amount", "a significant amount", "some amount",
    "one of the entities involved", "another company", "the counterparty",
)

#: The three explanation methodologies compared in Figure 16.
METHODS = ("paraphrase", "summary", "template")


# ----------------------------------------------------------------------
# Scenarios (Section 6.2: two control chains, stress test, close links)
# ----------------------------------------------------------------------

def expert_scenarios(seed: int = 0) -> list[ScenarioInstance]:
    return [
        generators.control_chain(length=2, seed=seed),
        generators.control_chain(length=8, seed=seed + 1),
        generators.stress_cascade(hops=3, seed=seed, dual_final=True),
        generators.close_links_common_control(seed=seed),
    ]


# ----------------------------------------------------------------------
# Text quality proxies
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TextFeatures:
    """Measurable properties a reader reacts to."""

    sentences: int
    words: int
    since_rate: float
    opener_variety: float
    filler_count: int

    @property
    def words_per_sentence(self) -> float:
        return self.words / self.sentences if self.sentences else 0.0


def text_features(text: str) -> TextFeatures:
    sentences = [s for s in _SENTENCE_RE.split(text.strip()) if s]
    words = len(text.split())
    since_hits = len(re.findall(r"\bSince\b", text))
    openers = {sentence.split()[0].lower() for sentence in sentences if sentence.split()}
    lowered = text.lower()
    fillers = sum(lowered.count(filler) for filler in _FILLERS)
    return TextFeatures(
        sentences=len(sentences),
        words=words,
        since_rate=since_hits / len(sentences) if sentences else 0.0,
        opener_variety=len(openers) / len(sentences) if sentences else 0.0,
        filler_count=fillers,
    )


def base_quality(text: str) -> float:
    """Deterministic quality score in Likert units, before rater effects.

    Calibrated so that fluent, varied, reasonably compact business prose
    scores just under 4 — the Figure 16 regime.  Vague filler phrases
    (the trace omissions leave behind) carry only a *small* penalty: the
    raters judge textual quality, not completeness — which is exactly why
    the paper needs the separate Section 6.3 experiment.
    """
    features = text_features(text)
    score = 3.9
    score -= 1.4 * features.since_rate                       # rigid style
    score += 0.4 * (features.opener_variety - 0.6)           # varied prose
    score -= 0.008 * max(0.0, features.words_per_sentence - 30)
    score -= 0.03 * min(features.filler_count, 8)            # vague phrases
    return score


# ----------------------------------------------------------------------
# Simulated raters
# ----------------------------------------------------------------------

@dataclass
class SimulatedExpert:
    """One rater: a leniency bias plus per-item judgement noise."""

    rng: random.Random
    bias: float = 0.0
    noise: float = 0.85

    @classmethod
    def sample(cls, rng: random.Random) -> "SimulatedExpert":
        return cls(rng=rng, bias=rng.gauss(0.0, 0.35))

    def rate(self, text: str) -> int:
        raw = base_quality(text) + self.bias + self.rng.gauss(0.0, self.noise)
        return int(min(5, max(1, round(raw))))


# ----------------------------------------------------------------------
# Study runner (Figure 16)
# ----------------------------------------------------------------------

@dataclass
class ExpertStudyResult:
    """All individual Likert points, grouped by methodology."""

    ratings: dict[str, list[int]] = field(
        default_factory=lambda: {method: [] for method in METHODS}
    )

    def mean(self, method: str) -> float:
        values = self.ratings[method]
        return sum(values) / len(values)

    def std(self, method: str) -> float:
        values = self.ratings[method]
        mean = self.mean(method)
        if len(values) < 2:
            return 0.0
        return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5

    def data_points(self) -> int:
        return sum(len(values) for values in self.ratings.values())


def build_method_texts(
    scenario: ScenarioInstance, llm: LLMClient
) -> dict[str, str]:
    """The three texts experts see for one scenario: the two pure-LLM
    baselines over the deterministic proof verbalization, and the
    template-based explanation (enhanced templates, token-guarded)."""
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary, llm=llm)
    deterministic = explainer.deterministic_explanation(scenario.target)
    return {
        "paraphrase": llm.complete(PARAPHRASE_PROMPT + deterministic),
        "summary": llm.complete(SUMMARY_PROMPT + deterministic),
        "template": explainer.explain(scenario.target).text,
    }


def run_expert_study(
    llm: LLMClient,
    raters: int = 14,
    seed: int = 0,
) -> ExpertStudyResult:
    """Reproduce the Section 6.2 experiment: ``raters`` simulated experts
    each grade the three methodologies on the four scenarios (168 points
    with the paper's sizes)."""
    study_rng = random.Random(f"experts:{seed}")
    texts_per_scenario = [
        build_method_texts(scenario, llm)
        for scenario in expert_scenarios(seed)
    ]
    result = ExpertStudyResult()
    for rater_index in range(raters):
        expert = SimulatedExpert.sample(
            random.Random(f"expert:{seed}:{rater_index}")
        )
        for texts in texts_per_scenario:
            # Shuffled presentation order, methodology hidden — as in the
            # paper's input forms.
            methods = list(METHODS)
            study_rng.shuffle(methods)
            for method in methods:
                result.ratings[method].append(expert.rate(texts[method]))
    return result
