"""Error archetypes for the comprehension study (paper, Section 6.1).

The study presents each explanation next to three KG visualizations: the
correct one and two corrupted by one of four error archetypes:

* **(I) false edge** — an edge is redirected to the wrong entity;
* **(II) incorrect value** — a numeric property (share, capital, amount)
  is altered;
* **(III) incorrect aggregation order** — two contribution values feeding
  the same aggregate are swapped between their edges;
* **(IV) incorrect chain** — the order of a recursion chain is perturbed.

A visualization is modelled as the set of facts a drawn graph encodes (the
relevant EDB portion plus the derived edges); corruptions are fact-set
rewrites, so the simulated participants can compare what they read against
what they see exactly as human subjects compare text and picture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from ..datalog.atoms import Fact
from ..datalog.terms import Constant


class ErrorArchetype(Enum):
    """The four corruption archetypes of Section 6.1."""

    WRONG_EDGE = "wrong edge"
    WRONG_VALUE = "wrong value"
    WRONG_AGGREGATION = "incorrect aggregation"
    WRONG_CHAIN = "incorrect chain"


@dataclass(frozen=True)
class GraphVisualization:
    """One candidate picture: a set of facts, with corruption metadata."""

    facts: frozenset[Fact]
    archetype: ErrorArchetype | None = None
    note: str = ""

    @property
    def is_correct(self) -> bool:
        return self.archetype is None


class CorruptionError(ValueError):
    """Raised when a fact set offers no site for the requested archetype."""


def _is_entity(term: object) -> bool:
    """Entity names are capitalized string constants; lowercase strings
    (channel labels such as ``"long"``/``"short"``) are property values."""
    return (
        isinstance(term, Constant)
        and isinstance(term.value, str)
        and bool(term.value)
        and term.value[0].isupper()
    )


def _iter_sorted(facts: frozenset[Fact]) -> list[Fact]:
    """Deterministic iteration order over a fact set (frozenset order
    depends on the process hash seed)."""
    return sorted(facts, key=str)


def _entities(facts: frozenset[Fact]) -> list[str]:
    names: dict[str, None] = {}
    for current in _iter_sorted(facts):
        for term in current.terms:
            if _is_entity(term):
                names.setdefault(term.value, None)  # type: ignore[union-attr]
    return list(names)


def _numeric_positions(current: Fact) -> list[int]:
    return [
        index for index, term in enumerate(current.terms)
        if isinstance(term, Constant) and term.is_numeric
    ]


def _replace_term(current: Fact, position: int, value: object) -> Fact:
    terms = list(current.terms)
    terms[position] = Constant(value)  # type: ignore[arg-type]
    return Fact(current.predicate, tuple(terms))


def _edge_facts(facts: frozenset[Fact]) -> list[Fact]:
    """Facts with at least two entity arguments — drawable as edges."""
    edges = []
    for current in _iter_sorted(facts):
        if sum(1 for term in current.terms if _is_entity(term)) >= 2:
            edges.append(current)
    return edges


def corrupt(
    visualization: frozenset[Fact],
    archetype: ErrorArchetype,
    rng: random.Random,
) -> GraphVisualization:
    """Apply one archetype to a correct visualization.

    Raises :class:`CorruptionError` when the graph offers no suitable
    corruption site (e.g. no aggregation to reorder).
    """
    if archetype is ErrorArchetype.WRONG_EDGE:
        return _corrupt_edge(visualization, rng)
    if archetype is ErrorArchetype.WRONG_VALUE:
        return _corrupt_value(visualization, rng)
    if archetype is ErrorArchetype.WRONG_AGGREGATION:
        return _corrupt_aggregation(visualization, rng)
    return _corrupt_chain(visualization, rng)


def _corrupt_edge(facts: frozenset[Fact], rng: random.Random) -> GraphVisualization:
    edges = _edge_facts(facts)
    entities = _entities(facts)
    rng.shuffle(edges)
    for edge in edges:
        entity_positions = [
            index for index, term in enumerate(edge.terms)
            if _is_entity(term)
        ]
        position = rng.choice(entity_positions)
        current_value = edge.terms[position]
        candidates = [
            name for name in entities
            if Constant(name) not in edge.terms
        ]
        if not candidates:
            continue
        replacement = rng.choice(candidates)
        corrupted = _replace_term(edge, position, replacement)
        if corrupted in facts:
            continue
        new_facts = (facts - {edge}) | {corrupted}
        return GraphVisualization(
            frozenset(new_facts),
            ErrorArchetype.WRONG_EDGE,
            note=f"{edge} redirected to {replacement} (was {current_value})",
        )
    raise CorruptionError("no edge can be redirected in this visualization")


def _corrupt_value(facts: frozenset[Fact], rng: random.Random) -> GraphVisualization:
    numeric = [f for f in _iter_sorted(facts) if _numeric_positions(f)]
    if not numeric:
        raise CorruptionError("no numeric property to alter")
    target = rng.choice(numeric)
    position = rng.choice(_numeric_positions(target))
    old_value = target.terms[position].value  # type: ignore[union-attr]
    assert isinstance(old_value, (int, float))
    if isinstance(old_value, int):
        delta = rng.choice([d for d in range(-4, 7) if d != 0])
        new_value = max(1, old_value + delta)
        if new_value == old_value:
            new_value = old_value + 1
    else:
        new_value = round(min(0.99, max(0.01, old_value + rng.choice([-0.17, 0.13, 0.21]))), 2)
        if new_value == old_value:
            new_value = round(old_value / 2, 2)
    corrupted = _replace_term(target, position, new_value)
    if corrupted in facts:
        # The altered fact collides with an existing one: nudge further.
        assert isinstance(new_value, (int, float))
        bumped = new_value + (1 if isinstance(new_value, int) else 0.01)
        corrupted = _replace_term(target, position, round(bumped, 2))
    if corrupted in facts:
        raise CorruptionError("could not find a collision-free value change")
    new_facts = (facts - {target}) | {corrupted}
    return GraphVisualization(
        frozenset(new_facts),
        ErrorArchetype.WRONG_VALUE,
        note=f"{target}: {old_value} -> {new_value}",
    )


def _corrupt_aggregation(
    facts: frozenset[Fact], rng: random.Random
) -> GraphVisualization:
    """Swap two numeric values between same-predicate facts that share a
    target entity — the classic mixed-up contribution amounts."""
    by_group: dict[tuple[str, object], list[Fact]] = {}
    for current in _iter_sorted(facts):
        positions = _numeric_positions(current)
        if not positions:
            continue
        entity_args = [
            term.value for term in current.terms if _is_entity(term)
        ]
        for entity in entity_args:
            by_group.setdefault((current.predicate, entity), []).append(current)
    groups = [
        members for members in by_group.values()
        if len(members) >= 2
    ]
    rng.shuffle(groups)
    for members in groups:
        ordered = sorted(members, key=str)
        rng.shuffle(ordered)
        for first_index in range(len(ordered)):
            for second_index in range(first_index + 1, len(ordered)):
                first, second = ordered[first_index], ordered[second_index]
                position_first = _numeric_positions(first)[-1]
                position_second = _numeric_positions(second)[-1]
                value_first = first.terms[position_first]
                value_second = second.terms[position_second]
                if value_first == value_second:
                    continue
                swapped_first = _replace_term(first, position_first, value_second.value)  # type: ignore[union-attr]
                swapped_second = _replace_term(second, position_second, value_first.value)  # type: ignore[union-attr]
                new_facts = frozenset(
                    (facts - {first, second}) | {swapped_first, swapped_second}
                )
                # Reject swaps that collapse onto existing facts or are
                # no-ops (the two facts sharing both entity arguments).
                if new_facts == facts or len(new_facts) != len(facts):
                    continue
                return GraphVisualization(
                    new_facts,
                    ErrorArchetype.WRONG_AGGREGATION,
                    note=(
                        f"swapped {value_first} and {value_second} "
                        "between contributions"
                    ),
                )
    raise CorruptionError("no aggregation contributions to reorder")


def _corrupt_chain(facts: frozenset[Fact], rng: random.Random) -> GraphVisualization:
    """Perturb a recursion chain: where x→y and y→z edges of the same
    predicate exist, rewire them as x→z and z→y."""
    edges = _edge_facts(facts)
    by_predicate: dict[str, list[Fact]] = {}
    for edge in edges:
        by_predicate.setdefault(edge.predicate, []).append(edge)
    shuffled = list(by_predicate.values())
    rng.shuffle(shuffled)
    for members in shuffled:
        for first in members:
            for second in members:
                if first == second:
                    continue
                # first = P(x, y, ...), second = P(y, z, ...): a chain.
                if first.terms[1] != second.terms[0]:
                    continue
                x, y = first.terms[0], first.terms[1]
                z = second.terms[1]
                if z in (x, y):
                    continue
                rewired_first = _replace_term(first, 1, z.value)  # type: ignore[union-attr]
                rewired_second = _replace_term(
                    _replace_term(second, 0, z.value), 1, y.value  # type: ignore[union-attr]
                )
                new_facts = frozenset(
                    (facts - {first, second}) | {rewired_first, rewired_second}
                )
                if new_facts == facts or len(new_facts) != len(facts):
                    continue
                return GraphVisualization(
                    new_facts,
                    ErrorArchetype.WRONG_CHAIN,
                    note=f"chain {x}->{y}->{z} rewired as {x}->{z}->{y}",
                )
    raise CorruptionError("no two-hop chain to rewire")


#: Archetypes in a deterministic application-preference order: the first
#: applicable ones are used when a scenario cannot host all four.
ALL_ARCHETYPES = (
    ErrorArchetype.WRONG_EDGE,
    ErrorArchetype.WRONG_VALUE,
    ErrorArchetype.WRONG_AGGREGATION,
    ErrorArchetype.WRONG_CHAIN,
)
