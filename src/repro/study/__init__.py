"""User-study simulation harness (paper, Section 6).

Simulated replacements for the paper's two human studies — comprehension
(Section 6.1, Figure 14) and expert quality grading (Section 6.2, Figure
16) — plus the statistical machinery (Wilcoxon tests, omission sweeps)
used across the evaluation.
"""

from .archetypes import (
    ALL_ARCHETYPES,
    CorruptionError,
    ErrorArchetype,
    GraphVisualization,
    corrupt,
)
from .comprehension import (
    CaseResult,
    ComprehensionQuestion,
    ComprehensionStudyResult,
    SimulatedParticipant,
    build_question,
    fact_support,
    run_comprehension_study,
    study_cases,
)
from .experts import (
    METHODS,
    ExpertStudyResult,
    SimulatedExpert,
    TextFeatures,
    base_quality,
    build_method_texts,
    expert_scenarios,
    run_expert_study,
    text_features,
)
from .stats import (
    LikertSummary,
    OmissionDistribution,
    likert_summary,
    measure_omissions,
    measure_template_omissions,
    wilcoxon_signed_rank,
)

__all__ = [
    "ALL_ARCHETYPES",
    "CaseResult",
    "ComprehensionQuestion",
    "ComprehensionStudyResult",
    "CorruptionError",
    "ErrorArchetype",
    "ExpertStudyResult",
    "GraphVisualization",
    "LikertSummary",
    "METHODS",
    "OmissionDistribution",
    "SimulatedExpert",
    "SimulatedParticipant",
    "TextFeatures",
    "base_quality",
    "build_method_texts",
    "build_question",
    "corrupt",
    "expert_scenarios",
    "fact_support",
    "likert_summary",
    "measure_omissions",
    "measure_template_omissions",
    "run_comprehension_study",
    "run_expert_study",
    "study_cases",
    "text_features",
    "wilcoxon_signed_rank",
]
