"""Statistical analysis utilities for the experiments.

Covers the paper's statistical apparatus: Likert summaries (Figure 16),
pairwise two-sided Wilcoxon signed-rank tests between explanation methods
(following [25, 27], as in Section 6.2), and the omission-ratio sweeps of
Figure 17.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from scipy import stats as scipy_stats

from ..apps.base import ScenarioInstance
from ..core.explain import Explainer
from ..core.validation import omission_ratio
from ..llm.client import LLMClient, PARAPHRASE_PROMPT, SUMMARY_PROMPT


# ----------------------------------------------------------------------
# Likert summaries and Wilcoxon tests (Figure 16)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LikertSummary:
    """Mean and sample standard deviation of a rating set."""

    mean: float
    std: float
    count: int


def likert_summary(values: Sequence[int | float]) -> LikertSummary:
    if not values:
        raise ValueError("cannot summarize an empty rating set")
    mean = sum(values) / len(values)
    if len(values) < 2:
        return LikertSummary(mean=mean, std=0.0, count=len(values))
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return LikertSummary(mean=mean, std=math.sqrt(variance), count=len(values))


def wilcoxon_signed_rank(
    first: Sequence[int | float], second: Sequence[int | float]
) -> float:
    """Two-sided p-value of the paired Wilcoxon signed-rank test.

    Zero differences are handled with the zero-split method so that the
    heavily tied Likert data does not abort the test.  Identical samples
    (no information either way) return p = 1.0.
    """
    if len(first) != len(second):
        raise ValueError("Wilcoxon signed-rank test requires paired samples")
    if all(a == b for a, b in zip(first, second)):
        return 1.0
    result = scipy_stats.wilcoxon(
        list(first), list(second), zero_method="zsplit", alternative="two-sided"
    )
    return float(result.pvalue)


# ----------------------------------------------------------------------
# Omission sweeps (Figure 17)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OmissionDistribution:
    """The omission ratios of several sampled proofs of one length."""

    steps: int
    ratios: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.ratios) / len(self.ratios)

    def quartiles(self) -> tuple[float, float, float]:
        """(q1, median, q3) — the boxplot statistics of Figure 17."""
        ordered = sorted(self.ratios)

        def percentile(fraction: float) -> float:
            position = fraction * (len(ordered) - 1)
            low = int(position)
            high = min(low + 1, len(ordered) - 1)
            weight = position - low
            return ordered[low] * (1 - weight) + ordered[high] * weight

        return percentile(0.25), percentile(0.5), percentile(0.75)


def measure_omissions(
    scenario_builder: Callable[[int, int], ScenarioInstance],
    steps_list: Iterable[int],
    llm: LLMClient,
    prompt: str,
    samples: int = 10,
) -> list[OmissionDistribution]:
    """Reproduce one Figure 17 panel series.

    For each proof length, ``samples`` distinct scenarios are generated;
    each proof is deterministically verbalized, rewritten by the LLM under
    ``prompt`` (:data:`PARAPHRASE_PROMPT` or :data:`SUMMARY_PROMPT`), and
    the omitted-constant ratio against the proof's ground truth measured.
    """
    distributions: list[OmissionDistribution] = []
    for steps in steps_list:
        ratios: list[float] = []
        for sample in range(samples):
            scenario = scenario_builder(steps, sample)
            result = scenario.run()
            explainer = Explainer(result, scenario.application.glossary)
            deterministic = explainer.deterministic_explanation(scenario.target)
            constants = explainer.proof_constants(scenario.target)
            output = llm.complete(prompt + deterministic)
            ratios.append(omission_ratio(output, constants))
        distributions.append(
            OmissionDistribution(steps=steps, ratios=tuple(ratios))
        )
    return distributions


def measure_template_omissions(
    scenario_builder: Callable[[int, int], ScenarioInstance],
    steps_list: Iterable[int],
    samples: int = 10,
) -> list[OmissionDistribution]:
    """The template-based counterpart: by construction the explanations
    carry every proof constant, so these distributions should be all-zero
    (the claim the benchmarks assert)."""
    distributions: list[OmissionDistribution] = []
    for steps in steps_list:
        ratios: list[float] = []
        for sample in range(samples):
            scenario = scenario_builder(steps, sample)
            result = scenario.run()
            explainer = Explainer(result, scenario.application.glossary)
            explanation = explainer.explain(scenario.target)
            constants = explainer.proof_constants(scenario.target)
            ratios.append(omission_ratio(explanation.text, constants))
        distributions.append(
            OmissionDistribution(steps=steps, ratios=tuple(ratios))
        )
    return distributions


__all__ = [
    "LikertSummary",
    "OmissionDistribution",
    "PARAPHRASE_PROMPT",
    "SUMMARY_PROMPT",
    "likert_summary",
    "measure_omissions",
    "measure_template_omissions",
    "wilcoxon_signed_rank",
]
