"""The comprehension user study (paper, Section 6.1, Figure 14).

Five multi-choice questions over the financial applications: each presents
a textual business report (a generated explanation) and three KG
visualizations — one correct, two corrupted with error archetypes.  A
participant is *comprehending* when they pick the visualization matching
the text.

The 24 human non-experts are replaced by :class:`SimulatedParticipant`s: a
participant reads the text sentence by sentence and scores each candidate
graph by how well its facts are supported by what the text says (constants
co-occurring within a sentence, in argument order).  Perception noise and
an attention-lapse rate make the model err occasionally, the way real
subjects do — chain rewirings, whose constants still co-occur in the text,
are the hardest to spot, matching the paper's observed error pattern.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from ..apps import generators
from ..apps.base import ScenarioInstance
from ..core.explain import Explainer
from ..datalog.atoms import Fact
from ..datalog.terms import Constant
from ..llm.client import LLMClient
from .archetypes import (
    ALL_ARCHETYPES,
    CorruptionError,
    ErrorArchetype,
    GraphVisualization,
    corrupt,
)

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


# ----------------------------------------------------------------------
# The five study cases (Section 6.1)
# ----------------------------------------------------------------------

def study_cases(seed: int = 0) -> list[ScenarioInstance]:
    """The paper's five comprehension cases, in order:

    1. control through aggregation over multiple entities;
    2. a simple stress-test scenario;
    3. control via recursion;
    4. a complex stress test involving recursion and aggregation;
    5. control combining recursion and aggregation.
    """
    return [
        generators.control_aggregation(branches=3, seed=seed),
        generators.stress_cascade(hops=2, seed=seed),
        generators.control_chain(length=4, seed=seed),
        generators.stress_cascade(hops=3, seed=seed, dual_final=True),
        generators.control_chain_with_aggregation(length=2, branches=2, seed=seed),
    ]


# ----------------------------------------------------------------------
# Question construction
# ----------------------------------------------------------------------

def predicate_cue(entry_text: str) -> str:
    """The characteristic phrase of a glossary entry: its longest literal
    fragment once tokens are stripped ("<x> owns <s> shares of <y>" →
    "shares of").  Participants know what each drawn edge type means, so
    they look for the right *relation wording*, not just the constants."""
    fragments = [
        fragment.strip(" ,.").lower()
        for fragment in re.split(r"<[^>]+>", entry_text)
    ]
    fragments = [fragment for fragment in fragments if fragment]
    return max(fragments, key=len) if fragments else ""


@dataclass(frozen=True)
class ComprehensionQuestion:
    """One study item: a report plus three candidate visualizations.

    ``cues`` maps each predicate to its glossary phrase, modelling the
    legend of the KG visualization (what an edge of each type *means*).
    """

    case_id: int
    text: str
    choices: tuple[GraphVisualization, ...]
    correct_index: int
    cues: dict[str, str] = field(default_factory=dict)

    def archetype_of(self, choice_index: int) -> ErrorArchetype | None:
        return self.choices[choice_index].archetype


def build_question(
    case_id: int,
    scenario: ScenarioInstance,
    rng: random.Random,
    llm: LLMClient | None = None,
) -> ComprehensionQuestion:
    """Materialize the scenario, explain its target, and corrupt the
    visualization twice with distinct applicable archetypes."""
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary, llm=llm)
    explanation = explainer.explain(scenario.target)
    correct_facts = frozenset(result.graph.proof_facts(scenario.target))

    corrupted: list[GraphVisualization] = []
    archetypes = list(ALL_ARCHETYPES)
    rng.shuffle(archetypes)
    # First pass: distinct archetypes; second pass: allow a repeated
    # archetype at a different corruption site (small scenarios may not
    # host all four archetypes).
    for candidates in (archetypes, archetypes * 3):
        for archetype in candidates:
            if len(corrupted) == 2:
                break
            try:
                candidate = corrupt(correct_facts, archetype, rng)
            except CorruptionError:
                continue
            if any(candidate.facts == existing.facts for existing in corrupted):
                continue
            corrupted.append(candidate)
        if len(corrupted) == 2:
            break
    if len(corrupted) < 2:
        raise CorruptionError(
            f"case {case_id}: could not build two corrupted visualizations"
        )
    choices: list[GraphVisualization] = [
        GraphVisualization(correct_facts),
        *corrupted,
    ]
    rng.shuffle(choices)
    correct_index = next(
        index for index, choice in enumerate(choices) if choice.is_correct
    )
    glossary = scenario.application.glossary
    cues = {
        predicate: predicate_cue(glossary.entry(predicate).text)
        for predicate in glossary.predicates()
    }
    return ComprehensionQuestion(
        case_id=case_id,
        text=explanation.text,
        choices=tuple(choices),
        correct_index=correct_index,
        cues=cues,
    )


# ----------------------------------------------------------------------
# Simulated participants
# ----------------------------------------------------------------------

def _fact_constants(current: Fact) -> list[str]:
    return [
        str(term) for term in current.terms if isinstance(term, Constant)
    ]


def _constant_in(clause: str, constant: str) -> int:
    """Position of ``constant`` in ``clause`` (word-boundary aware), or -1."""
    match = re.search(
        rf"(?<![\w.]){re.escape(constant)}(?!\w|\.\d)", clause
    )
    return match.start() if match else -1


_NUMBER_IN_CLAUSE = re.compile(r"(?<![\w.])\d+(?:\.\d+)?(?!\w|\.\d)")
_ENTITY_IN_CLAUSE = re.compile(r"(?<![\w<])[A-Z][A-Za-z0-9_]*(?![\w>])")
# "and" is the enumeration separator, not a label candidate.
_LABEL_IN_CLAUSE = re.compile(r"(?<![\w<])(?!and\b)[a-z][a-z0-9_]*(?![\w>])")


_CLAUSE_SEPARATOR_RE = re.compile(
    r", and therefore |; as a result, |; and |; hence | — thus |, so "
    r"|, and |, with |, then |; "
)
_CLAUSE_PREFIX_RE = re.compile(
    r"^(?:Since |Because |Given that |As |Consequently, )", re.IGNORECASE
)


def split_clauses(text: str) -> list[str]:
    """Sentence fragments a reader checks one at a time.

    Splits at the verbalizer's structural separators (", and " between
    conjuncts, ", with " before aggregations, ", then " before heads) and
    at the enhanced-text connectives the rewriting engine uses ("; as a
    result, ", ", and therefore ", …) — while value enumerations like
    "0.74, 0.81 and 0.68" stay intact.  Leading discourse markers are
    stripped so clause text starts at the content."""
    clauses: list[str] = []
    for sentence in _SENTENCE_RE.split(text):
        for part in _CLAUSE_SEPARATOR_RE.split(sentence):
            part = _CLAUSE_PREFIX_RE.sub("", part.strip()).strip()
            if part:
                clauses.append(part)
    return clauses


_ENUM_SEPARATORS = (", ", " and ", ", and ")


def _enumeration_groups(clause: str, pattern: re.Pattern[str]) -> list[list[str]]:
    """Maximal runs of pattern matches separated only by ", "/" and "."""
    matches = list(pattern.finditer(clause))
    groups: list[list[str]] = []
    current: list[str] = []
    previous_end: int | None = None
    for match in matches:
        gap = clause[previous_end:match.start()] if previous_end is not None else None
        if gap in _ENUM_SEPARATORS:
            current.append(match.group(0))
        else:
            if current:
                groups.append(current)
            current = [match.group(0)]
        previous_end = match.end()
    if current:
        groups.append(current)
    return groups


def _enumeration_aligned(clause: str, current: Fact) -> bool:
    """The "respectively" reading: when a clause enumerates entities and
    values in parallel runs ("B and C own 0.3 and 0.25..."), a fact is
    supported only when one of its entities and its value sit at the same
    rank of same-length runs."""
    constants = _fact_constants(current)
    entities = [c for c in constants if not c.replace(".", "", 1).isdigit()]
    value = next(
        (c for c in reversed(constants) if c.replace(".", "", 1).isdigit()), None
    )
    if not entities or value is None:
        return True
    entity_groups = _enumeration_groups(clause, _ENTITY_IN_CLAUSE)
    # Lowercase property labels ("long and short") enumerate in parallel
    # with values too; only runs of length >= 2 are kept, so ordinary
    # prose words (each its own run) never interfere.
    entity_groups += [
        group
        for group in _enumeration_groups(clause, _LABEL_IN_CLAUSE)
        if len(group) >= 2
    ]
    number_groups = _enumeration_groups(clause, _NUMBER_IN_CLAUSE)
    pairing_found = False
    for entity in entities:
        for entity_group in entity_groups:
            if len(entity_group) < 2 or entity not in entity_group:
                continue
            for number_group in number_groups:
                if len(number_group) != len(entity_group):
                    continue
                if value not in number_group:
                    continue
                pairing_found = True
                if entity_group.index(entity) == number_group.index(value):
                    return True
    return not pairing_found


def fact_support(
    current: Fact, clauses: list[str], cue: str | None = None
) -> float:
    """How strongly the text supports one drawn fact.

    1.2 — all constants co-occur in one clause stating the right relation
          (the predicate's glossary ``cue``), in argument order;
    1.0 — co-occur in such a clause (aligned enumeration);
    0.75 — co-occur but the enumeration pairs them up differently;
    otherwise the best per-clause fraction of constants found.  Clauses
    that merely mention the constants without the relation wording count
    at half strength — "B owns shares of C" does not support a drawn
    "B controls C" edge.
    """
    constants = _fact_constants(current)
    if not constants:
        return 1.0
    best = 0.0
    for clause in clauses:
        positions = [_constant_in(clause, constant) for constant in constants]
        found = [p for p in positions if p >= 0]
        fraction = len(found) / len(constants)
        cue_present = not cue or cue in clause.lower()
        if fraction == 1.0 and cue_present:
            if not _enumeration_aligned(clause, current):
                score = 0.75
            elif all(
                earlier <= later for earlier, later in zip(positions, positions[1:])
            ):
                score = 1.2
            else:
                score = 1.0
        elif fraction == 1.0:
            score = 0.5
        else:
            score = fraction * 0.8 * (1.0 if cue_present else 0.625)
        best = max(best, score)
        if best >= 1.2:
            break
    return best


@dataclass
class SimulatedParticipant:
    """A noisy text-vs-graph consistency checker.

    ``perception_noise`` jitters each graph's penalty score;
    ``attention_lapse`` is the probability of answering at random.
    """

    rng: random.Random
    perception_noise: float = 0.11
    attention_lapse: float = 0.02

    def answer(self, question: ComprehensionQuestion) -> int:
        if self.rng.random() < self.attention_lapse:
            return self.rng.randrange(len(question.choices))
        clauses = split_clauses(question.text)
        scores = []
        for choice in question.choices:
            penalty = sum(
                1.2 - fact_support(
                    fact, clauses, question.cues.get(fact.predicate)
                )
                for fact in choice.facts
            )
            scores.append(penalty + self.rng.gauss(0.0, self.perception_noise))
        return min(range(len(scores)), key=scores.__getitem__)


# ----------------------------------------------------------------------
# Study runner (Figure 14)
# ----------------------------------------------------------------------

@dataclass
class CaseResult:
    """Aggregated answers for one of the five cases."""

    case_id: int
    answers: int = 0
    correct: int = 0
    errors: dict[ErrorArchetype, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return self.correct / self.answers if self.answers else 0.0

    def error_rate(self, archetype: ErrorArchetype) -> float:
        if not self.answers:
            return 0.0
        return self.errors.get(archetype, 0) / self.answers


@dataclass
class ComprehensionStudyResult:
    """The full Figure 14 table."""

    cases: list[CaseResult]

    @property
    def overall_accuracy(self) -> float:
        total = sum(case.answers for case in self.cases)
        correct = sum(case.correct for case in self.cases)
        return correct / total if total else 0.0

    def table_rows(self) -> list[dict[str, object]]:
        rows = []
        for case in self.cases:
            rows.append({
                "case": case.case_id,
                "wrong edge": case.error_rate(ErrorArchetype.WRONG_EDGE),
                "wrong value": case.error_rate(ErrorArchetype.WRONG_VALUE),
                "incorrect aggregation": case.error_rate(
                    ErrorArchetype.WRONG_AGGREGATION
                ),
                "incorrect chain": case.error_rate(ErrorArchetype.WRONG_CHAIN),
                "correct answers": case.accuracy,
            })
        return rows


def run_comprehension_study(
    participants: int = 24,
    seed: int = 0,
    llm: LLMClient | None = None,
) -> ComprehensionStudyResult:
    """Reproduce the Section 6.1 experiment: ``participants`` simulated
    non-experts each answer the five case questions."""
    rng = random.Random(f"comprehension:{seed}")
    questions = [
        build_question(case_id, scenario, rng, llm=llm)
        for case_id, scenario in enumerate(study_cases(seed), start=1)
    ]
    cases = [CaseResult(case_id=question.case_id) for question in questions]
    for participant_index in range(participants):
        participant = SimulatedParticipant(
            rng=random.Random(f"participant:{seed}:{participant_index}")
        )
        for question, case in zip(questions, cases):
            chosen = participant.answer(question)
            case.answers += 1
            if chosen == question.correct_index:
                case.correct += 1
            else:
                archetype = question.archetype_of(chosen)
                if archetype is not None:
                    case.errors[archetype] = case.errors.get(archetype, 0) + 1
    return ComprehensionStudyResult(cases)
