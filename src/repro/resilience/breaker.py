"""A thread-safe circuit breaker guarding each LLM client.

Classic three-state breaker (Nygard, *Release It!*):

* **closed** — calls flow through; outcomes are recorded in a sliding
  window.  When the window holds at least ``min_calls`` outcomes and the
  failure rate reaches ``failure_threshold``, the breaker opens.
* **open** — calls are rejected immediately with
  :class:`~repro.resilience.policy.CircuitOpen`; no backend call is made.
  After ``cooldown_s`` (monotonic, injectable clock) the breaker moves to
  half-open.
* **half-open** — exactly one probe call is let through; success closes
  the breaker (window reset), failure re-opens it for another cooldown.

State transitions are counted in the ambient :mod:`repro.obs` registry
(``llm.breaker_opened`` / ``llm.breaker_closed`` / ``llm.breaker_rejected``
/ ``llm.breaker_probes``), so a flapping backend is visible in the stats
document.

:func:`breaker_for` keeps one breaker per LLM client instance (weakly
referenced), which is what "guarding each LLMClient" means operationally:
every enhancer wrapping the same client shares the same failure window.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import Callable, TypeVar

from .. import obs
from .policy import CircuitOpen

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with cooldown and probe.

    Parameters
    ----------
    window:
        Number of most recent outcomes considered for the failure rate.
    failure_threshold:
        Failure fraction (0-1] at which the breaker opens.
    min_calls:
        Minimum outcomes in the window before the rate is meaningful.
    cooldown_s:
        Seconds the breaker stays open before allowing a half-open probe.
    clock:
        Injectable monotonic clock (tests advance it manually).
    name:
        Label used in error messages and snapshots.
    """

    def __init__(
        self,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "llm",
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = max(1, min_calls)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _tick_locked(self) -> None:
        """Open → half-open once the cooldown has elapsed."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            self._tick_locked()
            return self._state

    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()
        self._probe_in_flight = False
        obs.incr("llm.breaker_opened")
        obs.flight_event("breaker_opened", breaker=self.name)

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._probe_in_flight = False
        obs.incr("llm.breaker_closed")
        obs.flight_event("breaker_closed", breaker=self.name)

    # ------------------------------------------------------------------
    # Protocol: allow / record
    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpen` without calling
        the backend (the short-circuit is what protects the pool)."""
        with self._lock:
            self._tick_locked()
            if self._state == OPEN:
                obs.incr("llm.breaker_rejected")
                obs.flight_event("breaker_rejected", breaker=self.name)
                raise CircuitOpen(
                    f"circuit {self.name!r} is open "
                    f"(cooldown {self.cooldown_s:.1f}s)"
                )
            if self._state == HALF_OPEN:
                if self._probe_in_flight:
                    obs.incr("llm.breaker_rejected")
                    obs.flight_event("breaker_rejected", breaker=self.name)
                    raise CircuitOpen(
                        f"circuit {self.name!r} is half-open with a probe "
                        f"in flight"
                    )
                self._probe_in_flight = True
                obs.incr("llm.breaker_probes")

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._close_locked()
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._open_locked()
                return
            if self._state == OPEN:
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.min_calls:
                failures = self._outcomes.count(False)
                if failures / len(self._outcomes) >= self.failure_threshold:
                    self._open_locked()

    def observe_health(self, healthy: bool) -> None:
        """Record one external health verdict in the failure window.

        The SLO bridge (:meth:`repro.obs.slo.SLOEvaluator.drive_breaker`)
        calls this periodically: sustained SLO breaches accumulate as
        window failures and open the circuit exactly like backend
        errors, and recovery closes it through the normal half-open
        probe path.
        """
        if healthy:
            self.record_success()
        else:
            self.record_failure()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, recording its outcome."""
        self.allow()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _cooldown_remaining_locked(self) -> float:
        if self._state != OPEN:
            return 0.0
        return max(
            0.0, self.cooldown_s - (self._clock() - self._opened_at)
        )

    def cooldown_remaining_s(self) -> float:
        """Seconds until an open breaker allows its half-open probe
        (0.0 whenever the breaker is not open)."""
        with self._lock:
            self._tick_locked()
            return self._cooldown_remaining_locked()

    def snapshot(self) -> dict:
        with self._lock:
            self._tick_locked()
            outcomes = list(self._outcomes)
            return {
                "name": self.name,
                "state": self._state,
                "window": len(outcomes),
                "failures_in_window": outcomes.count(False),
                "cooldown_remaining_s": self._cooldown_remaining_locked(),
            }


# ----------------------------------------------------------------------
# Per-client registry
# ----------------------------------------------------------------------

_BREAKERS: "weakref.WeakKeyDictionary[object, CircuitBreaker]" = (
    weakref.WeakKeyDictionary()
)
_BREAKERS_LOCK = threading.Lock()


def breaker_for(client: object, **kwargs) -> CircuitBreaker:
    """The shared breaker guarding ``client`` (one per LLM instance).

    Entries are weakly keyed so breakers die with their clients.  Clients
    that cannot be weak-referenced get a private, unshared breaker.
    """
    try:
        with _BREAKERS_LOCK:
            found = _BREAKERS.get(client)
            if found is None:
                found = CircuitBreaker(
                    name=type(client).__qualname__, **kwargs
                )
                _BREAKERS[client] = found
            return found
    except TypeError:  # not weak-referenceable
        return CircuitBreaker(name=type(client).__qualname__, **kwargs)
