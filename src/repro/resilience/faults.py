"""Deterministic fault injection for the LLM boundary.

:class:`FaultInjectingLLM` wraps any :class:`~repro.llm.client.LLMClient`
and perturbs its behaviour according to a seeded schedule, so tests and
CI can exercise every degradation path of the pipeline — retries, circuit
breaking, per-template fallback, deadline expiry — without a flaky real
backend.  The same (spec, seed) pair produces the same fault sequence on
every run.

The SPEC grammar (also accepted by the ``--inject-faults`` CLI flag)::

    SPEC      := directive ("," directive)*
    directive := "transient:" N           first N calls raise TransientLLMError
               | "permanent:" N           first N calls raise PermanentLLMError
               | "slow:" N ":" SECONDS    first N calls are delayed by SECONDS
               | "drop:" N                first N responses lose their <tokens>
               | "rate:" P                every call fails transiently w.p. P
               | "rate:" P ":" KIND       ... with KIND in {transient,
                                          permanent, drop}

Examples: ``transient:3`` (exhaust one template's retry budget),
``rate:0.3`` (a 30%-flaky backend), ``slow:5:0.2,drop:2`` (directives
compose; counted directives fire on the earliest calls).

Delays use an injectable ``sleep`` — the timeouts-as-delays idiom: tests
pass a recording stub and assert the schedule instead of actually
waiting.  Token-dropping responses are the §4.4 failure mode the token
guard must catch, so ``drop`` faults surface as guard rejections, not
exceptions.
"""

from __future__ import annotations

import random
import re
import time
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from .policy import PermanentLLMError, TransientLLMError

_TOKEN_PATTERN = re.compile(r"<[^<>]+>")

#: Directive kinds that fire on the first N calls.
_COUNTED_KINDS = ("transient", "permanent", "slow", "drop")
#: Error kinds a ``rate:`` directive may inject.
_RATE_KINDS = ("transient", "permanent", "drop")


class FaultSpecError(ValueError):
    """Raised for a malformed ``--inject-faults`` SPEC string."""


@dataclass
class FaultRule:
    """One parsed directive of a fault SPEC."""

    kind: str
    count: int | None = None
    seconds: float = 0.0
    probability: float = 0.0
    error_kind: str = "transient"
    fired: int = field(default=0, compare=False)

    def describe(self) -> str:
        if self.kind == "rate":
            return f"rate:{self.probability}:{self.error_kind}"
        if self.kind == "slow":
            return f"slow:{self.count}:{self.seconds}"
        return f"{self.kind}:{self.count}"


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse a SPEC string (see module docstring) into fault rules."""
    rules: list[FaultRule] = []
    for raw in spec.split(","):
        directive = raw.strip()
        if not directive:
            continue
        parts = directive.split(":")
        kind = parts[0].strip().lower()
        try:
            if kind in ("transient", "permanent", "drop"):
                if len(parts) != 2:
                    raise FaultSpecError(
                        f"{kind!r} takes exactly one argument: {kind}:N"
                    )
                rules.append(FaultRule(kind=kind, count=int(parts[1])))
            elif kind == "slow":
                if len(parts) != 3:
                    raise FaultSpecError(
                        "'slow' takes two arguments: slow:N:SECONDS"
                    )
                rules.append(FaultRule(
                    kind=kind, count=int(parts[1]), seconds=float(parts[2]),
                ))
            elif kind == "rate":
                if len(parts) not in (2, 3):
                    raise FaultSpecError(
                        "'rate' takes one or two arguments: rate:P[:KIND]"
                    )
                probability = float(parts[1])
                if not 0.0 <= probability <= 1.0:
                    raise FaultSpecError(
                        f"rate probability must be in [0, 1], got {probability}"
                    )
                error_kind = parts[2].strip().lower() if len(parts) == 3 else "transient"
                if error_kind not in _RATE_KINDS:
                    raise FaultSpecError(
                        f"rate kind must be one of {_RATE_KINDS}, "
                        f"got {error_kind!r}"
                    )
                rules.append(FaultRule(
                    kind=kind, probability=probability, error_kind=error_kind,
                ))
            else:
                raise FaultSpecError(
                    f"unknown fault directive {kind!r} "
                    f"(expected one of {_COUNTED_KINDS + ('rate',)})"
                )
        except ValueError as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError(
                f"malformed fault directive {directive!r}: {error}"
            ) from error
    return rules


def strip_tokens(text: str) -> str:
    """Remove every ``<token>`` — the §4.4 token-dropping failure mode."""
    return _TOKEN_PATTERN.sub("", text)


class FaultInjectingLLM:
    """An :class:`~repro.llm.client.LLMClient` wrapper injecting faults.

    Parameters
    ----------
    inner:
        The real client to delegate healthy calls to.
    spec:
        A SPEC string (see module docstring) or a pre-parsed rule list.
    seed:
        Seed for the per-call RNG driving ``rate:`` directives.
    sleep:
        Injectable delay function for ``slow:`` directives.
    """

    def __init__(
        self,
        inner,
        spec: str | list[FaultRule] = "",
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.spec = spec if isinstance(spec, str) else ",".join(
            rule.describe() for rule in spec
        )
        self.rules = parse_fault_spec(spec) if isinstance(spec, str) else list(spec)
        self.seed = seed
        self.calls = 0
        self.injected: dict[str, int] = {}
        self._sleep = sleep

    # ------------------------------------------------------------------
    # LLMClient protocol
    # ------------------------------------------------------------------
    def complete(self, prompt: str) -> str:
        self.calls += 1
        rng = random.Random(f"{self.seed}:{self.calls}")
        drop_response = False
        for rule in self.rules:
            if rule.kind == "rate":
                if rng.random() < rule.probability:
                    if rule.error_kind == "drop":
                        drop_response = True
                    else:
                        self._raise(rule.error_kind)
                continue
            if rule.count is not None and rule.fired >= rule.count:
                continue
            rule.fired += 1
            if rule.kind == "slow":
                self._count("slow")
                self._sleep(rule.seconds)
            elif rule.kind == "drop":
                drop_response = True
            else:
                self._raise(rule.kind)
        response = self.inner.complete(prompt)
        if drop_response:
            self._count("drop")
            return strip_tokens(response)
        return response

    def _raise(self, kind: str) -> None:
        self._count(kind)
        if kind == "permanent":
            raise PermanentLLMError(
                f"injected permanent fault (call #{self.calls})"
            )
        raise TransientLLMError(
            f"injected transient fault (call #{self.calls})"
        )

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        obs.incr(f"llm.faults_injected_{kind}")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Compile fingerprints must distinguish fault-injected runs from
        healthy ones, or a degraded artifact could poison warm starts."""
        from ..core.compiler import llm_signature

        return (
            f"faults(spec={self.spec!r},seed={self.seed})"
            f"->{llm_signature(self.inner)}"
        )
