"""``repro.resilience`` — retries, deadlines, circuit breaking, faults.

The explanation pipeline's only external dependency is the per-template
LLM call (§4.4), and the paper treats enhanced templates as an optional
refinement over the always-valid deterministic base templates.  This
package makes that degradation path explicit and production-grade:

* :mod:`repro.resilience.policy` — the typed error taxonomy
  (:class:`TransientLLMError`, :class:`PermanentLLMError`,
  :class:`DeadlineExceeded`, :class:`CircuitOpen` under
  :class:`ResilienceError`), :class:`RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter, injectable sleep/clock) and
  :class:`Deadline` (a monotonic budget threaded through nested calls);
* :mod:`repro.resilience.breaker` — a thread-safe
  :class:`CircuitBreaker` (closed/open/half-open, sliding failure-rate
  window, cooldown) plus the per-client :func:`breaker_for` registry;
* :mod:`repro.resilience.faults` — :class:`FaultInjectingLLM`, a seeded
  fault-schedule wrapper (exceptions, delays, token-dropping responses)
  driving the ``--inject-faults`` CLI flag and the fault-injected CI job.

Degradation semantics: the enhancer falls back to the base template
per reasoning path (recorded in ``EnhancementReport`` and the
``enhance.fallback_total`` counter); the service's ``explain_batch``
honours a per-batch deadline and returns partial results with per-query
error status.  See DESIGN.md §8.
"""

from .breaker import CircuitBreaker, breaker_for
from .faults import (
    FaultInjectingLLM,
    FaultRule,
    FaultSpecError,
    parse_fault_spec,
    strip_tokens,
)
from .policy import (
    DEFAULT_RETRY_POLICY,
    DEFAULT_RETRYABLE,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    PermanentLLMError,
    ResilienceError,
    RetryPolicy,
    TransientLLMError,
    resilient_complete,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "DEFAULT_RETRYABLE",
    "DEFAULT_RETRY_POLICY",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjectingLLM",
    "FaultRule",
    "FaultSpecError",
    "PermanentLLMError",
    "ResilienceError",
    "RetryPolicy",
    "TransientLLMError",
    "breaker_for",
    "parse_fault_spec",
    "resilient_complete",
    "strip_tokens",
]
