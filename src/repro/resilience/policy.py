"""Retry policies, deadlines and the typed resilience error taxonomy.

The explanation pipeline has exactly one external dependency — the
per-template LLM call of Section 4.4 — and the paper treats enhanced
templates as an *optional* refinement over the always-valid deterministic
base templates.  That makes graceful degradation a paper-faithful
behaviour: when the enhancer backend misbehaves, the system falls back to
the base template for the affected reasoning path and keeps serving.

This module provides the three building blocks every resilient call site
shares:

* a **typed error taxonomy** (:class:`TransientLLMError`,
  :class:`PermanentLLMError`, :class:`DeadlineExceeded`,
  :class:`CircuitOpen`) replacing bare exceptions.  All of them subclass
  :class:`ResilienceError`, which itself subclasses :class:`RuntimeError`
  so legacy ``except RuntimeError`` call sites keep working for one more
  release (see CHANGES.md for the migration note);
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (seeded per attempt, so two runs with the same
  seed back off identically) and an injectable ``sleep``/``clock`` pair
  for tests;
* :class:`Deadline` — a monotonic time budget threaded through nested
  calls; checking an expired deadline raises :class:`DeadlineExceeded`
  instead of letting work pile up behind a hung backend.

Counters land in the ambient :mod:`repro.obs` registry under
``llm.retry_*`` so fault behaviour shows up in the stats document next to
the enhancement counters.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from .. import obs


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

class ResilienceError(RuntimeError):
    """Base of the resilience taxonomy.

    Subclasses :class:`RuntimeError` on purpose: callers that caught bare
    ``RuntimeError`` around enhancement keep degrading gracefully while
    they migrate to the typed hierarchy.
    """


class TransientLLMError(ResilienceError):
    """A retryable backend failure (timeout, 429/5xx, connection reset)."""


class PermanentLLMError(ResilienceError):
    """A non-retryable backend failure (auth, invalid request, 4xx)."""


class DeadlineExceeded(ResilienceError):
    """The operation's time budget ran out before it completed."""


class CircuitOpen(ResilienceError):
    """The circuit breaker is open; the call was short-circuited without
    reaching the backend (see :class:`repro.resilience.breaker.CircuitBreaker`)."""


#: Exception types a :class:`RetryPolicy` retries by default.  Permanent
#: errors, open circuits and expired deadlines are never retried.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientLLMError, TimeoutError, ConnectionError,
)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------

class Deadline:
    """A monotonic time budget shared by nested calls.

    Created once at the operation boundary and passed down; every layer
    can ask :meth:`remaining` (to bound its own waits) or :meth:`check`
    (to fail fast with :class:`DeadlineExceeded`).  The clock is
    injectable so tests advance time without sleeping.
    """

    __slots__ = ("budget_s", "_clock", "_expires_at")

    def __init__(self, budget_s: float, clock: Callable[[], float] = time.monotonic):
        self.budget_s = float(budget_s)
        self._clock = clock
        self._expires_at = clock() + self.budget_s

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(seconds, clock=clock)

    @staticmethod
    def coerce(
        value: "Deadline | float | int | None",
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        """Accept ``None``, an existing deadline, or a budget in seconds."""
        if value is None or isinstance(value, Deadline):
            return value
        return Deadline(float(value), clock=clock)

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s:.3f}s deadline"
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(budget_s={self.budget_s:.3f}, "
            f"remaining_s={self.remaining():.3f})"
        )


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

def _no_jitter(_: int) -> float:  # pragma: no cover - trivial
    return 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Attempt ``n`` (1-based) backs off
    ``min(max_delay_s, base_delay_s * multiplier**(n-1))`` scaled by a
    jitter factor drawn from ``[1-jitter, 1+jitter]`` with a seed derived
    from ``(seed, attempt)`` — the same policy produces the same backoff
    schedule on every run, which keeps fault-injected CI reproducible.

    ``sleep`` and ``clock`` are injectable so tests never wait.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    metric_prefix: str | None = "llm.retry"

    def backoff_s(self, attempt: int) -> float:
        """The (deterministically jittered) delay after attempt ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter:
            factor = random.Random(f"{self.seed}:{attempt}").uniform(
                1.0 - self.jitter, 1.0 + self.jitter
            )
            delay *= factor
        return delay

    def _incr(self, suffix: str) -> None:
        if self.metric_prefix:
            obs.incr(f"{self.metric_prefix}_{suffix}")

    def call(
        self,
        fn: Callable[[], object],
        *,
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ):
        """Invoke ``fn`` under this policy.

        Retryable errors (``retry_on``) trigger backoff-and-retry until
        ``max_attempts`` is reached, then the last error is re-raised.
        Everything else — including :class:`PermanentLLMError`,
        :class:`CircuitOpen` and :class:`DeadlineExceeded` — propagates
        immediately.  A deadline bounds the whole loop: an attempt never
        starts, and a backoff is never slept, past the budget.
        """
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check("retried call")
            try:
                result = fn()
            except self.retry_on as error:
                if attempt >= self.max_attempts:
                    self._incr("exhausted")
                    raise
                delay = self.backoff_s(attempt)
                if deadline is not None and delay >= deadline.remaining():
                    self._incr("deadline_abandoned")
                    raise DeadlineExceeded(
                        f"backoff of {delay:.3f}s does not fit in the "
                        f"remaining {deadline.remaining():.3f}s budget"
                    ) from error
                self._incr("attempts")
                if self.metric_prefix:
                    obs.observe(f"{self.metric_prefix}_backoff_s", delay)
                if on_retry is not None:
                    on_retry(attempt, error, delay)
                self.sleep(delay)
            else:
                if attempt > 1:
                    self._incr("recovered")
                return result
        raise AssertionError("unreachable")  # pragma: no cover


#: The default policy resilient call sites fall back to.
DEFAULT_RETRY_POLICY = RetryPolicy()


def resilient_complete(
    llm,
    prompt: str,
    *,
    policy: RetryPolicy | None = None,
    breaker=None,
    deadline: Deadline | None = None,
) -> str:
    """One LLM completion under retry + circuit-breaker + deadline.

    The breaker wraps each individual attempt, so a circuit that opens
    mid-retry short-circuits the remaining attempts (``CircuitOpen`` is
    not retryable).  Any object with a ``call(fn)`` raising/recording in
    breaker style works; ``None`` disables breaking.
    """
    chosen = policy if policy is not None else DEFAULT_RETRY_POLICY

    def attempt() -> str:
        if breaker is not None:
            return breaker.call(lambda: llm.complete(prompt))
        return llm.complete(prompt)

    return chosen.call(attempt, deadline=deadline)  # type: ignore[return-value]
