"""Proof extraction: derivation spines and chase-step sequences.

The template mapping of Section 4.3 works on "the ordered set of activated
rules" along a materialized source-to-leaf path of the chase graph — e.g.
π = {α, β, γ, β, γ} in Example 4.7.  This module recovers that object from
the provenance records:

* the **proof DAG** of a fact is the set of chase steps it transitively
  depends on;
* the **derivation spine** is the distinguished root-to-leaf path through
  the proof: at every step we follow the *deepest* intensional parent (the
  longest sub-derivation), which matches the paper's reading of a chase
  path as the principal story, with the remaining intensional parents
  recorded as *side branches* (they matter for selecting joint-channel
  reasoning paths such as Π9 or Γ4 of the stress test).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..datalog.atoms import Fact
from .chase import ChaseResult, ChaseStepRecord


@dataclass(frozen=True)
class SpineStep:
    """One step of a derivation spine.

    Attributes
    ----------
    record:
        The underlying chase step.
    spine_parent:
        The intensional parent the spine continues from (``None`` for the
        first step, whose intensional inputs are all extensional).
    side_rules:
        Labels of the rules that derived the *other* intensional parents
        of this step (joint contributions from off-spine branches).
    multi_contributor:
        Whether this step's aggregation combined several inputs — the
        trigger for "dashed" reasoning-path variants.
    """

    record: ChaseStepRecord
    spine_parent: Fact | None
    side_rules: tuple[str, ...]
    multi_contributor: bool

    @property
    def rule_label(self) -> str:
        return self.record.rule_label

    @property
    def fact(self) -> Fact:
        return self.record.fact

    def __str__(self) -> str:
        flags = []
        if self.multi_contributor:
            flags.append("multi")
        if self.side_rules:
            flags.append(f"side={','.join(self.side_rules)}")
        suffix = f" ({'; '.join(flags)})" if flags else ""
        return f"{self.rule_label}: {self.fact}{suffix}"


@dataclass(frozen=True)
class DerivationSpine:
    """The root-to-leaf chase path explaining a fact.

    ``steps`` are ordered from the first derivation (a root-adjacent step
    such as the initial shock default) to the step deriving the target.
    ``rule_sequence`` is the paper's π notation.
    """

    target: Fact
    steps: tuple[SpineStep, ...]

    @property
    def rule_sequence(self) -> tuple[str, ...]:
        return tuple(step.rule_label for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        lines = [f"Derivation spine of {self.target}:"]
        lines.extend(f"  {index + 1}. {step}" for index, step in enumerate(self.steps))
        return "\n".join(lines)


class ProvenanceTracker:
    """Extracts proofs and spines from a :class:`ChaseResult`.

    With ``index`` (a :class:`~repro.engine.provenance_index.ProvenanceIndex`
    over the same result), spine/proof extraction delegates to the
    index's memoized, precomputed views — same answers, no repeated
    graph walks.  Without one the tracker performs the walks itself,
    which keeps it usable standalone (and as the parity ground truth the
    index is tested against).
    """

    def __init__(self, result: ChaseResult, index=None):
        self.result = result
        self.index = index
        self._intensional = result.program.intensional_predicates()

        # Depth memoization is keyed by the fact's global insertion
        # sequence (an int the columnar store already maintains) instead
        # of hashing whole fact tuples on every cache probe; facts are
        # decoded only to follow parent links.
        database = result.database
        sequence = database.sequence

        @lru_cache(maxsize=None)
        def depth_at(seq: int) -> int:
            record = self.result.derivation.get(database.fact_at(seq))
            if record is None:
                return 0
            parents = self._intensional_parents(record)
            if not parents:
                return 1
            return 1 + max(depth_at(sequence(parent)) for parent in parents)

        def depth(current: Fact) -> int:
            try:
                seq = sequence(current)
            except KeyError:
                return 0
            return depth_at(seq)

        self._depth = depth

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _intensional_parents(self, record: ChaseStepRecord) -> tuple[Fact, ...]:
        return tuple(
            parent for parent in record.parents
            if parent.predicate in self._intensional
            and parent in self.result.derivation
        )

    def depth(self, current: Fact) -> int:
        """Length of the longest derivation chain below ``current``."""
        if self.index is not None:
            return self.index.depth(current)
        return self._depth(current)

    # ------------------------------------------------------------------
    # Proof DAG
    # ------------------------------------------------------------------
    def proof_records(self, target: Fact) -> list[ChaseStepRecord]:
        """All chase steps in the proof of ``target``, in chase order."""
        if self.index is not None:
            return list(self.index.proof_records(target))
        collected: dict[int, ChaseStepRecord] = {}
        frontier = [target]
        while frontier:
            current = frontier.pop()
            record = self.result.derivation.get(current)
            if record is None or record.index in collected:
                continue
            collected[record.index] = record
            frontier.extend(record.parents)
        return [collected[index] for index in sorted(collected)]

    def proof_size(self, target: Fact) -> int:
        """Number of chase steps in the proof (Figures 17/18 x axis)."""
        return len(self.proof_records(target))

    def proof_constants(self, target: Fact) -> tuple[str, ...]:
        """The distinct constants appearing in the proof of ``target``.

        This is the ground truth for the completeness measurements of
        Section 6.3: an explanation is complete when it mentions all of
        them.
        """
        if self.index is not None:
            return self.index.proof_constants(target)
        seen: dict[str, None] = {}
        for record in self.proof_records(target):
            for parent in record.parents:
                for constant in parent.constants():
                    seen.setdefault(str(constant), None)
            for constant in record.fact.constants():
                seen.setdefault(str(constant), None)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Spine
    # ------------------------------------------------------------------
    def spine(self, target: Fact) -> DerivationSpine:
        """The root-to-leaf derivation path for ``target``.

        Raises ``KeyError`` when ``target`` is extensional (nothing to
        explain: it was given, not derived).
        """
        if self.index is not None:
            return self.index.spine(target)
        if target not in self.result.derivation:
            raise KeyError(f"{target} was not derived by the chase")
        reversed_steps: list[SpineStep] = []
        current: Fact | None = target
        while current is not None:
            record = self.result.derivation[current]
            parents = self._intensional_parents(record)
            if parents:
                spine_parent = max(
                    parents, key=lambda p: (self._depth(p), -record.parents.index(p))
                )
                side = tuple(
                    self.result.derivation[p].rule_label
                    for p in parents if p != spine_parent
                )
            else:
                spine_parent = None
                side = ()
            reversed_steps.append(
                SpineStep(
                    record=record,
                    spine_parent=spine_parent,
                    side_rules=side,
                    multi_contributor=record.multi_contributor,
                )
            )
            current = spine_parent
        return DerivationSpine(target=target, steps=tuple(reversed(reversed_steps)))
