"""Execution entry point for compiled :mod:`~repro.engine.planner` plans.

The actual join machinery lives in :mod:`repro.engine.kernels`: each
:class:`RulePlan` compiles into a :class:`~repro.engine.kernels.RuleKernel`
— specialized closures that probe the database's composite indexes with
interned-id keys, bind and compare ints in a flat register file, and
evaluate hoisted conditions, assignments and negation checks without
touching term objects.  This module keeps the strategy-facing contract:

**Provenance parity.**  The naive engine enumerates homomorphisms
depth-first over body atoms in written order, with candidates in fact
insertion order — i.e. in lexicographic order of the matched facts'
insertion-sequence tuple.  Kernel output is therefore re-sorted by
exactly that key, and each binding is rebuilt from the matched facts'
actual stored terms and re-serialized in naive first-binding order, so
the ``planned`` strategy fires matches in the byte-identical order,
producing identical derived facts, labelled nulls and
:class:`ChaseStepRecord` provenance.

**Hoisting and evaluation errors.**  A hoisted condition or assignment
may be evaluated on a partial binding that naive evaluation would have
discarded before ever evaluating it.  When such an evaluation raises
:class:`EvaluationError` the partial is pruned (and counted in the plan
stats): on any program where naive evaluation succeeds, a partial that
errors can never extend to a full match — otherwise naive evaluation
would have raised on that same match.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.atoms import Fact
from .database import Database
from .kernels import Match, RuleKernel, compile_rule_kernel
from .planner import RulePlan

__all__ = ["Match", "group_by_predicate", "execute_rule_plan"]


def group_by_predicate(facts: Iterable[Fact]) -> dict[str, list[Fact]]:
    """Group a delta for pivot-step enumeration (one pass per round)."""
    grouped: dict[str, list[Fact]] = {}
    for current in facts:
        grouped.setdefault(current.predicate, []).append(current)
    return grouped


def execute_rule_plan(
    rule_plan: RulePlan,
    database: Database,
    exclude: frozenset[Fact],
    delta_by_predicate: Mapping[str, list[Fact]] | None = None,
    stats: dict | None = None,
    kernel: RuleKernel | None = None,
) -> list[Match]:
    """A rule's full matches in naive enumeration order.

    Without a delta, the full plan runs; with one, every delta variant
    whose pivot predicate intersects the delta runs and the union is
    deduplicated (a homomorphism touching two delta facts is found once
    per pivot).  Either way the result is sorted by the insertion-sequence
    tuple of the parents and each binding is serialized in naive
    first-binding order (see module docstring).

    Pass ``kernel`` (from :func:`~repro.engine.kernels.compile_rule_kernel`)
    to reuse a compiled kernel across rounds — the chase compiles once per
    stratum; without one, the plan is compiled fresh for this call.
    """
    if kernel is None:
        kernel = compile_rule_kernel(rule_plan, database)
    return kernel.execute(database, exclude, delta_by_predicate, stats)
