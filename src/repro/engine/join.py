"""Hash-join execution of compiled :mod:`~repro.engine.planner` plans.

The executor evaluates a rule body set-at-a-time: each :class:`JoinStep`
probes a lazily built composite index in the :class:`Database` (build
side) with the partial bindings accumulated so far (probe side), binds the
atom's new variables directly from the matched fact's term tuple, and
applies the step's hoisted assignments, comparisons and negation checks
before the next join.

**Provenance parity.**  The naive engine enumerates homomorphisms
depth-first over body atoms in written order, with candidates in fact
insertion order — i.e. in lexicographic order of the matched facts'
insertion-sequence tuple.  The executor therefore re-sorts its (order
independent) output by exactly that key and re-serializes each binding in
naive first-binding order, so the ``planned`` strategy fires matches in
the byte-identical order, producing identical derived facts, labelled
nulls and :class:`ChaseStepRecord` provenance.

**Hoisting and evaluation errors.**  A hoisted condition or assignment
may be evaluated on a partial binding that naive evaluation would have
discarded before ever evaluating it.  When such an evaluation raises
:class:`EvaluationError` the partial is pruned (and counted in the plan
stats): on any program where naive evaluation succeeds, a partial that
errors can never extend to a full match — otherwise naive evaluation
would have raised on that same match.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..datalog.atoms import Fact
from ..datalog.conditions import evaluate_assignment
from ..datalog.errors import EvaluationError
from ..datalog.terms import Variable
from ..datalog.unify import MutableSubstitution
from .database import Database
from .planner import JoinPlan, RulePlan

#: A full body match: (binding, matched facts in original body order).
Match = tuple[MutableSubstitution, tuple[Fact, ...]]

_EMPTY: tuple[Fact, ...] = ()


def group_by_predicate(facts: Iterable[Fact]) -> dict[str, list[Fact]]:
    """Group a delta for pivot-step enumeration (one pass per round)."""
    grouped: dict[str, list[Fact]] = {}
    for current in facts:
        grouped.setdefault(current.predicate, []).append(current)
    return grouped


def execute_plan(
    plan: JoinPlan,
    database: Database,
    exclude: frozenset[Fact],
    delta_by_predicate: Mapping[str, list[Fact]] | None = None,
    stats: dict | None = None,
) -> list[Match]:
    """All full matches of one plan, unsorted, parents in body order."""
    probes = 0
    scanned = 0
    pruned = 0
    # A partial is (binding, facts-in-step-order); breadth-first through
    # the steps so each composite index is resolved once per step.
    partials: list[tuple[MutableSubstitution, tuple[Fact, ...]]] = [({}, ())]
    for step_index, step in enumerate(plan.steps):
        predicate = step.atom.predicate
        pivot_step = plan.pivot is not None and step_index == 0
        buckets = None
        source: Iterable[Fact] = _EMPTY
        if pivot_step:
            if delta_by_predicate is not None:
                source = delta_by_predicate.get(predicate, _EMPTY)
        elif step.probe_positions:
            buckets = database.index_on(predicate, step.probe_positions)
        else:
            source = database.facts(predicate)
        probe_pairs = tuple(zip(step.probe_positions, step.probe_terms))
        next_partials: list[tuple[MutableSubstitution, tuple[Fact, ...]]] = []
        for binding, used in partials:
            probes += 1
            if buckets is not None:
                key = tuple(
                    binding[term] if type(term) is Variable else term
                    for term in step.probe_terms
                )
                candidates = buckets.get(key, _EMPTY)
                verify_probe = False
            else:
                candidates = source
                verify_probe = bool(probe_pairs)
            for candidate in candidates:
                scanned += 1
                if exclude and candidate in exclude:
                    continue
                terms = candidate.terms
                if verify_probe and any(
                    terms[position]
                    != (binding[term] if type(term) is Variable else term)
                    for position, term in probe_pairs
                ):
                    continue
                extended = dict(binding)
                for position, variable in step.bind_positions:
                    extended[variable] = terms[position]
                if any(
                    extended[variable] != terms[position]
                    for position, variable in step.check_positions
                ):
                    continue
                ok = True
                for variable, expression in step.assignments:
                    try:
                        extended[variable] = evaluate_assignment(
                            expression, extended
                        )
                    except EvaluationError:
                        ok = False
                        break
                if ok:
                    try:
                        ok = all(
                            condition.holds(extended)
                            for condition in step.conditions
                        )
                    except EvaluationError:
                        ok = False
                if not ok:
                    pruned += 1
                    continue
                if step.negated and any(
                    next(database.match(pattern, extended, exclude), None)
                    is not None
                    for pattern in step.negated
                ):
                    continue
                next_partials.append((extended, used + (candidate,)))
        partials = next_partials
        if not partials:
            break
    if stats is not None:
        stats["probes"] = stats.get("probes", 0) + probes
        stats["scanned"] = stats.get("scanned", 0) + scanned
        stats["pruned"] = stats.get("pruned", 0) + pruned
        stats["matches"] = stats.get("matches", 0) + len(partials)
    restore = plan.step_of_atom
    return [
        (binding, tuple(used[restore[index]] for index in range(len(restore))))
        for binding, used in partials
    ]


def execute_rule_plan(
    rule_plan: RulePlan,
    database: Database,
    exclude: frozenset[Fact],
    delta_by_predicate: Mapping[str, list[Fact]] | None = None,
    stats: dict | None = None,
) -> list[Match]:
    """A rule's full matches in naive enumeration order.

    Without a delta, the full plan runs; with one, every delta variant
    whose pivot predicate intersects the delta runs and the union is
    deduplicated by parents tuple (a homomorphism touching two delta
    facts is found once per pivot).  Either way the result is sorted by
    the insertion-sequence tuple of the parents and each binding is
    re-serialized in naive first-binding order (see module docstring).
    """
    if delta_by_predicate is None:
        matches = execute_plan(
            rule_plan.full, database, exclude, stats=stats
        )
    else:
        matches = []
        seen: set[tuple[Fact, ...]] = set()
        for variant in rule_plan.delta_variants:
            pivot_predicate = rule_plan.rule.body[variant.pivot].predicate
            if pivot_predicate not in delta_by_predicate:
                continue
            for binding, used in execute_plan(
                variant, database, exclude, delta_by_predicate, stats=stats
            ):
                if used in seen:
                    continue
                seen.add(used)
                matches.append((binding, used))
    sequence = database.sequence
    matches.sort(key=lambda match: tuple(sequence(f) for f in match[1]))
    canonical = rule_plan.full.canonical_variables
    return [
        ({variable: binding[variable] for variable in canonical}, used)
        for binding, used in matches
    ]
