"""Incremental chase maintenance: delta insertion and delete–rederive.

Live knowledge graphs change one edge at a time, yet a fresh chase pays
for the whole database on every change.  This module maintains a
:class:`~repro.engine.chase.ChaseResult` under extensional add/retract
deltas at a cost proportional to the *consequences* of the delta, while
reproducing the fresh run **exactly**: same facts, same
:class:`ChaseStepRecord` contents, same round numbers, same supersession
and violation sets.  Byte-for-byte parity with a from-scratch chase is
the contract every consumer (provenance index, explanation memos, serve
layer) relies on, so the algorithm is organized as a *replay with match
oracles* rather than a classic differential fixpoint:

* A brand-new :class:`Database` is seeded with the post-delta EDB
  (retained facts keep their relative order, adds append), and the old
  run's records are scheduled at their original (stratum, round, rule)
  *slots*.  Untouched records re-fire verbatim — no join work at all.
* Four discovery channels feed each rule's turn with candidate matches
  beyond the scheduled ones, mirroring semi-naive evaluation seeded with
  delta relations: (1) scheduled old records, re-checked against the
  live instance at fire time (parents present, not superseded, negation
  still holds) — records that fail their check are DRed *overdeletions*;
  (2) compiled delta kernels (:mod:`repro.engine.kernels`) probed with
  the accumulated set of changed facts, compiled lazily so an update
  that never touches a rule never pays for its kernel; (3) a *rederivation*
  pool of threatened facts probed with head-bound selective joins — the
  DRed rederivation step that keeps alternative derivations alive; and
  (4) negation seeds: facts that vanished relative to the old run enable
  matches that the old run never saw, found by binding the vanished
  blocker into the rule body.  Stratum ordering makes both negation
  channels sound: negated predicates are final before a stratum starts.
* Aggregate rules replay per *group*: groups whose composition is
  untouched re-emit their recorded trajectory, groups marked dirty by
  any channel are recomputed set-at-a-time with a group-key-bound join,
  following the monotonic-supersession bookkeeping of the fresh engine
  step for step.

Candidates from all channels are merged, deduplicated by parent tuple
and fired in ascending parent-sequence order — the exact enumeration
order of the naive engine — so record indexes, rounds and bindings come
out identical to a fresh run on the post-delta database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from .. import obs
from ..datalog.atoms import Fact
from ..datalog.conditions import evaluate_assignment, evaluate_expression
from ..datalog.errors import EvaluationError
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.stratification import stratify
from ..datalog.terms import Constant, Term, Variable
from ..datalog.unify import MutableSubstitution, apply_substitution, match_atom
from .chase import (
    ChaseEngine,
    ChaseError,
    ChaseResult,
    ChaseStepRecord,
    Contribution,
)
from .database import Database
from .join import group_by_predicate
from .kernels import RuleKernel, compile_rule_kernel
from .planner import RulePlan, plan_conjunction, plan_rule

#: A (stratum, local round, rule position) coordinate in the replay grid.
Slot = tuple[int, int, int]
#: Identity of one aggregate group: (rule label, group key).
GroupKey = tuple[str, tuple[Term, ...]]


class IncrementalFallback(Exception):
    """The delta cannot be replayed; the caller should re-chase instead."""


@dataclass(frozen=True)
class UpdateOutcome:
    """What an :func:`incremental_update` (or its fallback) produced.

    ``mode`` is ``"incremental"`` when the replay ran, ``"full"`` when
    the caller fell back to a fresh chase, and ``"noop"`` when the delta
    resolved to nothing against the current EDB.  ``added`` and
    ``retracted`` are the *effective* extensional changes after
    normalization (adding a fact that is already extensional, or
    retracting one that never was, drops out).
    """

    result: ChaseResult
    mode: str
    added: tuple[Fact, ...]
    retracted: tuple[Fact, ...]
    replayed: int = 0
    recomputed: int = 0
    rederived: int = 0
    elapsed_s: float = 0.0


def extensional_facts(result: ChaseResult) -> tuple[Fact, ...]:
    """The EDB of a chase result, in original insertion order."""
    derivation = result.derivation
    return tuple(f for f in result.database.facts() if f not in derivation)


def resolve_delta(
    result: ChaseResult,
    adds: tuple[Fact, ...] | list[Fact],
    retracts: tuple[Fact, ...] | list[Fact],
) -> tuple[tuple[Fact, ...], tuple[Fact, ...], tuple[Fact, ...]]:
    """Normalize a requested delta against the current EDB.

    Returns ``(new_edb, effective_adds, effective_retracts)``.  The new
    EDB preserves the relative order of retained facts and appends the
    effective adds, which makes the replayed instance's insertion
    sequence line up with a fresh session built on the same fact list.
    Retracting a *derived* fact is an error — retract its extensional
    support instead; retracting an absent fact is a no-op, as is adding
    a fact that is already extensional.
    """
    old_edb = extensional_facts(result)
    edb_set = set(old_edb)
    retract_set: set[Fact] = set()
    for fact in retracts:
        if fact in edb_set:
            retract_set.add(fact)
        elif fact in result.derivation:
            raise ValueError(
                f"cannot retract derived fact {fact}; "
                "retract its extensional support instead"
            )
    effective_adds: list[Fact] = []
    seen: set[Fact] = set()
    for fact in adds:
        if not fact.is_fact():
            raise ValueError(f"can only add ground facts, got {fact}")
        if fact in seen or (fact in edb_set and fact not in retract_set):
            continue
        seen.add(fact)
        effective_adds.append(fact)
    new_edb = tuple(f for f in old_edb if f not in retract_set)
    new_edb += tuple(effective_adds)
    retracted = tuple(f for f in old_edb if f in retract_set)
    return new_edb, tuple(effective_adds), retracted


def incremental_update(
    program: Program,
    previous: ChaseResult,
    adds: tuple[Fact, ...] | list[Fact] = (),
    retracts: tuple[Fact, ...] | list[Fact] = (),
    max_rounds: int = 10_000,
) -> UpdateOutcome:
    """Apply an extensional delta to ``previous`` by replay.

    Raises :class:`IncrementalFallback` when the program or the previous
    result is outside the replayable fragment (existential rules, or a
    result without per-stratum round bookkeeping); the caller is
    expected to fall back to a full chase.
    """
    started = time.perf_counter()
    new_edb, added, retracted = resolve_delta(previous, adds, retracts)
    if not added and not retracted:
        return UpdateOutcome(
            result=previous, mode="noop", added=(), retracted=()
        )
    if any(rule.is_existential for rule in program.rules):
        raise IncrementalFallback(
            "existential rules need the restricted-chase satisfaction "
            "check; replay is not defined for them"
        )
    replay = _Replay(program, previous, new_edb, max_rounds)
    with obs.span(
        "chase.update",
        program=program.name,
        adds=len(added),
        retracts=len(retracted),
    ) as span:
        replay.seed(added, retracted)
        result = replay.run()
        span.set(
            replayed=replay.replayed,
            recomputed=replay.recomputed,
            rederived=replay.rederived,
        )
    elapsed = time.perf_counter() - started
    outcome = UpdateOutcome(
        result=result,
        mode="incremental",
        added=added,
        retracted=retracted,
        replayed=replay.replayed,
        recomputed=replay.recomputed,
        rederived=replay.rederived,
        elapsed_s=elapsed,
    )
    flush_update_metrics(outcome)
    return outcome


def flush_update_metrics(outcome: UpdateOutcome) -> None:
    """Publish one update's counters to the ambient metrics registry."""
    obs.incr("incremental.updates")
    obs.incr("chase.delta_adds", len(outcome.added))
    obs.incr("chase.delta_retracts", len(outcome.retracted))
    obs.incr("chase.delta_records_replayed", outcome.replayed)
    obs.incr("chase.delta_records_recomputed", outcome.recomputed)
    obs.incr("incremental.rederived_total", outcome.rederived)
    obs.observe("chase.delta_update_s", outcome.elapsed_s)
    flight = obs.current_flight()
    if flight is not None:
        flight.count("chase_delta_updates")
        flight.count("chase_delta_replayed", outcome.replayed)
        flight.count("chase_delta_recomputed", outcome.recomputed)


class _Replay:
    """One incremental replay over a fresh post-delta database."""

    def __init__(
        self,
        program: Program,
        old: ChaseResult,
        new_edb: tuple[Fact, ...],
        max_rounds: int,
    ):
        self.program = program
        self.old = old
        self.max_rounds = max_rounds

        if program.has_negation:
            self.rule_groups: tuple[tuple[Rule, ...], ...] = (
                stratify(program).strata
            )
        else:
            self.rule_groups = (program.rules,)
        if len(old.stats.rounds_per_stratum) != len(self.rule_groups):
            raise IncrementalFallback(
                "previous result lacks per-stratum round bookkeeping"
            )

        self.slot_of_rule: dict[str, tuple[int, int]] = {}
        for stratum_index, rules in enumerate(self.rule_groups):
            for position, rule in enumerate(rules):
                self.slot_of_rule[rule.label] = (stratum_index, position)

        offsets: list[int] = []
        total = 0
        for rounds in old.stats.rounds_per_stratum:
            offsets.append(total)
            total += rounds

        self.db = Database(new_edb)
        self.result = ChaseResult(program=program, database=self.db)
        self.records = self.result.records
        self.derivation = self.result.derivation
        self.superseded = self.result.superseded
        self.stats = self.result.stats
        self.aggregate_state: dict[GroupKey, Fact] = {}
        self.intensional = program.intensional_predicates()

        # --- static index of the old run ------------------------------
        self.agg_meta: dict[str, tuple] = {}
        self.body_vars: dict[str, frozenset[Variable]] = {}
        #: fact -> the slot where the old run first derived it.
        self.old_slot_of: dict[Fact, Slot] = {}
        #: per stratum: (local round, rule position) -> scheduled records.
        self.pending: list[dict[tuple[int, int], list[ChaseStepRecord]]] = [
            {} for _ in self.rule_groups
        ]
        #: contribution fact -> aggregate groups it fed in the old run.
        self.member_groups: dict[Fact, set[GroupKey]] = {}
        #: per stratum: (slot of the superseding record, superseded fact).
        self.expected_supersede: list[list[tuple[Slot, Fact]]] = [
            [] for _ in self.rule_groups
        ]
        #: fact -> slot at which the old run superseded it.
        self.old_supersede_slot: dict[Fact, Slot] = {}
        #: id(record) -> the group's previous emission when it fired.
        self.expected_prev: dict[int, Fact | None] = {}
        trajectory_prev: dict[GroupKey, Fact] = {}
        for record in old.records:
            located = self.slot_of_rule.get(record.rule.label)
            if located is None:
                raise IncrementalFallback(
                    f"record rule {record.rule.label!r} is not in the program"
                )
            stratum_index, position = located
            local_round = record.round - offsets[stratum_index]
            if local_round < 1:
                raise IncrementalFallback(
                    "inconsistent round numbering in previous result"
                )
            slot: Slot = (stratum_index, local_round, position)
            self.old_slot_of[record.fact] = slot
            self.pending[stratum_index].setdefault(
                (local_round, position), []
            ).append(record)
            if record.contributors:
                _, _, key_vars = self._aggregate_meta(record.rule)
                key = tuple(record.binding[v] for v in key_vars)
                group: GroupKey = (record.rule.label, key)
                for contribution in record.contributors:
                    for fact in contribution.facts:
                        self.member_groups.setdefault(fact, set()).add(group)
                previous = trajectory_prev.get(group)
                self.expected_prev[id(record)] = previous
                if previous is not None:
                    self.expected_supersede[stratum_index].append(
                        (slot, previous)
                    )
                    self.old_supersede_slot[previous] = slot
                trajectory_prev[group] = record.fact

        # --- dynamic replay state -------------------------------------
        #: changed facts in discovery order.  Unlike the fresh engine's
        #: rolling windows this set only grows: a cleanly replayed fact
        #: never re-enters the timeline, so a delta fact must stay
        #: joinable for the whole run — its partner may arrive *on
        #: schedule* at any later turn without itself being delta.
        self.delta_timeline: list[Fact] = []
        self.delta_marked: set[Fact] = set()
        #: predicate -> facts awaiting rederivation (DRed rederive pool).
        self.threatened: dict[str, dict[Fact, None]] = {}
        #: rule label -> group keys whose composition diverged.
        self.dirty_groups: dict[str, set[tuple[Term, ...]]] = {}
        self.kernels: dict[str, RuleKernel] = {}
        self.replayed = 0
        self.recomputed = 0
        self.rederived = 0

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def seed(
        self, added: tuple[Fact, ...], retracted: tuple[Fact, ...]
    ) -> None:
        for fact in added:
            self._mark_delta(fact)
        for fact in retracted:
            self._flag_groups(fact)
            self._threaten(fact)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ChaseResult:
        total_rounds = 0
        for stratum_index, rules in enumerate(self.rule_groups):
            rounds = self._replay_stratum(stratum_index, rules, total_rounds)
            self.stats.rounds_per_stratum.append(rounds)
            total_rounds += rounds
        self.result.rounds = total_rounds
        self.stats.rounds = total_rounds
        self.stats.strata = len(self.rule_groups)
        ChaseEngine()._check_constraints(self.program, self.result)
        self.stats.violations = len(self.result.violations)
        self.stats.symbols = len(self.db.symbols)
        return self.result

    def _replay_stratum(
        self, stratum_index: int, rules: tuple[Rule, ...], rounds_so_far: int
    ) -> int:
        seeds = self._negation_seeds(stratum_index, rules)
        pending = self.pending[stratum_index]
        leftovers: dict[int, list[ChaseStepRecord]] = {
            position: [] for position in range(len(rules))
        }
        expected_here = self.expected_supersede[stratum_index]
        expected_by_slot: dict[Slot, list[Fact]] = {}
        for slot, fact in expected_here:
            expected_by_slot.setdefault(slot, []).append(fact)
        rounds = 0
        for local_round in range(1, self.max_rounds + 1):
            rounds = local_round
            fired_this_round = 0
            global_round = rounds_so_far + local_round
            for position, rule in enumerate(rules):
                exclude = frozenset(self.superseded)
                slot = (stratum_index, local_round, position)
                due = pending.pop((local_round, position), [])
                if leftovers[position]:
                    due = leftovers[position] + due
                    leftovers[position] = []
                if rule.has_aggregate:
                    fired = self._aggregate_turn(
                        rule, slot, global_round, due, exclude,
                        seeds.get(position, ()),
                    )
                else:
                    fired = self._plain_turn(
                        rule, slot, global_round, due, leftovers[position],
                        exclude, seeds.get(position, ()),
                    )
                fired_this_round += fired
                for fact in expected_by_slot.get(slot, ()):
                    if fact in self.db and fact not in self.superseded:
                        self._make_sticky(fact)
            self.stats.delta_sizes.append(fired_this_round)
            if not fired_this_round:
                break
        else:
            raise ChaseError(
                f"incremental chase did not reach fixpoint within "
                f"{self.max_rounds} rounds for program {self.program.name!r}"
            )
        # Supersessions the old run scheduled past the replayed rounds:
        # those facts stay active now, which later strata must see as a
        # change (their windows never covered the extension).
        for _, fact in expected_here:
            if fact in self.db and fact not in self.superseded:
                self._make_sticky(fact)
        return rounds

    # ------------------------------------------------------------------
    # Plain rules
    # ------------------------------------------------------------------
    def _plain_turn(
        self,
        rule: Rule,
        slot: Slot,
        global_round: int,
        due: list[ChaseStepRecord],
        leftover: list[ChaseStepRecord],
        exclude: frozenset[Fact],
        seeds: tuple[MutableSubstitution, ...] | list[MutableSubstitution],
    ) -> int:
        # parents tuple -> (old record to re-fire, canonical binding).
        candidates: dict[
            tuple[Fact, ...],
            tuple[ChaseStepRecord | None, MutableSubstitution | None],
        ] = {}
        for record in due:
            if any(parent not in self.db for parent in record.parents):
                # A parent may still arrive later in the stratum; keep
                # waiting, but the fact needs a derivation from somewhere.
                self._record_missed(record.fact)
                leftover.append(record)
                continue
            if any(parent in exclude for parent in record.parents) or (
                rule.negated
                and not self._negation_holds(rule, record.binding, exclude)
            ):
                # Overdeletion: superseded parents never come back within
                # the stratum and negation is constant here, so this match
                # is dead for good.
                self._record_missed(record.fact)
                continue
            candidates.setdefault(record.parents, (record, None))

        relevant = self._delta_for(rule, exclude)
        if relevant:
            kernel = self._kernel(rule)
            for binding, used in kernel.execute(
                self.db,
                exclude,
                group_by_predicate(relevant),
                stats=self.stats.plans.get(rule.label),
                profile_label=rule.label + "+delta",
            ):
                candidates.setdefault(used, (None, binding))

        pool = self.threatened.get(rule.head.predicate)
        if pool:
            for fact in list(pool):
                if fact in self.db:
                    del pool[fact]
                    continue
                seed = match_atom(rule.head, fact)
                if seed is None:
                    continue
                for _, used in self._bound_matches(
                    rule, rule.conditions, seed, exclude
                ):
                    candidates.setdefault(used, (None, None))

        for seed in seeds:
            for _, used in self._bound_matches(
                rule, rule.conditions, seed, exclude
            ):
                candidates.setdefault(used, (None, None))

        fired = 0
        for used in sorted(candidates, key=self._sequence_key):
            record, binding = candidates[used]
            if record is not None:
                derived = record.fact
            else:
                if binding is None:
                    binding = self._rebuild_binding(rule, used)
                derived = apply_substitution(rule.head, binding)
                if not derived.is_fact():
                    raise EvaluationError(
                        f"rule {rule.label} produced non-ground head {derived}"
                    )
            if self.db.add(derived):
                fired += 1
                if record is not None:
                    self._emit_replayed(record, global_round)
                else:
                    assert binding is not None
                    self._emit(
                        ChaseStepRecord(
                            index=len(self.records),
                            round=global_round,
                            rule=rule,
                            fact=derived,
                            parents=used,
                            binding=dict(binding),
                        )
                    )
                    self.recomputed += 1
                self._after_fire(derived, slot)
            else:
                self.stats.facts_deduplicated += 1
        return fired

    # ------------------------------------------------------------------
    # Aggregate rules
    # ------------------------------------------------------------------
    def _aggregate_turn(
        self,
        rule: Rule,
        slot: Slot,
        global_round: int,
        due: list[ChaseStepRecord],
        exclude: frozenset[Fact],
        seeds: tuple[MutableSubstitution, ...] | list[MutableSubstitution],
    ) -> int:
        aggregate = rule.aggregate
        assert aggregate is not None
        pre, post, key_vars = self._aggregate_meta(rule)
        label = rule.label

        def mark_dirty(binding: MutableSubstitution) -> None:
            key = tuple(binding[v] for v in key_vars)
            self.dirty_groups.setdefault(label, set()).add(key)

        # Discovery: delta matches, rederivation probes and negation
        # seeds only mark groups dirty — the aggregate is set-at-a-time,
        # so dirty groups are recomputed whole below.
        relevant = self._delta_for(rule, exclude)
        if relevant:
            kernel = self._kernel(rule)
            for binding, _ in kernel.execute(
                self.db,
                exclude,
                group_by_predicate(relevant),
                stats=self.stats.plans.get(label),
                profile_label=label + "+delta",
            ):
                mark_dirty(binding)
        pool = self.threatened.get(rule.head.predicate)
        if pool:
            for fact in list(pool):
                if fact in self.db:
                    del pool[fact]
                    continue
                seed = match_atom(rule.head, fact)
                if seed is None:
                    continue
                for _, used in self._bound_matches(rule, pre, seed, exclude):
                    mark_dirty(self._rebuild_binding(rule, used))
        for seed in seeds:
            for _, used in self._bound_matches(rule, pre, seed, exclude):
                mark_dirty(self._rebuild_binding(rule, used))

        dirty = self.dirty_groups.get(label, set())
        # (sort key, old record, group, derived, contributions, value,
        #  group binding); sorted into the fresh engine's emission order
        # (groups appear in first-contribution order).
        emissions: list[tuple] = []
        for record in due:
            key = tuple(record.binding[v] for v in key_vars)
            group: GroupKey = (label, key)
            if key in dirty:
                continue  # recomputation owns this group now
            diverged = any(
                parent not in self.db for parent in record.parents
            ) or any(parent in exclude for parent in record.parents)
            keys: list[tuple[int, ...]] = []
            if not diverged:
                # Fresh enumeration lists a group's contributions in
                # ascending parent-sequence order; upstream rescheduling
                # can reorder facts even when the contribution *set* is
                # unchanged, so a recorded order that is no longer
                # monotone is stale.
                keys = [
                    self._sequence_key(contribution.facts)
                    for contribution in record.contributors
                ]
                diverged = (
                    any(
                        earlier >= later
                        for earlier, later in zip(keys, keys[1:])
                    )
                    or self.aggregate_state.get(group)
                    != self.expected_prev.get(id(record))
                    or (
                        rule.negated
                        and any(
                            not self._negation_holds(
                                rule, contribution.binding, exclude
                            )
                            for contribution in record.contributors
                        )
                    )
                )
            if diverged:
                # The recorded trajectory diverged: a contribution is
                # gone, blocked, reordered, or the group's state
                # drifted.  Hand the group to the recomputation path
                # from this turn on.
                self.dirty_groups.setdefault(label, set()).add(key)
                dirty = self.dirty_groups[label]
                self._record_missed(record.fact)
                continue
            emissions.append(
                (keys[0], record, group, record.fact, None, None, None)
            )

        for key in dirty:
            group = (label, key)
            seed = dict(zip(key_vars, key))
            contributions: list[Contribution] = []
            for _, used in self._bound_matches(rule, pre, seed, exclude):
                rebuilt = self._rebuild_binding(rule, used)
                if tuple(rebuilt[v] for v in key_vars) != key:
                    continue
                value = evaluate_expression(aggregate.argument, rebuilt)
                contributions.append(
                    Contribution(facts=used, value=value, binding=rebuilt)
                )
            if not contributions:
                continue
            value = aggregate.evaluate(c.value for c in contributions)
            group_binding: MutableSubstitution = dict(zip(key_vars, key))
            group_binding[aggregate.result] = Constant(value)
            if not all(condition.holds(group_binding) for condition in post):
                continue
            derived = apply_substitution(rule.head, group_binding)
            if not derived.is_fact():
                raise EvaluationError(
                    f"aggregate rule {rule.label} produced non-ground head "
                    f"{derived}; check that all head variables are grouped"
                )
            if derived == self.aggregate_state.get(group):
                continue
            sort_key = min(
                self._sequence_key(c.facts) for c in contributions
            )
            emissions.append(
                (
                    sort_key,
                    None,
                    group,
                    derived,
                    tuple(contributions),
                    value,
                    group_binding,
                )
            )

        emissions.sort(key=lambda emission: emission[0])
        fired = 0
        for (
            _,
            record,
            group,
            derived,
            contributions,
            value,
            group_binding,
        ) in emissions:
            previous = self.aggregate_state.get(group)
            if self.db.add(derived):
                fired += 1
                if record is not None:
                    self._emit_replayed(record, global_round)
                else:
                    self._emit(
                        ChaseStepRecord(
                            index=len(self.records),
                            round=global_round,
                            rule=rule,
                            fact=derived,
                            parents=ChaseEngine._dedupe_parents(
                                list(contributions)
                            ),
                            binding=group_binding,
                            contributors=contributions,
                            aggregate_value=value,
                        )
                    )
                    self.recomputed += 1
                if previous is not None and previous != derived:
                    self.superseded.add(previous)
                    if self.old_supersede_slot.get(previous) != slot:
                        # Availability shrank relative to the old run;
                        # groups fed by the dying fact must recompute.
                        self._flag_groups(previous)
                self.aggregate_state[group] = derived
                self._after_fire(derived, slot)
            else:
                # The fresh engine neither updates the group state nor
                # supersedes on a deduplicated emission; mirror that and
                # keep recomputing the group until the trajectory syncs.
                self.stats.facts_deduplicated += 1
                self.dirty_groups.setdefault(label, set()).add(group[1])
        return fired

    # ------------------------------------------------------------------
    # Discovery helpers
    # ------------------------------------------------------------------
    def _delta_for(
        self, rule: Rule, exclude: frozenset[Fact]
    ) -> list[Fact]:
        """Changed facts relevant to a rule body this turn.

        The whole accumulated delta is probed every turn: a delta fact's
        join partner may replay *on its old schedule* (and hence never
        be delta itself) at any later turn, so the moment a delta join
        becomes possible is unknowable in advance.  Candidate
        deduplication and instance-level dedup make re-discovery
        harmless, and the delta stays proportional to the update's
        consequences.
        """
        if not self.delta_timeline:
            return []
        predicates = rule.body_predicates()
        return [
            fact
            for fact in self.delta_timeline
            if fact.predicate in predicates
            and fact not in exclude
            and fact in self.db
        ]

    def _kernel(self, rule: Rule) -> RuleKernel:
        """The rule's compiled kernel, built on first use.

        Fresh runs compile every rule at stratum entry; an update only
        pays for the rules its delta actually touches.  Aggregate rules
        get delta variants here even though the fresh planner skips them
        (it re-evaluates aggregates whole): the variants drive dirty-
        group *discovery*, never direct firing.
        """
        kernel = self.kernels.get(rule.label)
        if kernel is None:
            started = time.perf_counter()
            if rule.has_aggregate:
                pre, _, _ = self._aggregate_meta(rule)
                compiled = RulePlan(
                    rule=rule,
                    full=plan_conjunction(rule, self.db, pre),
                    delta_variants=tuple(
                        plan_conjunction(rule, self.db, pre, pivot=index)
                        for index in range(len(rule.body))
                    ),
                )
            else:
                compiled = plan_rule(rule, self.db)
            self.stats.plans_compiled += 1
            entry = self.stats.plans.setdefault(rule.label, {})
            entry.update(compiled.snapshot())
            kernel = compile_rule_kernel(compiled, self.db)
            self.stats.kernel_compile_s += time.perf_counter() - started
            self.stats.kernels_compiled += 1
            self.kernels[rule.label] = kernel
        return kernel

    def _bound_matches(
        self,
        rule: Rule,
        conditions: tuple,
        initial: MutableSubstitution,
        exclude: frozenset[Fact],
    ):
        """Enumerate body homomorphisms extending ``initial``.

        Mirrors the naive engine's conjunction walk (written atom order,
        assignments then conditions then negation at the end) with a
        seed binding for selectivity.  Restricting candidate lists by
        bound constants preserves insertion order, so matches come out
        in the naive enumeration order.  Seed entries that are not body
        variables (assignment targets, the aggregate result) are
        dropped: the walk re-derives them.
        """
        db = self.db
        atoms = rule.body
        negated = rule.negated
        assignments = rule.assignments
        body_vars = self._body_variables(rule)
        seed = {
            variable: term
            for variable, term in initial.items()
            if variable in body_vars
        }

        def negation_holds(binding: MutableSubstitution) -> bool:
            for pattern in negated:
                if next(db.match(pattern, binding, exclude), None) is not None:
                    return False
            return True

        def recurse(index, binding, used):
            if index == len(atoms):
                binding = dict(binding)
                for variable, expression in assignments:
                    binding[variable] = evaluate_assignment(
                        expression, binding
                    )
                if all(condition.holds(binding) for condition in conditions):
                    if negation_holds(binding):
                        yield binding, used
                return
            for matched, extended in db.match(atoms[index], binding, exclude):
                yield from recurse(index + 1, extended, used + (matched,))

        yield from recurse(0, seed, ())

    def _negation_seeds(
        self, stratum_index: int, rules: tuple[Rule, ...]
    ) -> dict[int, list[MutableSubstitution]]:
        """Bindings unlocked by facts that vanished relative to the old run.

        A fact that was active at the end of the old run but is absent
        (or superseded) now may have been the only blocker of a negated
        atom.  Negated predicates are final before the stratum starts,
        so the vanished set is computed once at entry; the seeds are
        probed every turn because the positive parents may arrive at any
        point within the stratum.
        """
        seeds: dict[int, list[MutableSubstitution]] = {}
        negated_rules = [
            (position, rule)
            for position, rule in enumerate(rules)
            if rule.negated
        ]
        if not negated_rules:
            return seeds
        needed = {
            atom.predicate
            for _, rule in negated_rules
            for atom in rule.negated
        }
        vanished: dict[str, list[Fact]] = {}
        for fact in self.old.database.facts():
            if fact.predicate not in needed or fact in self.old.superseded:
                continue
            if fact not in self.db or fact in self.superseded:
                vanished.setdefault(fact.predicate, []).append(fact)
        if not vanished:
            return seeds
        for position, rule in negated_rules:
            for atom in rule.negated:
                for fact in vanished.get(atom.predicate, ()):
                    binding = match_atom(atom, fact)
                    if binding is not None:
                        seeds.setdefault(position, []).append(binding)
        return seeds

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _mark_delta(self, fact: Fact) -> None:
        if fact in self.delta_marked:
            return
        self.delta_marked.add(fact)
        self.delta_timeline.append(fact)
        self._flag_groups(fact)

    def _flag_groups(self, fact: Fact) -> None:
        for label, key in self.member_groups.get(fact, ()):
            self.dirty_groups.setdefault(label, set()).add(key)

    def _make_sticky(self, fact: Fact) -> None:
        """A fact the old run superseded stays active: that extension is
        itself a change — downstream joins must see the fact again."""
        self._mark_delta(fact)

    def _threaten(self, fact: Fact) -> None:
        if fact.predicate in self.intensional:
            self.threatened.setdefault(fact.predicate, {}).setdefault(
                fact, None
            )

    def _record_missed(self, fact: Fact) -> None:
        """An old record did not re-fire at its slot.

        If the fact is not otherwise present it becomes *threatened*
        (DRed overdeletion): rederivation probes look for an alternative
        derivation, and aggregate groups it fed must recompute.
        """
        if fact in self.db:
            return
        self._threaten(fact)
        self._flag_groups(fact)

    def _after_fire(self, derived: Fact, slot: Slot) -> None:
        if self.old_slot_of.get(derived) != slot:
            # New fact, or same fact on a different schedule: downstream
            # rules must re-join it (their old records assumed the old
            # timing).
            self._mark_delta(derived)
        pool = self.threatened.get(derived.predicate)
        if pool is not None and derived in pool:
            del pool[derived]
            self.rederived += 1

    def _emit(self, record: ChaseStepRecord) -> None:
        self.records.append(record)
        self.derivation[record.fact] = record
        self.stats.record_firing(record.rule.label, record.fact.predicate)

    def _emit_replayed(
        self, record: ChaseStepRecord, global_round: int
    ) -> None:
        if record.index != len(self.records) or record.round != global_round:
            record = replace(
                record, index=len(self.records), round=global_round
            )
        self._emit(record)
        self.replayed += 1

    def _negation_holds(
        self, rule: Rule, binding, exclude: frozenset[Fact]
    ) -> bool:
        for pattern in rule.negated:
            if (
                next(self.db.match(pattern, binding, exclude), None)
                is not None
            ):
                return False
        return True

    def _sequence_key(self, facts: tuple[Fact, ...]) -> tuple[int, ...]:
        sequence = self.db.sequence
        return tuple(sequence(fact) for fact in facts)

    def _rebuild_binding(
        self, rule: Rule, used: tuple[Fact, ...]
    ) -> MutableSubstitution:
        """The binding exactly as the naive walk would have built it.

        Variables bind in written body order (first occurrence wins),
        assignments append at the end — reproducing the fresh record's
        mapping byte for byte regardless of which channel found the
        match.
        """
        binding: MutableSubstitution = {}
        for atom, fact in zip(rule.body, used):
            for position, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term not in binding:
                    binding[term] = fact.terms[position]
        for variable, expression in rule.assignments:
            binding[variable] = evaluate_assignment(expression, binding)
        return binding

    def _body_variables(self, rule: Rule) -> frozenset[Variable]:
        cached = self.body_vars.get(rule.label)
        if cached is None:
            cached = frozenset(
                term
                for atom in rule.body
                for term in atom.terms
                if isinstance(term, Variable)
            )
            self.body_vars[rule.label] = cached
        return cached

    def _aggregate_meta(self, rule: Rule):
        meta = self.agg_meta.get(rule.label)
        if meta is None:
            aggregate = rule.aggregate
            assert aggregate is not None
            pre = tuple(
                c
                for c in rule.conditions
                if aggregate.result not in c.variables()
            )
            post = tuple(
                c
                for c in rule.conditions
                if aggregate.result in c.variables()
            )
            key_vars = list(aggregate.group_by)
            for condition in post:
                for variable in sorted(
                    condition.variables(), key=lambda v: v.name
                ):
                    if variable != aggregate.result and variable not in key_vars:
                        key_vars.append(variable)
            meta = (pre, post, tuple(key_vars))
            self.agg_meta[rule.label] = meta
        return meta
