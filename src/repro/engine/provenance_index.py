"""The provenance index: record-once, serve-many chase provenance.

With compilation and the chase both fast, repeated ``explain()`` calls
spend their time re-walking the chase graph: every query re-extracts its
derivation spine fact by fact, re-filters intensional parents, re-walks
the proof DAG for constants, and the why-not prober re-materializes the
active-fact list.  The provenance-graph literature (Lee et al.,
"Efficiently Computing Provenance Graphs for Queries with Negation") and
the Vadalog system paper both arrive at the same shape: *materialize an
indexed provenance structure once per chase, then answer many queries
against it*.

:class:`ProvenanceIndex` is that structure.  Built in a single pass over
the :class:`~repro.engine.chase.ChaseResult` records (parents always
precede children in record order, so depths need no recursion), it
provides O(1) access to

* the deriving step of a fact (``record``) and its precomputed
  *intensional* parents (``intensional_parents`` — the filter the spine
  walk and side-branch absorption used to redo per visit);
* reverse adjacency (``children`` — every step consuming a fact);
* per-predicate derivation buckets (``records_for_predicate``);
* derivation depth (``depth``);
* interned fact keys (``fact_key``) — stable strings shared across
  memoization layers so cache keys compare by identity;

plus per-fact memoized views shared by all queries of a session:
derivation spines (``spine``), proof DAGs (``proof_records``,
``proof_constants``, ``derived_proof_facts``) and the active
(non-superseded) instance (``active_facts``).

The index is a pure acceleration layer: every answer is byte-identical
to the unindexed walks it replaces (``tests/test_explain_serving.py``
asserts parity against :class:`~repro.engine.provenance.ProvenanceTracker`
ground truth).  One index is built per chase session — see
``ReasoningResult.index`` — and rebuilt only when the session re-reasons
over new data.
"""

from __future__ import annotations

import sys
import threading
import time

from .. import obs
from ..datalog.atoms import Fact
from .chase import ChaseResult, ChaseStepRecord
from .provenance import DerivationSpine, SpineStep


class ProvenanceIndex:
    """Indexed provenance over one materialized chase result."""

    def __init__(self, result: ChaseResult):
        started = time.perf_counter()
        with obs.span(
            "explain.index_build", program=result.program.name,
            records=len(result.records),
        ) as span:
            self.result = result
            self._build(result)
            span.set(edges=self._edge_count)
        self.build_seconds = time.perf_counter() - started
        obs.incr("explain.index_build")
        obs.observe("explain.index_build_s", self.build_seconds)

    def _build(self, result: ChaseResult) -> None:
        intensional = result.program.intensional_predicates()
        derivation = result.derivation
        # Adjacency and depth are keyed by the columnar store's global
        # insertion sequence — dense ints instead of fact-tuple hashes —
        # and translated at the public-method boundary.
        sequence = result.database.sequence
        parents: dict[int, tuple[Fact, ...]] = {}
        children: dict[int, list[ChaseStepRecord]] = {}
        buckets: dict[str, list[ChaseStepRecord]] = {}
        depth: dict[int, int] = {}
        edges = 0
        # Records are index-ordered and every parent of a record was
        # materialized before it fired, so one forward pass computes
        # intensional-parent tuples and depths without recursion.
        for record in result.records:
            intensional_parents = tuple(
                parent for parent in record.parents
                if parent.predicate in intensional and parent in derivation
            )
            parents[record.index] = intensional_parents
            if intensional_parents:
                depth[sequence(record.fact)] = 1 + max(
                    depth[sequence(parent)]
                    for parent in intensional_parents
                )
            else:
                depth[sequence(record.fact)] = 1
            for parent in record.parents:
                children.setdefault(sequence(parent), []).append(record)
                edges += 1
            buckets.setdefault(record.fact.predicate, []).append(record)
        self._sequence = sequence
        self._derivation = derivation
        self._parents = parents
        self._children = children
        self._buckets = buckets
        self._depth = depth
        self._edge_count = edges
        # Memoized per-fact views, shared by every query of the session.
        self._keys: dict[Fact, str] = {}
        self._spines: dict[Fact, DerivationSpine] = {}
        self._proofs: dict[Fact, tuple[ChaseStepRecord, ...]] = {}
        self._proof_constants: dict[Fact, tuple[str, ...]] = {}
        self._proof_facts: dict[Fact, frozenset[Fact]] = {}
        self._active: tuple[Fact, ...] | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def rebind(self, new_result: ChaseResult) -> dict:
        """Re-point the index at an incrementally updated chase result.

        Adjacency, buckets and depths are rebuilt in one linear pass
        (they are the cheap part of the index), while the expensive
        memoized views — spines, proof DAGs, proof constants, interned
        keys — are retained for every fact whose derivation subtree is
        untouched by the update.  A fact is *touched* when its deriving
        record changed content or numbering, when it was added or
        removed, or when any ancestor was; the touched set is the
        forward closure of the changed records over the new reverse
        adjacency.  Returns invalidation figures for stats documents.
        """
        started = time.perf_counter()
        with obs.span(
            "explain.index_rebind", program=new_result.program.name,
            records=len(new_result.records),
        ) as span:
            old_derivation = self._derivation
            old_keys = self._keys
            old_spines = self._spines
            old_proofs = self._proofs
            old_proof_constants = self._proof_constants
            old_proof_facts = self._proof_facts
            self.result = new_result
            self._build(new_result)
            changed = [
                fact
                for fact, record in self._derivation.items()
                if old_derivation.get(fact) != record
            ]
            touched = set(changed)
            touched.update(
                fact for fact in old_derivation
                if fact not in self._derivation
            )
            frontier = list(changed)
            while frontier:
                for record in self.children(frontier.pop()):
                    child = record.fact
                    if child not in touched:
                        touched.add(child)
                        frontier.append(child)
            live = self._derivation
            self._keys = {
                fact: key for fact, key in old_keys.items()
                if fact not in touched
            }
            self._spines = {
                fact: spine for fact, spine in old_spines.items()
                if fact in live and fact not in touched
            }
            self._proofs = {
                fact: proof for fact, proof in old_proofs.items()
                if fact in live and fact not in touched
            }
            self._proof_constants = {
                fact: constants
                for fact, constants in old_proof_constants.items()
                if fact in live and fact not in touched
            }
            self._proof_facts = {
                fact: facts for fact, facts in old_proof_facts.items()
                if fact in live and fact not in touched
            }
            figures = {
                "touched": len(touched),
                "spines_retained": len(self._spines),
                "proofs_retained": len(self._proofs),
            }
            span.set(edges=self._edge_count, **figures)
        self.build_seconds = time.perf_counter() - started
        obs.incr("explain.index_rebind")
        obs.observe("explain.index_rebind_s", self.build_seconds)
        obs.incr("explain.index_touched", len(touched))
        return figures

    # ------------------------------------------------------------------
    # O(1) lookups
    # ------------------------------------------------------------------
    def is_derived(self, current: Fact) -> bool:
        return current in self._derivation

    def record(self, current: Fact) -> ChaseStepRecord:
        """The chase step deriving ``current``; raises for EDB facts."""
        record = self._derivation.get(current)
        if record is None:
            raise KeyError(f"{current} was not derived by the chase")
        return record

    def intensional_parents(self, record: ChaseStepRecord) -> tuple[Fact, ...]:
        """The record's parents that are themselves derived (precomputed)."""
        return self._parents.get(record.index, ())

    def children(self, current: Fact) -> tuple[ChaseStepRecord, ...]:
        """Every chase step that consumed ``current`` (reverse adjacency)."""
        try:
            seq = self._sequence(current)
        except KeyError:
            return ()
        return tuple(self._children.get(seq, ()))

    def records_for_predicate(self, predicate: str) -> tuple[ChaseStepRecord, ...]:
        """All derivation steps producing ``predicate`` facts, in order."""
        return tuple(self._buckets.get(predicate, ()))

    def depth(self, current: Fact) -> int:
        """Length of the longest derivation chain below ``current``
        (0 for extensional facts)."""
        try:
            seq = self._sequence(current)
        except KeyError:
            return 0
        return self._depth.get(seq, 0)

    def fact_key(self, current: Fact) -> str:
        """An interned string key for ``current``.

        Memoization layers key cache entries by these so equal facts of
        the same session share one string object and key comparisons
        short-circuit on identity.
        """
        key = self._keys.get(current)
        if key is None:
            key = sys.intern(str(current))
            with self._lock:
                key = self._keys.setdefault(current, key)
        return key

    def active_facts(self) -> tuple[Fact, ...]:
        """The non-superseded instance, materialized once per session
        (the list the why-not prober rebuilt on every query)."""
        active = self._active
        if active is None:
            superseded = self.result.superseded
            active = tuple(
                fact for fact in self.result.database.facts()
                if fact not in superseded
            )
            self._active = active
        return active

    # ------------------------------------------------------------------
    # Memoized derivation spines
    # ------------------------------------------------------------------
    def spine(self, target: Fact) -> DerivationSpine:
        """The root-to-leaf derivation path for ``target``, memoized.

        Identical to :meth:`ProvenanceTracker.spine` (same deepest-parent
        tie-breaks), but each fact's spine is extracted once per session.
        """
        cached = self._spines.get(target)
        if cached is not None:
            return cached
        if target not in self._derivation:
            raise KeyError(f"{target} was not derived by the chase")
        reversed_steps: list[SpineStep] = []
        current: Fact | None = target
        while current is not None:
            record = self._derivation[current]
            parents = self._parents.get(record.index, ())
            if parents:
                depth = self._depth
                sequence = self._sequence
                spine_parent = max(
                    parents,
                    key=lambda p: (depth[sequence(p)], -record.parents.index(p)),
                )
                side = tuple(
                    self._derivation[p].rule_label
                    for p in parents if p != spine_parent
                )
            else:
                spine_parent = None
                side = ()
            reversed_steps.append(
                SpineStep(
                    record=record,
                    spine_parent=spine_parent,
                    side_rules=side,
                    multi_contributor=record.multi_contributor,
                )
            )
            current = spine_parent
        spine = DerivationSpine(
            target=target, steps=tuple(reversed(reversed_steps))
        )
        with self._lock:
            return self._spines.setdefault(target, spine)

    # ------------------------------------------------------------------
    # Memoized proof DAGs
    # ------------------------------------------------------------------
    def proof_records(self, target: Fact) -> tuple[ChaseStepRecord, ...]:
        """All chase steps in the proof of ``target``, in chase order."""
        cached = self._proofs.get(target)
        if cached is not None:
            return cached
        collected: dict[int, ChaseStepRecord] = {}
        frontier = [target]
        while frontier:
            current = frontier.pop()
            record = self._derivation.get(current)
            if record is None or record.index in collected:
                continue
            collected[record.index] = record
            frontier.extend(record.parents)
        proof = tuple(collected[index] for index in sorted(collected))
        with self._lock:
            return self._proofs.setdefault(target, proof)

    def proof_size(self, target: Fact) -> int:
        return len(self.proof_records(target))

    def proof_constants(self, target: Fact) -> tuple[str, ...]:
        """The distinct constants in the proof of ``target`` (the ground
        truth of the completeness checks), memoized per fact."""
        cached = self._proof_constants.get(target)
        if cached is not None:
            return cached
        seen: dict[str, None] = {}
        for record in self.proof_records(target):
            for parent in record.parents:
                for constant in parent.constants():
                    seen.setdefault(str(constant), None)
            for constant in record.fact.constants():
                seen.setdefault(str(constant), None)
        constants = tuple(seen)
        with self._lock:
            return self._proof_constants.setdefault(target, constants)

    def derived_proof_facts(self, target: Fact) -> frozenset[Fact]:
        """The *derived* facts in the proof of ``target`` (the subtree a
        memoized sub-explanation covers — the overlap domain of the
        cross-query memoization keys)."""
        cached = self._proof_facts.get(target)
        if cached is not None:
            return cached
        facts = frozenset(
            record.fact for record in self.proof_records(target)
        )
        with self._lock:
            return self._proof_facts.setdefault(target, facts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Size and build-cost figures for stats documents and tests."""
        with self._lock:
            return {
                "records": len(self.result.records),
                "edges": self._edge_count,
                "predicates": len(self._buckets),
                "build_s": self.build_seconds,
                "spines_memoized": len(self._spines),
                "proofs_memoized": len(self._proofs),
                "interned_keys": len(self._keys),
            }

    def __len__(self) -> int:
        return len(self.result.records)
