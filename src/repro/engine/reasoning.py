"""Reasoning tasks: the user-facing query API over program + database.

A reasoning task is a pair Q = (Σ, Ans) evaluated over a database D (paper,
Section 3).  :func:`reason` runs the chase and returns a
:class:`ReasoningResult` bundling the materialized instance with its chase
graph and provenance tracker — everything the explanation pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from ..datalog.atoms import Atom, Fact
from ..datalog.program import Program
from ..datalog.unify import match_atom
from .chase import ChaseResult, chase
from .chase_graph import ChaseGraph
from .database import Database
from .provenance import DerivationSpine, ProvenanceTracker
from .provenance_index import ProvenanceIndex


@dataclass
class ReasoningResult:
    """A materialized reasoning task with provenance attached."""

    program: Program
    chase_result: ChaseResult

    # ------------------------------------------------------------------
    # Derived views (built lazily, cached)
    # ------------------------------------------------------------------
    @cached_property
    def graph(self) -> ChaseGraph:
        return ChaseGraph(self.chase_result)

    @cached_property
    def index(self) -> ProvenanceIndex:
        """The indexed provenance structure, built once per result.

        Everything the explanation stack asks repeatedly — derivation
        records, intensional parents, depths, spines, proof DAGs, the
        active instance — is answered from this index; a re-reasoned
        session gets a fresh result and therefore a fresh index.
        """
        return ProvenanceIndex(self.chase_result)

    @cached_property
    def provenance(self) -> ProvenanceTracker:
        return ProvenanceTracker(self.chase_result, index=self.index)

    @property
    def database(self) -> Database:
        return self.chase_result.database

    def apply_update(self, new_chase_result: ChaseResult) -> None:
        """Re-point this result at an incrementally updated chase.

        The chase graph and provenance tracker are thin wrappers and are
        simply dropped for lazy rebuild; the provenance index — the
        expensive view — is maintained in place via
        :meth:`ProvenanceIndex.rebind` so memoized spines and proof DAGs
        for untouched subtrees survive the update.
        """
        self.chase_result = new_chase_result
        self.__dict__.pop("graph", None)
        self.__dict__.pop("provenance", None)
        index = self.__dict__.get("index")
        if index is not None:
            index.rebind(new_chase_result)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def answers(self, predicate: str | None = None) -> tuple[Fact, ...]:
        """The facts of the goal predicate (or of ``predicate`` if given),
        excluding superseded partial aggregates."""
        target = predicate or self.program.goal
        if target is None:
            raise ValueError("no goal predicate set and none supplied")
        return self.chase_result.facts(target)

    def query(self, pattern: Atom) -> tuple[Fact, ...]:
        """All active facts matching a (possibly non-ground) atom pattern."""
        matches = []
        for candidate in self.chase_result.facts(pattern.predicate):
            if match_atom(pattern, candidate) is not None:
                matches.append(candidate)
        return tuple(matches)

    def derived(self) -> tuple[Fact, ...]:
        """Every fact produced by a chase step, in derivation order."""
        return self.chase_result.derived_facts()

    @property
    def violations(self):
        """Negative-constraint violations found in the final instance."""
        return tuple(self.chase_result.violations)

    def spine(self, target: Fact) -> DerivationSpine:
        """Root-to-leaf derivation path for ``target`` (see provenance)."""
        return self.provenance.spine(target)

    def proof_size(self, target: Fact) -> int:
        return self.provenance.proof_size(target)

    def describe(self) -> str:
        derived = self.derived()
        lines = [
            f"Reasoning task over {self.program.name!r}: "
            f"{len(derived)} derived facts in {self.chase_result.rounds} rounds"
        ]
        lines.extend(f"  {fact}" for fact in derived)
        return "\n".join(lines)


def reason(
    program: Program,
    database: Database | Iterable[Fact],
    max_rounds: int = 10_000,
    strategy: str = "naive",
) -> ReasoningResult:
    """Run the reasoning task (Σ, goal) over ``database``.

    Accepts either a :class:`Database` or any iterable of facts.
    ``strategy`` selects naive, semi-naive or planned (compiled join
    plans) chase evaluation — same result and provenance, different join
    work; see :class:`~repro.engine.chase.ChaseEngine`.
    """
    if not isinstance(database, Database):
        database = Database(database)
    result = chase(program, database, max_rounds=max_rounds, strategy=strategy)
    return ReasoningResult(program=program, chase_result=result)
