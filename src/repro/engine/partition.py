"""EDB partitioning and the shard-parallel chase merge.

Ownership graphs decompose into corporate groups: two facts that share no
entity constant can never feed the same rule application (rule bodies are
joined through shared variables over entity identifiers).  This module
exploits that structure for the ``parallel`` chase strategy:

1. :func:`analyze_program` decides whether a program is **shard-safe** —
   whether running the chase independently per weakly-connected component
   of the EDB provably yields the same facts, records and provenance as a
   single global run.  The analysis combines the rule dependency graph
   (predicate positions are typed by propagating EDB value types through
   rule heads to fixpoint) with a cross-shard probe over the concrete
   instance: a position that ever holds a numeric value is *data* and is
   excluded from connectivity, everything else is an *entity* position.
2. :func:`partition_database` splits the EDB into weakly-connected
   components over shared entity constants (union-find), ordered by the
   minimum interned symbol id of each component; facts mentioning no
   entity constant are replicated into every shard (they may join with
   any component).
3. :func:`merge_shard_results` reassembles per-shard planned-chase runs
   into one :class:`~repro.engine.chase.ChaseResult` that is
   byte-identical to a global ``planned`` run: shard records are
   re-rounded against the global round timeline (a stratum's global round
   count is the max over shards), interleaved within each (round, rule)
   slot by the interned insertion sequence of their parent facts (the
   naive enumeration order), and replayed into a fresh database built
   from the original EDB so insertion sequences and the symbol table come
   out exactly as the single-shard run would have produced them.

Programs outside the safe fragment (existential rules, heads without an
entity variable, bodies not connected through entity variables,
unanchored negation, aggregates grouped only by data values, joins that
mix entity and tag sorts) are reported as non-shardable; the engine
falls back to single-shard ``planned`` and bumps the
``engine.parallel_fallback`` counter rather than risk a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..datalog.atoms import Atom, Fact
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.stratification import stratify
from ..datalog.terms import Constant, Term, Variable
from .chase import ChaseResult, ChaseStepRecord
from .database import Database

#: Position key: (predicate, argument index).
Position = tuple[str, int]


def _is_data_value(value: object) -> bool:
    """Whether a constant value is *data* (numbers, booleans) rather than
    an entity identifier.  Data values may coincide across components by
    accident (two unrelated loans of 0.5) and therefore never drive
    connectivity."""
    return isinstance(value, (int, float, bool))


def _is_entity_constant(term: Term) -> bool:
    return isinstance(term, Constant) and not _is_data_value(term.value)


@dataclass(frozen=True)
class PartitionAnalysis:
    """Verdict of the shard-safety analysis for (program, database).

    Positions come in three sorts.  **Entity** positions hold component
    identifiers — the values union-find groups on.  **Data** positions
    hold numbers/booleans (loan amounts, shares); equal values across
    components are coincidences, never links.  **Tag** positions hold
    constants a rule head introduced (``Risk(c, e, "long")``) or the
    non-numeric residue of mixed EDB columns — shared across every
    component by construction, so they also must not drive connectivity.
    ``non_entity_positions`` is data ∪ tag.
    """

    shardable: bool
    #: Human-readable reasons the program is not shardable (empty when it is).
    reasons: tuple[str, ...] = ()
    #: Positions that may hold data (numeric/aggregate) values.
    data_positions: frozenset[Position] = frozenset()
    #: Positions that may hold head-introduced tag constants.
    tag_positions: frozenset[Position] = frozenset()

    @property
    def non_entity_positions(self) -> frozenset[Position]:
        return self.data_positions | self.tag_positions

    def entity_variables(self, rule: Rule) -> frozenset[Variable]:
        """Variables of ``rule`` bound at an entity position of the
        positive body (the variables that anchor a match to a component).
        """
        flagged = self.non_entity_positions
        found = set()
        for atom in rule.body:
            for index, term in enumerate(atom.terms):
                if (
                    isinstance(term, Variable)
                    and (atom.predicate, index) not in flagged
                ):
                    found.add(term)
        return frozenset(found)


def _seed_position_flags(
    database: Database,
) -> tuple[set[Position], set[Position]]:
    """The cross-shard probe: positions typed from the live instance.

    Returns ``(data, tag)`` seed sets.  A position is data as soon as one
    fact holds a numeric/boolean value there; a *mixed* column (numeric
    and non-numeric values) is additionally tag-flagged — its non-numeric
    values are not grouped by union-find, so they behave like tags.
    """
    holds_number: set[Position] = set()
    holds_other: set[Position] = set()
    for current in database.facts():
        for index, term in enumerate(current.terms):
            position = (current.predicate, index)
            if isinstance(term, Constant) and _is_data_value(term.value):
                holds_number.add(position)
            else:
                holds_other.add(position)
    return set(holds_number), holds_number & holds_other


def _propagate_position_flags(
    program: Program, data: set[Position], tag: set[Position]
) -> tuple[frozenset[Position], frozenset[Position]]:
    """Propagate position sorts through rule heads to fixpoint.

    A head position inherits the sort of the term it carries: numeric
    constants, aggregate results and assignment targets are data;
    non-numeric constants are tags; a variable is an entity iff it has at
    least one entity-sort occurrence in the positive body (its binding is
    then a component-local value), otherwise it forwards the flags of the
    positions it reads from.  Flags only grow, so the loop terminates.
    """
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            computed = {
                variable for variable, _expression in rule.assignments
            }
            if rule.aggregate is not None:
                computed.add(rule.aggregate.result)
            occurrences: dict[Variable, list[Position]] = {}
            for atom in rule.body:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        occurrences.setdefault(term, []).append(
                            (atom.predicate, index)
                        )
            for index, term in enumerate(rule.head.terms):
                position = (rule.head.predicate, index)
                if isinstance(term, Constant):
                    flag_data = _is_data_value(term.value)
                    flag_tag = not flag_data
                elif isinstance(term, Variable):
                    if term in computed:
                        flag_data, flag_tag = True, False
                    else:
                        sources = occurrences.get(term, [])
                        if any(
                            p not in data and p not in tag for p in sources
                        ):
                            # One entity-sort occurrence pins the binding
                            # to a component-local value.
                            flag_data = flag_tag = False
                        else:
                            flag_data = any(p in data for p in sources)
                            flag_tag = any(p in tag for p in sources)
                            if not sources:
                                flag_tag = True
                else:  # labelled nulls never appear in safe heads
                    flag_data, flag_tag = False, True
                if flag_data and position not in data:
                    data.add(position)
                    changed = True
                if flag_tag and position not in tag:
                    tag.add(position)
                    changed = True
    return frozenset(data), frozenset(tag)


def _atom_entity_variables(
    atom: Atom, flagged: frozenset[Position]
) -> frozenset[Variable]:
    return frozenset(
        term
        for index, term in enumerate(atom.terms)
        if isinstance(term, Variable)
        and (atom.predicate, index) not in flagged
    )


def _atom_floats(atom: Atom, flagged: frozenset[Position]) -> bool:
    """Whether ``atom`` is exempt from connectivity: no entity variable
    and no entity constant at an entity position, so (in a program that
    passed the other checks) it can only match replicated facts — or
    nothing at all."""
    for index, term in enumerate(atom.terms):
        if (atom.predicate, index) in flagged:
            continue
        if isinstance(term, Variable):
            return False
        if _is_entity_constant(term):
            return False
    return True


def _check_rule(
    rule: Rule,
    data: frozenset[Position],
    tag: frozenset[Position],
    reasons: list[str],
) -> None:
    """Append every way ``rule`` breaks shard-safety to ``reasons``."""
    flagged = data | tag
    if rule.is_existential:
        reasons.append(
            f"rule {rule.label}: existential heads need globally ordered "
            "null labels"
        )
        return

    entity_vars = {
        term
        for atom in rule.body
        for term in _atom_entity_variables(atom, flagged)
    }

    # Sort-mixing hazards.  An entity-bound variable probing a tag
    # position (or a non-numeric constant sitting at a flagged position)
    # could match a head-introduced tag that collides with an entity
    # name — the matched fact's component is then unknowable statically.
    # (Entity variables at pure-data positions are fine: entity values
    # are non-numeric, so such a join is empty everywhere.)
    for atom in (*rule.body, *rule.negated):
        for index, term in enumerate(atom.terms):
            position = (atom.predicate, index)
            if (
                isinstance(term, Variable)
                and term in entity_vars
                and position in tag
            ):
                reasons.append(
                    f"rule {rule.label}: entity variable {term} also reads "
                    f"the tag position {atom.predicate}[{index}] "
                    "(value-collision risk across shards)"
                )
                return
            if (
                _is_entity_constant(term)
                and position in flagged
            ):
                reasons.append(
                    f"rule {rule.label}: constant {term} probes the "
                    f"non-entity position {atom.predicate}[{index}]; the "
                    "matched fact's component is not derivable"
                )
                return

    # Head: at least one entity variable — two shards can then never
    # derive the same fact, which the merge relies on.  Tag constants in
    # the head are fine; they were flagged by the propagation above and
    # consumers are vetted against them.
    head_entities = {
        term
        for index, term in enumerate(rule.head.terms)
        if isinstance(term, Variable)
        and (rule.head.predicate, index) not in flagged
        and term in entity_vars
    }
    if not head_entities:
        reasons.append(
            f"rule {rule.label}: head carries no entity variable; "
            "identical facts could be derived in two shards"
        )
        return

    # Body: atoms carrying entity variables must form one connected
    # component through shared entity variables (floating atoms match
    # only replicated facts).  An atom anchored solely by an entity
    # constant cannot be tied to the rest of the match.
    anchored: list[frozenset[Variable]] = []
    for atom in rule.body:
        atom_entities = _atom_entity_variables(atom, flagged)
        if atom_entities:
            anchored.append(atom_entities)
        elif not _atom_floats(atom, flagged):
            reasons.append(
                f"rule {rule.label}: body atom {atom} is anchored only by "
                "an entity constant"
            )
            return
    if anchored:
        reached = set(anchored[0])
        frontier = True
        remaining = list(anchored[1:])
        while frontier and remaining:
            frontier = False
            for atom_entities in list(remaining):
                if atom_entities & reached:
                    reached.update(atom_entities)
                    remaining.remove(atom_entities)
                    frontier = True
        if remaining:
            reasons.append(
                f"rule {rule.label}: body is not connected through entity "
                "variables (a match could span two components)"
            )
            return

    # Negation: each negated atom must be anchored to the match's
    # component by a positive entity variable (or float) — otherwise the
    # shard-local absence check is not the global one.
    for negated in rule.negated:
        if _atom_floats(negated, flagged):
            continue
        if not (_atom_entity_variables(negated, flagged) & entity_vars):
            if any(_is_entity_constant(term) for term in negated.terms):
                reasons.append(
                    f"rule {rule.label}: negated atom {negated} is anchored "
                    "only by an entity constant"
                )
            else:
                reasons.append(
                    f"rule {rule.label}: negated atom {negated} shares no "
                    "entity variable with the positive body"
                )
            return

    # Aggregation: the group key must include an entity variable, or one
    # global group would span every shard.  The key is the group-by set
    # plus any body variable a post-aggregation condition fixes —
    # mirroring the engine's own key construction.
    if rule.aggregate is not None:
        key_vars = list(rule.aggregate.group_by)
        for condition in rule.conditions:
            variables = condition.variables()
            if rule.aggregate.result not in variables:
                continue
            for variable in sorted(variables, key=lambda v: v.name):
                if variable != rule.aggregate.result and variable not in key_vars:
                    key_vars.append(variable)
        if not any(variable in entity_vars for variable in key_vars):
            reasons.append(
                f"rule {rule.label}: aggregate group key has no entity "
                "variable (one group would span all shards)"
            )


def analyze_program(
    program: Program, database: Database
) -> PartitionAnalysis:
    """Decide shard-safety of ``program`` over ``database``.

    Pure analysis — no chase work; cost is linear in |EDB| + |rules|
    times the typing fixpoint (bounded by the number of positions).
    """
    seed_data, seed_tag = _seed_position_flags(database)
    data, tag = _propagate_position_flags(program, seed_data, seed_tag)
    reasons: list[str] = []
    for rule in program.rules:
        _check_rule(rule, data, tag, reasons)
    return PartitionAnalysis(
        shardable=not reasons,
        reasons=tuple(reasons),
        data_positions=data,
        tag_positions=tag,
    )


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Partition:
    """The EDB split into shards (component order is deterministic:
    ascending minimum interned symbol id)."""

    #: Per-shard fact tuples, each preserving the original EDB order;
    #: replicated (entity-free) facts appear in every shard.
    shards: tuple[tuple[Fact, ...], ...]
    #: Facts replicated into every shard (no entity constants).
    replicated: tuple[Fact, ...]

    @property
    def count(self) -> int:
        return len(self.shards)


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self.parent.setdefault(item, item)
        while parent != item:
            grandparent = self.parent[parent]
            self.parent[item] = grandparent
            item, parent = parent, grandparent
        return item

    def union(self, first: int, second: int) -> None:
        root_first, root_second = self.find(first), self.find(second)
        if root_first != root_second:
            # Deterministic representative: the smaller interned id wins,
            # which is also each component's ordering key.
            if root_second < root_first:
                root_first, root_second = root_second, root_first
            self.parent[root_second] = root_first


def partition_database(
    database: Database, analysis: PartitionAnalysis | None = None
) -> Partition:
    """Split the EDB into weakly-connected components over shared entity
    constants.  ``analysis`` refines entity detection with the typed
    positions (a numeric-looking value at an entity position stays an
    entity); without it, any non-data constant is an entity.
    """
    flagged = (
        analysis.non_entity_positions if analysis is not None else frozenset()
    )
    symbols = database.symbols
    union = _UnionFind()
    fact_entities: list[tuple[Fact, list[int]]] = []
    for current in database.facts():
        ids: list[int] = []
        for index, term in enumerate(current.terms):
            if (current.predicate, index) in flagged:
                continue
            if _is_entity_constant(term):
                symbol_id = symbols.lookup(term)
                if symbol_id is not None:
                    ids.append(symbol_id)
        fact_entities.append((current, ids))
        for symbol_id in ids[1:]:
            union.union(ids[0], symbol_id)
        if ids:
            union.find(ids[0])

    components: dict[int, list[Fact]] = {}
    replicated: list[Fact] = []
    for current, ids in fact_entities:
        if not ids:
            replicated.append(current)
            continue
        components.setdefault(union.find(ids[0]), []).append(current)

    ordered_roots = sorted(components)
    shards = []
    for root in ordered_roots:
        if replicated:
            # Replicated facts keep their original interleaving with the
            # component's own facts so shard-local insertion order stays a
            # subsequence of the global order.
            members = set(map(id, components[root]))
            merged = [
                current for current, ids in fact_entities
                if not ids or id(current) in members
            ]
            shards.append(tuple(merged))
        else:
            shards.append(tuple(components[root]))
    if not shards and replicated:
        shards = [tuple(replicated)]
    return Partition(shards=tuple(shards), replicated=tuple(replicated))


# ----------------------------------------------------------------------
# Per-shard execution payloads
# ----------------------------------------------------------------------

@dataclass
class ShardOutcome:
    """The picklable residue of one shard's planned chase run."""

    records: list[ChaseStepRecord]
    rounds_per_stratum: list[int]
    delta_sizes: list[int]
    superseded: tuple[Fact, ...]
    facts_deduplicated: int
    plans: dict[str, dict]
    plans_compiled: int
    kernels_compiled: int
    kernel_compile_s: float


def run_shard(
    program: Program, facts: tuple[Fact, ...], max_rounds: int
) -> ShardOutcome:
    """Chase one shard with the planned strategy and trim the result to
    its picklable merge inputs.  Constraints are stripped — violations
    are enumerated once, on the merged instance, to keep their global
    order."""
    from .chase import ChaseEngine

    shard_program = (
        replace(program, constraints=(), schema={})
        if program.constraints else program
    )
    result = ChaseEngine(max_rounds=max_rounds, strategy="planned").run(
        shard_program, Database(facts)
    )
    stats = result.stats
    return ShardOutcome(
        records=list(result.records),
        rounds_per_stratum=list(stats.rounds_per_stratum),
        delta_sizes=list(stats.delta_sizes),
        superseded=tuple(result.superseded),
        facts_deduplicated=stats.facts_deduplicated,
        plans={label: dict(entry) for label, entry in stats.plans.items()},
        plans_compiled=stats.plans_compiled,
        kernels_compiled=stats.kernels_compiled,
        kernel_compile_s=stats.kernel_compile_s,
    )


def _run_shard_payload(
    payload: tuple[Program, tuple[Fact, ...], int]
) -> ShardOutcome:
    """Module-level process-pool entry point (spawn-picklable)."""
    program, facts, max_rounds = payload
    return run_shard(program, facts, max_rounds)


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Slot:
    """Sort identity of one shard record in the global timeline."""

    stratum: int
    round_in_stratum: int
    rule_position: int
    shard: int
    local_index: int
    record: ChaseStepRecord = field(compare=False)


def _rule_positions(program: Program) -> dict[str, tuple[int, int]]:
    """label -> (stratum index, position within the stratum's rule group),
    the order rules execute in within a round."""
    if program.has_negation:
        groups = stratify(program).strata
    else:
        groups = (program.rules,)
    positions: dict[str, tuple[int, int]] = {}
    for stratum_index, rules in enumerate(groups):
        for rule_index, rule in enumerate(rules):
            positions[rule.label] = (stratum_index, rule_index)
    return positions


def _annotate(
    outcome: ShardOutcome,
    shard: int,
    positions: dict[str, tuple[int, int]],
) -> list[_Slot]:
    offsets = [0]
    for rounds in outcome.rounds_per_stratum:
        offsets.append(offsets[-1] + rounds)
    slots = []
    for local_index, record in enumerate(outcome.records):
        stratum, _rule_index = positions[record.rule.label]
        slots.append(
            _Slot(
                stratum=stratum,
                round_in_stratum=record.round - offsets[stratum],
                rule_position=positions[record.rule.label][1],
                shard=shard,
                local_index=local_index,
                record=record,
            )
        )
    return slots


def merge_shard_results(
    program: Program,
    database: Database,
    outcomes: list[ShardOutcome],
) -> ChaseResult:
    """Reassemble per-shard runs into one global-order ChaseResult.

    Within one (stratum, round, rule) slot the global planned/naive run
    enumerates matches in lexicographic order of the matched body facts'
    insertion sequences; shard-local record order is a subsequence of
    that, so interleaving shards by each record's parent-sequence tuple
    (contributors' first match for aggregates — the group-appearance
    order) reproduces the global record order exactly.  Replaying the
    interleaved records into a copy of the original EDB then reproduces
    the global insertion sequences and symbol interning order, which is
    what downstream provenance and ``repro-db/1`` snapshots key on.
    """
    working = database.copy()
    result = ChaseResult(program=program, database=working)
    stats = result.stats
    positions = _rule_positions(program)

    strata_counts = {len(o.rounds_per_stratum) for o in outcomes}
    assert len(strata_counts) == 1, "shards must share the stratum layout"
    num_strata = strata_counts.pop()
    global_rounds = [
        max(o.rounds_per_stratum[t] for o in outcomes)
        for t in range(num_strata)
    ]
    global_offsets = [0]
    for rounds in global_rounds:
        global_offsets.append(global_offsets[-1] + rounds)

    slots: list[_Slot] = []
    for shard, outcome in enumerate(outcomes):
        slots.extend(_annotate(outcome, shard, positions))

    # Group records by execution slot, then replay slots in order; within
    # a slot, order by the parents' global insertion sequences (computed
    # against the instance as replayed so far — parents always precede
    # their record).
    grouped: dict[tuple[int, int, int], list[_Slot]] = {}
    for slot in slots:
        grouped.setdefault(
            (slot.stratum, slot.round_in_stratum, slot.rule_position), []
        ).append(slot)

    rules_by_label = {rule.label: rule for rule in program.rules}

    def match_key(slot: _Slot) -> tuple[int, ...]:
        record = slot.record
        parents = (
            record.contributors[0].facts
            if record.contributors else record.parents
        )
        return tuple(working.sequence(parent) for parent in parents)

    for key in sorted(grouped):
        stratum, round_in_stratum, _rule_position = key
        group = grouped[key]
        group.sort(key=lambda slot: (match_key(slot), slot.shard))
        global_round = global_offsets[stratum] + round_in_stratum
        for slot in group:
            record = slot.record
            added = working.add(record.fact)
            assert added, (
                f"shard merge re-derived {record.fact}; "
                "the program is not shard-safe"
            )
            merged = replace(
                record,
                index=len(result.records),
                round=global_round,
                rule=rules_by_label[record.rule.label],
            )
            result.records.append(merged)
            result.derivation[merged.fact] = merged
            stats.record_firing(merged.rule.label, merged.fact.predicate)

    for outcome in outcomes:
        result.superseded.update(outcome.superseded)

    # Stats: global rounds are per-stratum maxima; per-round deltas sum
    # across shards (a shard past its own fixpoint contributes zero).
    result.rounds = sum(global_rounds)
    stats.rounds = result.rounds
    stats.strata = num_strata
    stats.rounds_per_stratum = list(global_rounds)
    merged_deltas: list[int] = []
    shard_offsets = []
    for outcome in outcomes:
        offsets = [0]
        for rounds in outcome.rounds_per_stratum:
            offsets.append(offsets[-1] + rounds)
        shard_offsets.append(offsets)
    for stratum in range(num_strata):
        for round_in_stratum in range(1, global_rounds[stratum] + 1):
            total = 0
            for shard, outcome in enumerate(outcomes):
                if round_in_stratum > outcome.rounds_per_stratum[stratum]:
                    continue
                index = shard_offsets[shard][stratum] + round_in_stratum - 1
                if index < len(outcome.delta_sizes):
                    total += outcome.delta_sizes[index]
            merged_deltas.append(total)
    stats.delta_sizes = merged_deltas
    stats.facts_deduplicated = sum(o.facts_deduplicated for o in outcomes)
    stats.plans_compiled = sum(o.plans_compiled for o in outcomes)
    stats.kernels_compiled = sum(o.kernels_compiled for o in outcomes)
    stats.kernel_compile_s = sum(o.kernel_compile_s for o in outcomes)
    for outcome in outcomes:
        for label, entry in outcome.plans.items():
            held = stats.plans.setdefault(label, {})
            for name, value in entry.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    base = held.get(name, 0)
                    held[name] = (
                        base + value
                        if isinstance(base, (int, float)) else value
                    )
                else:
                    held.setdefault(name, value)
    return result
