"""Compiled rule kernels: specialized closures over the columnar store.

The interpreted executor that preceded this module walked a
:class:`~repro.engine.planner.JoinPlan` step list per candidate tuple,
re-deciding per fact which positions to probe, bind, and check, and
re-dispatching every hoisted condition through the generic expression
evaluator.  A :class:`RuleKernel` does all of that deciding **once, at
compile time**:

* each :class:`JoinStep` becomes a :class:`_StepKernel` holding a
  pre-built probe-key closure (bare interned id for one position, id
  tuple otherwise), the ``(position, slot)`` pairs to bind and to check,
  and the step's hoisted assignments, comparisons and negation probes
  compiled to closures over a flat register file;
* the register file is a plain ``list[int]`` of interned ids indexed by
  *slot* — the variable's index in the plan's canonical binding order —
  so the join inner loop moves only ints: probe keys are ints, equality
  checks are int comparisons, and no term object is touched until a full
  match materializes;
* conditions and arithmetic compile into nested closures that decode ids
  through the symbol table's live term list (one list index per leaf)
  and reproduce the generic evaluator's semantics exactly — including
  which inputs raise :class:`EvaluationError`, since the planned
  strategy counts those as pruned partials;
* negation checks compile to full-arity index probes: every variable of
  a negated atom is bound by the time the check is hoisted in, so one
  bucket lookup decides it.

**Parity.**  Register values are *canonical* ids — value-equal terms
(``1``, ``1.0``, ``True``) share one id — which is sound for pruning
(value-equal operands give equal comparison truth, equal arithmetic
results and identical error behaviour) but not for rendering.  Final
bindings are therefore reconstructed from the matched facts' **actual
stored terms** (each variable from its first occurrence in written body
order, exactly where naive matching binds it) and assignment targets are
recomputed with :func:`evaluate_assignment` on those terms, then
serialized in canonical binding order.  Together with the
sort-by-insertion-sequence step this makes kernel output byte-identical
to naive enumeration — same facts, same nulls, same
:class:`ChaseStepRecord` bytes (see :mod:`repro.engine.join`).
"""

from __future__ import annotations

import operator
import time
from typing import Callable, Mapping, Sequence

from .. import obs
from ..datalog.atoms import Atom, Fact
from ..datalog.conditions import (
    BinaryOp,
    Comparison,
    Expression,
    evaluate_assignment,
)
from ..datalog.errors import EvaluationError
from ..datalog.terms import Constant, Term, Variable
from ..datalog.unify import MutableSubstitution
from .database import Database
from .planner import JoinPlan, RulePlan
from .symbols import SymbolTable

#: A full body match: (binding, matched facts in original body order).
Match = tuple[MutableSubstitution, tuple[Fact, ...]]

#: A matched body: (parent sequence numbers, parent facts), body order.
_Entry = tuple[tuple[int, ...], tuple[Fact, ...]]

_EMPTY_ROWS: tuple[int, ...] = ()

_ARITHMETIC: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARATORS: dict[str, Callable] = {
    ">": operator.gt,
    "<": operator.lt,
    ">=": operator.ge,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


# ----------------------------------------------------------------------
# Expression / condition / assignment compilation
# ----------------------------------------------------------------------

def _compile_expression(
    expr: Expression,
    slot_of: Mapping[Variable, int],
    values: list[Term],
) -> Callable[[list[int]], object]:
    """Compile an expression to ``regs -> raw value``.

    Mirrors :func:`~repro.datalog.conditions.evaluate_expression` exactly,
    with variable leaves reading ``values[regs[slot]]`` instead of a
    substitution dict.  ``values`` is the symbol table's live term list.
    """
    if isinstance(expr, Constant):
        constant_value = expr.value
        return lambda regs: constant_value
    if isinstance(expr, Variable):
        slot = slot_of[expr]

        def read(regs: list[int], _slot: int = slot) -> object:
            term = values[regs[_slot]]
            if not isinstance(term, Constant):
                raise EvaluationError(
                    f"variable {expr} bound to non-constant {term}"
                )
            return term.value

        return read
    if isinstance(expr, BinaryOp):
        left = _compile_expression(expr.left, slot_of, values)
        right = _compile_expression(expr.right, slot_of, values)
        op = expr.op
        operation = _ARITHMETIC.get(op)

        def node(regs: list[int]) -> object:
            a = left(regs)
            b = right(regs)
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                raise EvaluationError(
                    f"arithmetic on non-numeric operands: {a!r} {op} {b!r}"
                )
            if op == "/" and b == 0:
                raise EvaluationError("division by zero in rule expression")
            if operation is None:
                raise EvaluationError(f"unknown arithmetic operator {op!r}")
            return operation(a, b)

        return node

    # Nulls and anything else cannot be evaluated arithmetically.
    def unevaluable(regs: list[int]) -> object:
        raise EvaluationError(f"cannot evaluate expression leaf {expr!r}")

    return unevaluable


def _compile_condition(
    condition: Comparison,
    slot_of: Mapping[Variable, int],
    values: list[Term],
) -> Callable[[list[int]], bool]:
    """Compile a comparison to ``regs -> bool`` (EvaluationError on type
    mismatch, like :meth:`Comparison.holds`)."""
    left = _compile_expression(condition.left, slot_of, values)
    right = _compile_expression(condition.right, slot_of, values)
    comparator = _COMPARATORS[condition.op]
    op = condition.op

    def check(regs: list[int]) -> bool:
        a = left(regs)
        b = right(regs)
        try:
            return comparator(a, b)
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {a!r} {op} {b!r}: {exc}"
            ) from exc

    return check


def _compile_assignment(
    expression: Expression,
    slot_of: Mapping[Variable, int],
    symbols: SymbolTable,
) -> Callable[[list[int]], int]:
    """Compile a body assignment to ``regs -> interned result id``.

    Applies the same rounding normalization as
    :func:`~repro.datalog.conditions.evaluate_assignment`, so the interned
    result is value-equal to what naive evaluation stores — sufficient for
    pruning and joining; the rendered value is recomputed from actual
    terms at match-materialization time.
    """
    compiled = _compile_expression(expression, slot_of, symbols.terms_view())
    intern = symbols.intern

    def compute(regs: list[int]) -> int:
        value = compiled(regs)
        if isinstance(value, float):
            value = round(value, 9)
            if value.is_integer():
                value = int(value)
        return intern(Constant(value))

    return compute


def _compile_key(
    parts: Sequence[tuple[bool, int]],
) -> Callable[[list[int]], object]:
    """Compile probe-key construction from (is_constant, id-or-slot) parts.

    Single-part keys are bare ids, matching the composite-index contract
    of :meth:`Database.index_on`.
    """
    if len(parts) == 1:
        is_constant, value = parts[0]
        if is_constant:
            return lambda regs: value
        return lambda regs, _slot=value: regs[_slot]
    fixed = tuple(parts)

    def make_key(regs: list[int]) -> object:
        return tuple(
            value if is_constant else regs[value]
            for is_constant, value in fixed
        )

    return make_key


# ----------------------------------------------------------------------
# Step and plan kernels
# ----------------------------------------------------------------------

class _NegationKernel:
    """A hoisted negated-atom check: one full-arity index probe."""

    __slots__ = ("predicate", "positions", "make_key")

    def __init__(
        self,
        atom: Atom,
        slot_of: Mapping[Variable, int],
        symbols: SymbolTable,
    ):
        self.predicate = atom.predicate
        self.positions = tuple(range(atom.arity))
        parts = []
        for term in atom.terms:
            if isinstance(term, Variable):
                parts.append((False, slot_of[term]))
            else:
                parts.append((True, symbols.intern(term)))
        self.make_key = _compile_key(parts)


class _StepKernel:
    """One :class:`JoinStep` compiled: probe, bind, check, prune, negate."""

    __slots__ = (
        "predicate",
        "is_pivot",
        "probe_positions",
        "make_key",
        "verify",
        "binds",
        "checks",
        "assignments",
        "conditions",
        "negations",
    )

    def __init__(
        self,
        plan: JoinPlan,
        step_index: int,
        slot_of: Mapping[Variable, int],
        symbols: SymbolTable,
    ):
        step = plan.steps[step_index]
        values = symbols.terms_view()
        self.predicate = step.atom.predicate
        self.is_pivot = plan.pivot is not None and step_index == 0
        self.probe_positions = step.probe_positions
        # At a pivot step (always step 0) probe terms can only be
        # constants — no variable is bound before the first step — so the
        # delta scan verifies them against the id columns directly.
        parts: list[tuple[bool, int]] = []
        verify: list[tuple[int, int]] = []
        for position, term in zip(step.probe_positions, step.probe_terms):
            if isinstance(term, Variable):
                parts.append((False, slot_of[term]))
            else:
                constant_id = symbols.intern(term)
                parts.append((True, constant_id))
                verify.append((position, constant_id))
        self.make_key = (
            _compile_key(parts) if parts and not self.is_pivot else None
        )
        self.verify = tuple(verify) if self.is_pivot else ()
        self.binds = tuple(
            (position, slot_of[variable])
            for position, variable in step.bind_positions
        )
        self.checks = tuple(
            (position, slot_of[variable])
            for position, variable in step.check_positions
        )
        self.assignments = tuple(
            (slot_of[variable], _compile_assignment(expression, slot_of, symbols))
            for variable, expression in step.assignments
        )
        self.conditions = tuple(
            _compile_condition(condition, slot_of, values)
            for condition in step.conditions
        )
        self.negations = tuple(
            _NegationKernel(atom, slot_of, symbols) for atom in step.negated
        )


class PlanKernel:
    """A :class:`JoinPlan` compiled to an int-register join pipeline."""

    __slots__ = ("plan", "steps", "slots")

    def __init__(
        self,
        plan: JoinPlan,
        slot_of: Mapping[Variable, int],
        symbols: SymbolTable,
    ):
        self.plan = plan
        self.slots = len(slot_of)
        self.steps = tuple(
            _StepKernel(plan, index, slot_of, symbols)
            for index in range(len(plan.steps))
        )

    @property
    def pivot_predicate(self) -> str | None:
        pivot = self.plan.pivot
        if pivot is None:
            return None
        return self.plan.steps[0].atom.predicate

    def execute(
        self,
        database: Database,
        exclude: frozenset[Fact],
        delta_rows: Sequence[int] | None,
        counters: list[int],
    ) -> list[_Entry]:
        """All full matches as (sequence, fact) tuples in body order.

        ``counters`` is ``[probes, scanned, pruned, matches]``, updated in
        place with the same semantics as the interpreted executor had.
        """
        probes = 0
        scanned = 0
        pruned = 0
        # A partial is (registers, matched rows in step order).
        partials: list[tuple[list[int], tuple[int, ...]]] = [
            ([-1] * self.slots, _EMPTY_ROWS)
        ]
        for step in self.steps:
            predicate = step.predicate
            columns = database.columns(predicate)
            facts_list = database.rows(predicate)
            buckets: dict | None = None
            source: Sequence[int] = _EMPTY_ROWS
            if step.is_pivot:
                if delta_rows is not None:
                    source = delta_rows
            elif step.make_key is not None:
                buckets = database.index_on(predicate, step.probe_positions)
            else:
                source = range(len(facts_list))
            make_key = step.make_key
            verify = step.verify
            binds = step.binds
            checks = step.checks
            assignments = step.assignments
            conditions = step.conditions
            negations = (
                tuple(
                    (
                        negation.make_key,
                        database.index_on(negation.predicate, negation.positions),
                        database.rows(negation.predicate),
                    )
                    for negation in step.negations
                )
                if step.negations
                else ()
            )
            next_partials: list[tuple[list[int], tuple[int, ...]]] = []
            for regs, used in partials:
                probes += 1
                if buckets is not None:
                    candidates = buckets.get(make_key(regs), _EMPTY_ROWS)
                else:
                    candidates = source
                for row in candidates:
                    scanned += 1
                    if exclude and facts_list[row] in exclude:
                        continue
                    if verify and any(
                        columns[position][row] != constant_id
                        for position, constant_id in verify
                    ):
                        continue
                    extended = regs.copy()
                    for position, slot in binds:
                        extended[slot] = columns[position][row]
                    if checks and any(
                        extended[slot] != columns[position][row]
                        for position, slot in checks
                    ):
                        continue
                    ok = True
                    for slot, compute in assignments:
                        try:
                            extended[slot] = compute(extended)
                        except EvaluationError:
                            ok = False
                            break
                    if ok:
                        try:
                            ok = all(
                                condition(extended) for condition in conditions
                            )
                        except EvaluationError:
                            ok = False
                    if not ok:
                        pruned += 1
                        continue
                    if negations:
                        blocked = False
                        for make_negation_key, neg_buckets, neg_facts in negations:
                            hits = neg_buckets.get(make_negation_key(extended))
                            if not hits:
                                continue
                            if exclude and all(
                                neg_facts[hit] in exclude for hit in hits
                            ):
                                continue
                            blocked = True
                            break
                        if blocked:
                            continue
                    next_partials.append((extended, used + (row,)))
            partials = next_partials
            if not partials:
                break
        counters[0] += probes
        counters[1] += scanned
        counters[2] += pruned
        counters[3] += len(partials)
        if not partials:
            return []
        restore = self.plan.step_of_atom
        rows_by_step = [database.rows(s.predicate) for s in self.steps]
        seqs_by_step = [database.row_sequences(s.predicate) for s in self.steps]
        body = range(len(restore))
        entries: list[_Entry] = []
        for _regs, used in partials:
            steps_of_body = [restore[index] for index in body]
            entries.append(
                (
                    tuple(seqs_by_step[s][used[s]] for s in steps_of_body),
                    tuple(rows_by_step[s][used[s]] for s in steps_of_body),
                )
            )
        return entries


class RuleKernel:
    """A rule's full plan plus delta variants, compiled and reusable.

    Compiled once per stratum (ids and closures stay valid as the
    database grows — columns and the symbol table are live views) and
    executed every round; :attr:`execs` counts executions for the
    ``kernel_execs`` plan stat.
    """

    __slots__ = (
        "rule_plan",
        "symbols",
        "canonical",
        "full",
        "variants",
        "body_sources",
        "assignments",
        "execs",
    )

    def __init__(self, rule_plan: RulePlan, symbols: SymbolTable):
        self.rule_plan = rule_plan
        self.symbols = symbols
        self.canonical = rule_plan.full.canonical_variables
        slot_of = {
            variable: slot for slot, variable in enumerate(self.canonical)
        }
        self.full = PlanKernel(rule_plan.full, slot_of, symbols)
        self.variants = tuple(
            PlanKernel(variant, slot_of, symbols)
            for variant in rule_plan.delta_variants
        )
        # Where naive matching binds each body variable: its first
        # occurrence scanning body atoms in written order.  Final bindings
        # take the *actual* term stored at that occurrence, so rendered
        # output never sees canonical ids.
        sources: list[tuple[Variable, int, int]] = []
        placed: set[Variable] = set()
        for atom_index, atom in enumerate(rule_plan.rule.body):
            for position, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term not in placed:
                    placed.add(term)
                    sources.append((term, atom_index, position))
        self.body_sources = tuple(sources)
        self.assignments = tuple(rule_plan.rule.assignments)
        self.execs = 0

    def execute(
        self,
        database: Database,
        exclude: frozenset[Fact],
        delta_by_predicate: Mapping[str, list[Fact]] | None = None,
        stats: dict | None = None,
        profile_label: str | None = None,
    ) -> list[Match]:
        """The rule's full matches in naive enumeration order.

        Same contract as :func:`repro.engine.join.execute_rule_plan`:
        without a delta the full plan runs; with one, every delta variant
        whose pivot predicate intersects the delta runs and the union is
        deduplicated by parent sequence tuple.  Either way the entries
        are sorted by that tuple and each binding is rebuilt from the
        matched facts (see class docstring).  ``profile_label`` overrides
        the profiler attribution row (incremental updates label their
        delta executions ``<rule>+delta`` so hot spots stay separable
        from full-run kernels in ``repro obs top``).
        """
        if database.symbols is not self.symbols:
            raise ValueError(
                "kernel compiled against a different symbol table than "
                "the database it is executed on"
            )
        # Attribution sinks (ambient; both disabled outside observed
        # regions).  The clock is read only when one of them is live, so
        # the un-observed hot path pays two attribute checks.
        profiler = obs.get_profiler()
        flight = obs.current_flight()
        attributed = profiler.enabled or flight is not None
        started = time.perf_counter() if attributed else 0.0
        counters = [0, 0, 0, 0]
        if delta_by_predicate is None:
            entries = self.full.execute(database, exclude, None, counters)
        else:
            entries = []
            seen: set[tuple[int, ...]] = set()
            locate = database.location
            for variant in self.variants:
                delta_facts = delta_by_predicate.get(variant.pivot_predicate)
                if not delta_facts:
                    continue
                delta_rows = [locate(fact)[1] for fact in delta_facts]
                for entry in variant.execute(
                    database, exclude, delta_rows, counters
                ):
                    if entry[0] in seen:
                        continue
                    seen.add(entry[0])
                    entries.append(entry)
        entries.sort(key=lambda entry: entry[0])
        self.execs += 1
        if attributed:
            elapsed = time.perf_counter() - started
            if profiler.enabled:
                profiler.record(
                    profile_label or self.rule_plan.rule.label,
                    elapsed,
                    probes=counters[0],
                    rows_scanned=counters[1],
                    rows_emitted=counters[3],
                    pruned=counters[2],
                )
            if flight is not None:
                flight.count("kernel_execs")
                flight.count("kernel_index_probes", counters[0])
                flight.count("kernel_rows_scanned", counters[1])
                flight.count("kernel_rows_emitted", counters[3])
                flight.add_phase("kernel_execute", elapsed)
        if stats is not None:
            stats["probes"] = stats.get("probes", 0) + counters[0]
            stats["scanned"] = stats.get("scanned", 0) + counters[1]
            stats["pruned"] = stats.get("pruned", 0) + counters[2]
            stats["matches"] = stats.get("matches", 0) + counters[3]
            stats["kernel_execs"] = stats.get("kernel_execs", 0) + 1
        matches: list[Match] = []
        body_sources = self.body_sources
        assignments = self.assignments
        for _seqs, facts in entries:
            binding: MutableSubstitution = {}
            for variable, atom_index, position in body_sources:
                binding[variable] = facts[atom_index].terms[position]
            for variable, expression in assignments:
                binding[variable] = evaluate_assignment(expression, binding)
            matches.append((binding, facts))
        return matches


def compile_rule_kernel(rule_plan: RulePlan, database: Database) -> RuleKernel:
    """Compile ``rule_plan`` into a kernel bound to ``database``'s symbols."""
    return RuleKernel(rule_plan, database.symbols)
