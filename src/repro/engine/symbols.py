"""Constant interning: the dictionary of the columnar execution core.

The columnar store (:mod:`repro.engine.database`) keeps relations as
tuples of dense integer ids instead of term objects.  The mapping between
ground terms and ids lives here, in a :class:`SymbolTable`:

* **value equality** — ids follow the equality semantics of the
  term-keyed hash indexes they replace, so ``Constant(1)``,
  ``Constant(1.0)`` and ``Constant(True)`` (equal under Python's numeric
  tower) share one id.  Joins over ids therefore find exactly the
  homomorphisms the tuple-at-a-time matcher finds.  The *canonical term*
  of an id is whichever value-equal term was interned first; rendering
  never goes through canonical terms (facts keep their original term
  objects), so interning cannot change any output byte.
* **append-only** — an id, once assigned, never changes or disappears.
  Databases that share a table (every :meth:`Database.copy`, and every
  chase working copy) can therefore diverge in content while always
  agreeing on the encoding of the terms they have in common.
* **dense** — ids are ``0..len(table)-1``, so per-id side tables are
  plain lists and :meth:`terms_view` can hand the kernel compiler a
  positionally indexed view with no hashing on the read path.

One table is created per root :class:`~repro.engine.database.Database`
and flows through copies and ``io.py`` snapshots (``repro-db/1``), which
persist the id order so warm starts rebuild the identical encoding.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from ..datalog.terms import Term


class SymbolTable:
    """Bidirectional map between ground terms and dense integer ids."""

    __slots__ = ("_id_of", "_terms", "_lock")

    def __init__(self) -> None:
        self._id_of: dict[Term, int] = {}
        self._terms: list[Term] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, term: Term) -> int:
        """The id of ``term``, assigning the next dense id on first sight.

        Lock-free on the hit path (dict reads are atomic under the GIL);
        the slow path re-checks under a lock so concurrent first sights
        of value-equal terms agree on one id.
        """
        existing = self._id_of.get(term)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._id_of.get(term)
            if existing is not None:
                return existing
            assigned = len(self._terms)
            self._terms.append(term)
            self._id_of[term] = assigned
            return assigned

    def lookup(self, term: Term) -> int | None:
        """The id of ``term`` if it has ever been interned, else ``None``.

        A ``None`` result proves no stored fact contains a value equal to
        ``term`` — the index fast path for constant probes that miss.
        """
        return self._id_of.get(term)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def term(self, symbol_id: int) -> Term:
        """The canonical term of an id (the first value-equal term seen)."""
        return self._terms[symbol_id]

    def terms_view(self) -> list[Term]:
        """The live id-indexed term list (read-only; grows on intern).

        Handed to compiled kernels so decoding an id is one list index.
        Callers must never mutate it.
        """
        return self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._id_of

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, terms: Iterable[Term]) -> "SymbolTable":
        """Rebuild a table from an id-ordered term sequence (see
        ``io.py``'s ``repro-db/1`` snapshots).  Ids are reassigned
        positionally, so a table restored from :meth:`terms_view` output
        encodes every term exactly as the original did."""
        table = cls()
        for term in terms:
            table._terms.append(term)
            table._id_of.setdefault(term, len(table._terms) - 1)
        return table

    def snapshot(self) -> dict:
        """Size figures for stats documents and tests."""
        return {"symbols": len(self._terms)}
