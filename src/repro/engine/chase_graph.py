"""The chase graph G(D, Σ).

Nodes are the facts of ``chase(D, Σ)``; there is an edge from fact ``n`` to
fact ``m`` labelled with rule σ iff ``m`` was derived from ``n`` (and
possibly other facts) via a chase step applying σ (paper, Section 3).

The graph is derived entirely from the :class:`~repro.engine.chase.ChaseResult`
provenance records and is the structure the explanation machinery walks to
recover root-to-leaf derivation paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..datalog.atoms import Fact
from .chase import ChaseResult, ChaseStepRecord


@dataclass(frozen=True, slots=True)
class ChaseEdge:
    """A derivation edge ``source -> target`` labelled with the applied rule."""

    source: Fact
    target: Fact
    rule_label: str

    def __str__(self) -> str:
        return f"{self.source} --[{self.rule_label}]--> {self.target}"


class ChaseGraph:
    """Fact-level derivation graph built from a chase run."""

    def __init__(self, result: ChaseResult):
        self.result = result
        self._incoming: dict[Fact, list[ChaseEdge]] = {}
        self._outgoing: dict[Fact, list[ChaseEdge]] = {}
        self._edges: list[ChaseEdge] = []
        for record in result.records:
            for parent in record.parents:
                edge = ChaseEdge(parent, record.fact, record.rule_label)
                self._edges.append(edge)
                self._outgoing.setdefault(parent, []).append(edge)
                self._incoming.setdefault(record.fact, []).append(edge)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[ChaseEdge, ...]:
        return tuple(self._edges)

    def nodes(self) -> tuple[Fact, ...]:
        return self.result.database.facts()

    def parents(self, current: Fact) -> tuple[Fact, ...]:
        return tuple(edge.source for edge in self._incoming.get(current, ()))

    def children(self, current: Fact) -> tuple[Fact, ...]:
        return tuple(edge.target for edge in self._outgoing.get(current, ()))

    def incoming(self, current: Fact) -> tuple[ChaseEdge, ...]:
        return tuple(self._incoming.get(current, ()))

    def outgoing(self, current: Fact) -> tuple[ChaseEdge, ...]:
        return tuple(self._outgoing.get(current, ()))

    def roots(self) -> tuple[Fact, ...]:
        """Facts with no incoming derivation edge — the extensional facts."""
        return tuple(
            current for current in self.result.database
            if current not in self._incoming
        )

    # ------------------------------------------------------------------
    # Sub-DAG extraction
    # ------------------------------------------------------------------
    def ancestor_records(self, target: Fact) -> list[ChaseStepRecord]:
        """All chase steps in the proof of ``target``, in derivation order.

        This is the portion of the chase graph from which ``target``
        derives (cf. the paper's Figure 8).  EDB facts contribute no
        records; they appear only as parents of the returned steps.
        """
        derivation = self.result.derivation
        collected: dict[int, ChaseStepRecord] = {}
        frontier = [target]
        while frontier:
            current = frontier.pop()
            record = derivation.get(current)
            if record is None or record.index in collected:
                continue
            collected[record.index] = record
            frontier.extend(record.parents)
        return [collected[index] for index in sorted(collected)]

    def proof_facts(self, target: Fact) -> tuple[Fact, ...]:
        """All facts (EDB and derived) in the proof of ``target``."""
        seen: dict[Fact, None] = {target: None}
        for record in self.ancestor_records(target):
            seen.setdefault(record.fact, None)
            for parent in record.parents:
                seen.setdefault(parent, None)
        return tuple(seen)

    def proof_size(self, target: Fact) -> int:
        """Number of chase steps in the proof of ``target``.

        This is the inference-length measure used on the x axes of the
        paper's Figures 17 and 18.
        """
        return len(self.ancestor_records(target))

    def __iter__(self) -> Iterator[ChaseEdge]:
        return iter(self._edges)

    def describe(self) -> str:
        lines = [f"Chase graph: {len(self.nodes())} facts, {len(self._edges)} edges"]
        lines.extend(f"  {edge}" for edge in self._edges)
        return "\n".join(lines)
