"""Fact store with per-predicate indexing.

A :class:`Database` is the extensional component of an EKG: a set of facts
over the schema.  During the chase it also accumulates the derived
(intensional) facts.  Facts are kept in insertion order — the chase relies
on this for deterministic rule application — and indexed by predicate and
by (predicate, position, constant) for fast matching.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..datalog.atoms import Atom, Fact
from ..datalog.errors import ArityError
from ..datalog.terms import Constant, Null, Variable
from ..datalog.unify import MutableSubstitution, Substitution, match_atom


class Database:
    """A mutable set of facts with predicate and constant-position indexes."""

    def __init__(self, facts: Iterable[Fact] = ()):
        # dict used as an insertion-ordered set.
        self._facts: dict[Fact, None] = {}
        self._by_predicate: dict[str, list[Fact]] = {}
        self._by_position: dict[tuple[str, int, object], list[Fact]] = {}
        self._arities: dict[str, int] = {}
        for current in facts:
            self.add(current)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, new_fact: Fact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if not new_fact.is_fact():
            raise ArityError(f"cannot store non-ground atom {new_fact}")
        known_arity = self._arities.get(new_fact.predicate)
        if known_arity is None:
            self._arities[new_fact.predicate] = new_fact.arity
        elif known_arity != new_fact.arity:
            raise ArityError(
                f"predicate {new_fact.predicate} used with arity "
                f"{new_fact.arity}, expected {known_arity}"
            )
        if new_fact in self._facts:
            return False
        self._facts[new_fact] = None
        self._by_predicate.setdefault(new_fact.predicate, []).append(new_fact)
        for position, term in enumerate(new_fact.terms):
            if isinstance(term, (Constant, Null)):
                key = (new_fact.predicate, position, term)
                self._by_position.setdefault(key, []).append(new_fact)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for current in facts if self.add(current))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, item: Fact) -> bool:
        return item in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def predicates(self) -> frozenset[str]:
        return frozenset(self._by_predicate)

    def facts(self, predicate: str | None = None) -> tuple[Fact, ...]:
        """All facts, or the facts of one predicate, in insertion order."""
        if predicate is None:
            return tuple(self._facts)
        return tuple(self._by_predicate.get(predicate, ()))

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def candidates(self, pattern: Atom, binding: Substitution) -> tuple[Fact, ...]:
        """Facts that could match ``pattern`` under ``binding``.

        Uses the most selective constant-position index available; falls
        back to the predicate index.
        """
        best: tuple[Fact, ...] | None = None
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                term = binding.get(term, term)
            if isinstance(term, (Constant, Null)):
                key = (pattern.predicate, position, term)
                indexed = tuple(self._by_position.get(key, ()))
                if best is None or len(indexed) < len(best):
                    best = indexed
        if best is not None:
            return best
        return tuple(self._by_predicate.get(pattern.predicate, ()))

    def match(
        self,
        pattern: Atom,
        binding: Substitution | None = None,
        exclude: frozenset[Fact] | None = None,
    ) -> Iterator[tuple[Fact, MutableSubstitution]]:
        """Yield ``(fact, extended_binding)`` for every fact matching
        ``pattern`` under ``binding``, skipping facts in ``exclude``."""
        base: Substitution = binding if binding is not None else {}
        for candidate in self.candidates(pattern, base):
            if exclude is not None and candidate in exclude:
                continue
            extended = match_atom(pattern, candidate, base)
            if extended is not None:
                yield candidate, extended

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        """An independent copy of this database.

        Facts are immutable, so the indexes can be duplicated structurally
        (dict/list shallow copies) instead of re-deriving them fact by
        fact through :meth:`add` — O(facts + index entries) with no
        hashing or arity re-checks.  Mutating either database afterwards
        never affects the other.
        """
        clone = Database.__new__(Database)
        clone._facts = dict(self._facts)
        clone._by_predicate = {
            predicate: list(facts)
            for predicate, facts in self._by_predicate.items()
        }
        clone._by_position = {
            key: list(facts) for key, facts in self._by_position.items()
        }
        clone._arities = dict(self._arities)
        return clone

    def describe(self, limit: int | None = None) -> str:
        """Human-readable listing, optionally truncated to ``limit`` facts."""
        listed = list(self._facts)
        truncated = limit is not None and len(listed) > limit
        if truncated:
            listed = listed[:limit]
        lines = [f"Database with {len(self._facts)} facts:"]
        lines.extend(f"  {current}" for current in listed)
        if truncated:
            lines.append(f"  ... ({len(self._facts) - len(listed)} more)")
        return "\n".join(lines)
