"""Fact store with per-predicate indexing.

A :class:`Database` is the extensional component of an EKG: a set of facts
over the schema.  During the chase it also accumulates the derived
(intensional) facts.  Facts are kept in insertion order — the chase relies
on this for deterministic rule application — and indexed by predicate, by
(predicate, position, constant) for single-column matching, and by
lazily built **composite** (predicate, positions) indexes that the join
planner probes with multi-column keys (:mod:`repro.engine.join`).

Every fact also carries its global insertion *sequence number*
(:meth:`Database.sequence`): the planned strategy sorts hash-join output
by the sequence tuple of the matched body facts, which reproduces the
naive engine's depth-first enumeration order exactly and keeps derived
facts and provenance byte-identical across strategies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..datalog.atoms import Atom, Fact
from ..datalog.errors import ArityError
from ..datalog.terms import Constant, Null, Term, Variable
from ..datalog.unify import MutableSubstitution, Substitution, match_atom

#: An empty candidate sequence, shared so misses allocate nothing.
_EMPTY: tuple[Fact, ...] = ()


class Database:
    """A mutable set of facts with predicate and constant-position indexes."""

    def __init__(self, facts: Iterable[Fact] = ()):
        # Insertion-ordered; the value is the fact's sequence number.
        self._facts: dict[Fact, int] = {}
        self._by_predicate: dict[str, list[Fact]] = {}
        self._by_position: dict[tuple[str, int, object], list[Fact]] = {}
        # Composite indexes: predicate -> positions -> key tuple -> facts.
        # Built on first use (index_on) and maintained incrementally by add.
        self._composite: dict[
            str, dict[tuple[int, ...], dict[tuple[Term, ...], list[Fact]]]
        ] = {}
        # Memoized tuples handed out by facts(); invalidated per predicate.
        self._facts_cache: dict[str | None, tuple[Fact, ...]] = {}
        self._arities: dict[str, int] = {}
        for current in facts:
            self.add(current)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, new_fact: Fact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if not new_fact.is_fact():
            raise ArityError(f"cannot store non-ground atom {new_fact}")
        known_arity = self._arities.get(new_fact.predicate)
        if known_arity is None:
            self._arities[new_fact.predicate] = new_fact.arity
        elif known_arity != new_fact.arity:
            raise ArityError(
                f"predicate {new_fact.predicate} used with arity "
                f"{new_fact.arity}, expected {known_arity}"
            )
        if new_fact in self._facts:
            return False
        self._facts[new_fact] = len(self._facts)
        self._by_predicate.setdefault(new_fact.predicate, []).append(new_fact)
        terms = new_fact.terms
        for position, term in enumerate(terms):
            if isinstance(term, (Constant, Null)):
                key = (new_fact.predicate, position, term)
                self._by_position.setdefault(key, []).append(new_fact)
        composite = self._composite.get(new_fact.predicate)
        if composite:
            for positions, buckets in composite.items():
                key = tuple(terms[position] for position in positions)
                buckets.setdefault(key, []).append(new_fact)
        if self._facts_cache:
            self._facts_cache.pop(new_fact.predicate, None)
            self._facts_cache.pop(None, None)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for current in facts if self.add(current))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, item: Fact) -> bool:
        return item in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def predicates(self) -> frozenset[str]:
        return frozenset(self._by_predicate)

    def facts(self, predicate: str | None = None) -> tuple[Fact, ...]:
        """All facts, or the facts of one predicate, in insertion order.

        The returned tuple is memoized until the next :meth:`add` touching
        the predicate, so repeated calls in the chase hot loop do not copy
        the underlying index lists.
        """
        cached = self._facts_cache.get(predicate)
        if cached is None:
            if predicate is None:
                cached = tuple(self._facts)
            else:
                cached = tuple(self._by_predicate.get(predicate, _EMPTY))
            self._facts_cache[predicate] = cached
        return cached

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, _EMPTY))

    def sequence(self, current: Fact) -> int:
        """The global insertion rank of a stored fact (0-based).

        Candidate lists of every index enumerate facts in increasing
        sequence order, which is what makes sequence-tuple sorting
        reproduce naive enumeration order (see module docstring).
        """
        return self._facts[current]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def candidates(self, pattern: Atom, binding: Substitution) -> Sequence[Fact]:
        """Facts that could match ``pattern`` under ``binding``.

        Uses the most selective constant-position index available; falls
        back to the predicate index.  Returns a live read-only view of the
        stored index list — callers must not mutate it, and must finish
        iterating before adding facts.
        """
        best: Sequence[Fact] | None = None
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                term = binding.get(term, term)
            if isinstance(term, (Constant, Null)):
                indexed = self._by_position.get((pattern.predicate, position, term))
                if indexed is None:
                    return _EMPTY
                if best is None or len(indexed) < len(best):
                    best = indexed
        if best is not None:
            return best
        return self._by_predicate.get(pattern.predicate, _EMPTY)

    def index_on(
        self, predicate: str, positions: tuple[int, ...]
    ) -> dict[tuple[Term, ...], list[Fact]]:
        """The composite hash index of ``predicate`` keyed on ``positions``.

        Built from the current facts on first use and maintained
        incrementally by :meth:`add` afterwards; bucket lists keep
        insertion order.  ``positions`` must be strictly increasing.
        """
        composite = self._composite.setdefault(predicate, {})
        buckets = composite.get(positions)
        if buckets is None:
            buckets = {}
            for current in self._by_predicate.get(predicate, _EMPTY):
                terms = current.terms
                key = tuple(terms[position] for position in positions)
                buckets.setdefault(key, []).append(current)
            composite[positions] = buckets
        return buckets

    def composite_index_count(self) -> int:
        """How many composite indexes are currently materialized."""
        return sum(len(by_positions) for by_positions in self._composite.values())

    def match(
        self,
        pattern: Atom,
        binding: Substitution | None = None,
        exclude: frozenset[Fact] | None = None,
    ) -> Iterator[tuple[Fact, MutableSubstitution]]:
        """Yield ``(fact, extended_binding)`` for every fact matching
        ``pattern`` under ``binding``, skipping facts in ``exclude``."""
        base: Substitution = binding if binding is not None else {}
        for candidate in self.candidates(pattern, base):
            if exclude is not None and candidate in exclude:
                continue
            extended = match_atom(pattern, candidate, base)
            if extended is not None:
                yield candidate, extended

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        """An independent copy of this database.

        Facts are immutable, so the indexes can be duplicated structurally
        (dict/list shallow copies) instead of re-deriving them fact by
        fact through :meth:`add` — O(facts + index entries) with no
        hashing or arity re-checks.  Composite indexes and memoized fact
        tuples are caches; the copy starts without them and rebuilds on
        demand.  Mutating either database afterwards never affects the
        other.
        """
        clone = Database.__new__(Database)
        clone._facts = dict(self._facts)
        clone._by_predicate = {
            predicate: list(facts)
            for predicate, facts in self._by_predicate.items()
        }
        clone._by_position = {
            key: list(facts) for key, facts in self._by_position.items()
        }
        clone._composite = {}
        clone._facts_cache = {}
        clone._arities = dict(self._arities)
        return clone

    def describe(self, limit: int | None = None) -> str:
        """Human-readable listing, optionally truncated to ``limit`` facts."""
        listed = list(self._facts)
        truncated = limit is not None and len(listed) > limit
        if truncated:
            listed = listed[:limit]
        lines = [f"Database with {len(self._facts)} facts:"]
        lines.extend(f"  {current}" for current in listed)
        if truncated:
            lines.append(f"  ... ({len(self._facts) - len(listed)} more)")
        return "\n".join(lines)
