"""Columnar fact store with interned constants and per-predicate indexing.

A :class:`Database` is the extensional component of an EKG: a set of facts
over the schema.  During the chase it also accumulates the derived
(intensional) facts.  Facts are kept in insertion order — the chase relies
on this for deterministic rule application — with two synchronized
representations:

* the **row store** — per-predicate lists of the original :class:`Fact`
  objects, which every string-facing view (``facts()``, ``match()``,
  ``candidates()``, provenance rendering) serves, so output bytes never
  depend on interning;
* the **column store** — per-predicate columns of dense integer ids
  assigned by a shared :class:`~repro.engine.symbols.SymbolTable`.  The
  compiled rule kernels (:mod:`repro.engine.kernels`) join over these
  int columns: probe keys are ints or int tuples, equality checks are
  int comparisons, and no term object is touched until a full match
  materializes.

Single-column constant lookups go through an id-keyed
``(predicate, position, id)`` index; multi-column hash joins probe
lazily built **composite** indexes (:meth:`index_on`) whose buckets hold
row numbers keyed by id (bare int for one position, int tuples
otherwise), maintained incrementally by :meth:`add`.

Every fact also carries its global insertion *sequence number*
(:meth:`Database.sequence`, reverse-mapped by :meth:`fact_at`): the
planned strategy sorts hash-join output by the sequence tuple of the
matched body facts, which reproduces the naive engine's depth-first
enumeration order exactly and keeps derived facts and provenance
byte-identical across strategies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..datalog.atoms import Atom, Fact
from ..datalog.errors import ArityError
from ..datalog.terms import Constant, Null, Variable
from ..datalog.unify import MutableSubstitution, Substitution, match_atom
from .symbols import SymbolTable

#: An empty candidate sequence, shared so misses allocate nothing.
_EMPTY: tuple[Fact, ...] = ()
#: Empty column/row views for predicates with no facts yet.
_NO_COLUMNS: tuple[list[int], ...] = ()
_NO_ROWS: Sequence[int] = ()


class Database:
    """A mutable set of facts with row- and column-oriented indexes."""

    def __init__(
        self, facts: Iterable[Fact] = (), symbols: SymbolTable | None = None
    ):
        #: Term interning dictionary; shared (never copied) across
        #: :meth:`copy` so related databases agree on every encoding.
        self._symbols = symbols if symbols is not None else SymbolTable()
        # Insertion-ordered; the value is the fact's sequence number.
        self._facts: dict[Fact, int] = {}
        self._by_predicate: dict[str, list[Fact]] = {}
        # Column store: predicate -> one id list per argument position,
        # row-aligned with the _by_predicate fact lists.
        self._columns: dict[str, tuple[list[int], ...]] = {}
        # Row-aligned global sequence numbers per predicate.
        self._row_seq: dict[str, list[int]] = {}
        # Global sequence -> (predicate, row): the reverse of sequence().
        self._loc: list[tuple[str, int]] = []
        self._by_position: dict[tuple[str, int, int], list[Fact]] = {}
        # Composite indexes: predicate -> positions -> id key -> rows.
        # Built on first use (index_on) and maintained incrementally by add.
        self._composite: dict[
            str, dict[tuple[int, ...], dict[object, list[int]]]
        ] = {}
        # Memoized tuples handed out by facts(); invalidated per predicate.
        self._facts_cache: dict[str | None, tuple[Fact, ...]] = {}
        self._arities: dict[str, int] = {}
        for current in facts:
            self.add(current)

    @property
    def symbols(self) -> SymbolTable:
        """The interning table encoding this database's columns."""
        return self._symbols

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, new_fact: Fact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if not new_fact.is_fact():
            raise ArityError(f"cannot store non-ground atom {new_fact}")
        predicate = new_fact.predicate
        known_arity = self._arities.get(predicate)
        if known_arity is None:
            self._arities[predicate] = new_fact.arity
        elif known_arity != new_fact.arity:
            raise ArityError(
                f"predicate {predicate} used with arity "
                f"{new_fact.arity}, expected {known_arity}"
            )
        if new_fact in self._facts:
            return False
        sequence = len(self._facts)
        self._facts[new_fact] = sequence
        rows = self._by_predicate.get(predicate)
        if rows is None:
            rows = self._by_predicate[predicate] = []
            self._columns[predicate] = tuple(
                [] for _ in range(new_fact.arity)
            )
            self._row_seq[predicate] = []
        row = len(rows)
        rows.append(new_fact)
        self._row_seq[predicate].append(sequence)
        self._loc.append((predicate, row))
        intern = self._symbols.intern
        ids = tuple(intern(term) for term in new_fact.terms)
        columns = self._columns[predicate]
        for position, symbol_id in enumerate(ids):
            columns[position].append(symbol_id)
            key = (predicate, position, symbol_id)
            self._by_position.setdefault(key, []).append(new_fact)
        composite = self._composite.get(predicate)
        if composite:
            for positions, buckets in composite.items():
                if len(positions) == 1:
                    bucket_key: object = ids[positions[0]]
                else:
                    bucket_key = tuple(ids[p] for p in positions)
                buckets.setdefault(bucket_key, []).append(row)
        if self._facts_cache:
            self._facts_cache.pop(predicate, None)
            self._facts_cache.pop(None, None)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for current in facts if self.add(current))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, item: Fact) -> bool:
        return item in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def predicates(self) -> frozenset[str]:
        return frozenset(self._by_predicate)

    def facts(self, predicate: str | None = None) -> tuple[Fact, ...]:
        """All facts, or the facts of one predicate, in insertion order.

        The returned tuple is memoized until the next :meth:`add` touching
        the predicate, so repeated calls in the chase hot loop do not copy
        the underlying index lists.
        """
        cached = self._facts_cache.get(predicate)
        if cached is None:
            if predicate is None:
                cached = tuple(self._facts)
            else:
                cached = tuple(self._by_predicate.get(predicate, _EMPTY))
            self._facts_cache[predicate] = cached
        return cached

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, _EMPTY))

    def sequence(self, current: Fact) -> int:
        """The global insertion rank of a stored fact (0-based).

        Candidate lists of every index enumerate facts in increasing
        sequence order, which is what makes sequence-tuple sorting
        reproduce naive enumeration order (see module docstring).
        """
        return self._facts[current]

    def fact_at(self, sequence: int) -> Fact:
        """The stored fact with the given sequence number (the inverse of
        :meth:`sequence`); lets provenance layers key their structures by
        int and decode only at the rendering boundary."""
        predicate, row = self._loc[sequence]
        return self._by_predicate[predicate][row]

    def location(self, current: Fact) -> tuple[str, int]:
        """``(predicate, row)`` of a stored fact in the column store."""
        return self._loc[self._facts[current]]

    # ------------------------------------------------------------------
    # Columnar views (read-only, live — used by the compiled kernels)
    # ------------------------------------------------------------------
    def columns(self, predicate: str) -> tuple[list[int], ...]:
        """The id columns of a predicate, one list per argument position.

        Live views: they grow in place on :meth:`add`, so references
        captured at kernel-compile time stay valid.  Never mutate them.
        """
        return self._columns.get(predicate, _NO_COLUMNS)

    def rows(self, predicate: str) -> Sequence[Fact]:
        """The row-aligned fact list of a predicate (live, read-only)."""
        return self._by_predicate.get(predicate, _EMPTY)

    def row_sequences(self, predicate: str) -> Sequence[int]:
        """Row-aligned global sequence numbers (live, read-only)."""
        return self._row_seq.get(predicate, _NO_ROWS)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def candidates(self, pattern: Atom, binding: Substitution) -> Sequence[Fact]:
        """Facts that could match ``pattern`` under ``binding``.

        Uses the most selective constant-position index available; falls
        back to the predicate index.  Constants resolve through the
        symbol table first — a value that was never interned cannot occur
        in any stored fact, so the miss is decided without touching an
        index.  Returns a live read-only view of the stored index list —
        callers must not mutate it, and must finish iterating before
        adding facts.
        """
        best: Sequence[Fact] | None = None
        lookup = self._symbols.lookup
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                term = binding.get(term, term)
            if isinstance(term, (Constant, Null)):
                symbol_id = lookup(term)
                if symbol_id is None:
                    return _EMPTY
                indexed = self._by_position.get(
                    (pattern.predicate, position, symbol_id)
                )
                if indexed is None:
                    return _EMPTY
                if best is None or len(indexed) < len(best):
                    best = indexed
        if best is not None:
            return best
        return self._by_predicate.get(pattern.predicate, _EMPTY)

    def index_on(
        self, predicate: str, positions: tuple[int, ...]
    ) -> dict[object, list[int]]:
        """The composite hash index of ``predicate`` keyed on ``positions``.

        Keys are interned ids — the bare id for a single position, an id
        tuple otherwise; values are row numbers into ``rows(predicate)``
        in insertion order.  Built from the current columns on first use
        and maintained incrementally by :meth:`add` afterwards.
        ``positions`` must be strictly increasing.
        """
        composite = self._composite.setdefault(predicate, {})
        buckets = composite.get(positions)
        if buckets is None:
            buckets = {}
            columns = self._columns.get(predicate)
            if columns:
                if len(positions) == 1:
                    for row, symbol_id in enumerate(columns[positions[0]]):
                        buckets.setdefault(symbol_id, []).append(row)
                else:
                    selected = tuple(columns[p] for p in positions)
                    for row in range(len(selected[0])):
                        key = tuple(column[row] for column in selected)
                        buckets.setdefault(key, []).append(row)
            composite[positions] = buckets
        return buckets

    def composite_index_count(self) -> int:
        """How many composite indexes are currently materialized."""
        return sum(len(by_positions) for by_positions in self._composite.values())

    def match(
        self,
        pattern: Atom,
        binding: Substitution | None = None,
        exclude: frozenset[Fact] | None = None,
    ) -> Iterator[tuple[Fact, MutableSubstitution]]:
        """Yield ``(fact, extended_binding)`` for every fact matching
        ``pattern`` under ``binding``, skipping facts in ``exclude``."""
        base: Substitution = binding if binding is not None else {}
        for candidate in self.candidates(pattern, base):
            if exclude is not None and candidate in exclude:
                continue
            extended = match_atom(pattern, candidate, base)
            if extended is not None:
                yield candidate, extended

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        """An independent copy of this database.

        Facts are immutable, so the row and column stores can be
        duplicated structurally (dict/list shallow copies) instead of
        re-deriving them fact by fact through :meth:`add` — O(facts +
        index entries) with no hashing or arity re-checks.  The symbol
        table is *shared*, not copied: it is append-only, so both sides
        keep identical encodings however they diverge afterwards.
        Composite indexes and memoized fact tuples are caches; the copy
        starts without them and rebuilds on demand.  Mutating either
        database afterwards never affects the other.
        """
        clone = Database.__new__(Database)
        clone._symbols = self._symbols
        clone._facts = dict(self._facts)
        clone._by_predicate = {
            predicate: list(facts)
            for predicate, facts in self._by_predicate.items()
        }
        clone._columns = {
            predicate: tuple(list(column) for column in columns)
            for predicate, columns in self._columns.items()
        }
        clone._row_seq = {
            predicate: list(sequences)
            for predicate, sequences in self._row_seq.items()
        }
        clone._loc = list(self._loc)
        clone._by_position = {
            key: list(facts) for key, facts in self._by_position.items()
        }
        clone._composite = {}
        clone._facts_cache = {}
        clone._arities = dict(self._arities)
        return clone

    def describe(self, limit: int | None = None) -> str:
        """Human-readable listing, optionally truncated to ``limit`` facts."""
        listed = list(self._facts)
        truncated = limit is not None and len(listed) > limit
        if truncated:
            listed = listed[:limit]
        lines = [f"Database with {len(self._facts)} facts:"]
        lines.extend(f"  {current}" for current in listed)
        if truncated:
            lines.append(f"  ... ({len(self._facts) - len(listed)} more)")
        return "\n".join(lines)
