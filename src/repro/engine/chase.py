"""The chase procedure with provenance recording.

The chase enforces a rule set Σ over a database D, incrementally adding the
facts entailed by rule applications until fixpoint (paper, Section 3).  Our
implementation:

* evaluates rules round-by-round (naive evaluation) in program order, which
  makes runs fully deterministic;
* supports **monotonic aggregations**: an aggregate rule is evaluated
  set-at-a-time per group; when recursion lets a group's aggregate grow, a
  new fact with the larger value is derived and the previous fact from the
  same rule and group is *superseded* — it remains part of the chase graph
  (monotonicity: derived knowledge is never retracted) but no longer feeds
  further rule applications, mirroring the final-value semantics of
  Vadalog's monotonic aggregations;
* handles existential head variables with fresh labelled nulls under the
  **restricted chase**: a rule is not fired when its head is already
  satisfied by a homomorphism extending the body match, which guarantees
  termination for the (warded) programs considered in the paper;
* records one :class:`ChaseStepRecord` per derived fact — rule, matched
  body facts, variable binding and, for aggregates, the individual
  contributors — from which the chase graph and all proofs are built.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .. import obs
from ..datalog.atoms import Atom, Fact
from ..datalog.conditions import (
    Comparison,
    evaluate_assignment,
    evaluate_expression,
)
from ..datalog.errors import DatalogError, EvaluationError
from ..datalog.program import Program
from ..datalog.rules import Constraint, Rule
from ..datalog.stratification import stratify
from ..datalog.terms import Constant, NullFactory, Term, Variable
from ..datalog.unify import MutableSubstitution, apply_substitution
from .database import Database
from .join import execute_rule_plan, group_by_predicate
from .kernels import RuleKernel, compile_rule_kernel
from .planner import RulePlan, plan_rule


class ChaseError(DatalogError):
    """Raised when the chase cannot proceed (e.g. round limit exceeded)."""


@dataclass(frozen=True, slots=True)
class Contribution:
    """One body homomorphism feeding an aggregate application.

    ``facts`` are the matched body facts for this homomorphism and ``value``
    is the evaluated aggregate argument (e.g. one loan amount feeding a
    ``sum``).
    """

    facts: tuple[Fact, ...]
    value: object
    binding: Mapping[Variable, Term]


@dataclass(frozen=True)
class ConstraintViolation:
    """A satisfied negative constraint body: φ(x̄, ȳ) → ⊥ fired.

    The engine reports violations instead of aborting: supervisory
    applications want the full list, each explainable from its witnesses.
    """

    constraint: Constraint
    binding: Mapping[Variable, Term]
    witnesses: tuple[Fact, ...]

    def __str__(self) -> str:
        facts = ", ".join(str(w) for w in self.witnesses)
        return f"constraint {self.constraint.label} violated by {facts}"


@dataclass(frozen=True)
class ChaseStepRecord:
    """Provenance of a single chase step.

    ``parents`` lists every body fact the step consumed (for aggregates:
    the union over all contributors).  ``contributors`` is non-empty exactly
    for aggregate rules; its length is the number of inputs the aggregation
    combined — the signal that drives the selection between plain and
    "dashed" reasoning paths (paper, Sections 4.1 and 4.3).
    """

    index: int
    round: int
    rule: Rule
    fact: Fact
    parents: tuple[Fact, ...]
    binding: Mapping[Variable, Term]
    contributors: tuple[Contribution, ...] = ()
    aggregate_value: object | None = None

    @property
    def rule_label(self) -> str:
        return self.rule.label

    @property
    def is_aggregate(self) -> bool:
        return bool(self.contributors)

    @property
    def multi_contributor(self) -> bool:
        """Whether the aggregation combined more than one input fact."""
        return len(self.contributors) > 1

    def __str__(self) -> str:
        parents = ", ".join(str(p) for p in self.parents)
        return f"[{self.rule_label}] {parents} => {self.fact}"


@dataclass
class ChaseStats:
    """Aggregated behaviour of one chase run, for reports and tests.

    Everything here is derivable from the trace, but reports and
    regression tests want to assert on chase behaviour (how many rounds,
    which rules fired how often, what got deduplicated) without parsing
    span dumps.  Maintained inline by the engine — plain dict updates,
    cheap enough for the hot loop.
    """

    rounds: int = 0
    strata: int = 0
    rule_firings: dict[str, int] = field(default_factory=dict)
    facts_by_predicate: dict[str, int] = field(default_factory=dict)
    facts_derived: int = 0
    facts_deduplicated: int = 0
    constraint_checks: int = 0
    violations: int = 0
    rounds_per_stratum: list[int] = field(default_factory=list)
    delta_sizes: list[int] = field(default_factory=list)
    #: Per-rule join-plan facts and runtime counters (planned strategy
    #: only): atom order, hoisted conditions, probes/scanned/matches,
    #: kernel_execs.
    plans: dict[str, dict] = field(default_factory=dict)
    plans_compiled: int = 0
    #: Compiled rule kernels (planned strategy): how many closures were
    #: built and how long compilation took, for the stats document.
    kernels_compiled: int = 0
    kernel_compile_s: float = 0.0
    #: Symbol-table size at end of run (distinct interned terms).
    symbols: int = 0

    def record_firing(self, rule_label: str, predicate: str) -> None:
        self.rule_firings[rule_label] = self.rule_firings.get(rule_label, 0) + 1
        self.facts_by_predicate[predicate] = (
            self.facts_by_predicate.get(predicate, 0) + 1
        )
        self.facts_derived += 1

    def snapshot(self) -> dict:
        return {
            "rounds": self.rounds,
            "strata": self.strata,
            "rule_firings": dict(sorted(self.rule_firings.items())),
            "facts_by_predicate": dict(sorted(self.facts_by_predicate.items())),
            "facts_derived": self.facts_derived,
            "facts_deduplicated": self.facts_deduplicated,
            "constraint_checks": self.constraint_checks,
            "violations": self.violations,
            "rounds_per_stratum": list(self.rounds_per_stratum),
            "delta_sizes": list(self.delta_sizes),
            "plans_compiled": self.plans_compiled,
            "kernels_compiled": self.kernels_compiled,
            "kernel_compile_s": self.kernel_compile_s,
            "symbols": self.symbols,
            "plans": {
                label: dict(entry)
                for label, entry in sorted(self.plans.items())
            },
        }


@dataclass
class ChaseResult:
    """Outcome of a chase run: the materialized instance plus provenance."""

    program: Program
    database: Database
    records: list[ChaseStepRecord] = field(default_factory=list)
    derivation: dict[Fact, ChaseStepRecord] = field(default_factory=dict)
    superseded: set[Fact] = field(default_factory=set)
    violations: list[ConstraintViolation] = field(default_factory=list)
    rounds: int = 0
    stats: ChaseStats = field(default_factory=ChaseStats)

    # ------------------------------------------------------------------
    # Queries over the materialized instance
    # ------------------------------------------------------------------
    def facts(self, predicate: str, include_superseded: bool = False) -> tuple[Fact, ...]:
        """The (active) facts of a predicate in the final instance."""
        all_facts = self.database.facts(predicate)
        if include_superseded:
            return all_facts
        return tuple(f for f in all_facts if f not in self.superseded)

    def is_derived(self, current: Fact) -> bool:
        """Whether the fact was produced by a chase step (vs. extensional)."""
        return current in self.derivation

    def record_for(self, current: Fact) -> ChaseStepRecord:
        """The chase step that derived ``current``; raises for EDB facts."""
        record = self.derivation.get(current)
        if record is None:
            raise KeyError(f"{current} was not derived by the chase")
        return record

    def derived_facts(self) -> tuple[Fact, ...]:
        return tuple(record.fact for record in self.records)

    def step_count(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ChaseStepRecord]:
        return iter(self.records)


class ChaseEngine:
    """Runs the chase for a program over a database.

    The engine is stateless between runs; construct once and reuse.

    Parameters
    ----------
    max_rounds:
        Safety valve against non-terminating programs; the paper only
        considers programs whose termination is guaranteed, so hitting the
        limit raises :class:`ChaseError` rather than truncating silently.
    strategy:
        ``"naive"`` re-evaluates every rule against the whole instance in
        every round; ``"semi-naive"`` restricts plain-rule joins to
        homomorphisms touching the previous round's delta — same facts and
        provenance, less join work on recursive workloads;
        ``"planned"`` additionally compiles each rule body into a
        selectivity-ordered hash-join plan at stratum entry
        (:mod:`repro.engine.planner`), then compiles the plan into a
        specialized closure kernel (:mod:`repro.engine.kernels`) that
        joins over the database's interned-id columns, firing matches in
        naive enumeration order so derived facts and provenance stay
        byte-identical to ``naive``;
        ``"parallel"`` partitions the EDB into weakly-connected
        components (:mod:`repro.engine.partition`) and chases each shard
        with the planned strategy — serially in-process or, with
        ``processes`` > 1, across a spawn-based process pool — then
        merges the shards deterministically so records, provenance and
        explanations stay byte-identical to ``planned``.  Programs
        outside the shard-safe fragment fall back to single-shard
        planned, counted by the ``engine.parallel_fallback`` metric.
    processes:
        Process-pool width for the ``parallel`` strategy.  ``None`` or
        ``1`` chases shards serially in-process (no pickling, no spawn
        cost — still useful for parity testing and on one core);
        larger values fan shards out over ``concurrent.futures``.
    """

    #: Supported evaluation strategies.
    STRATEGIES = ("naive", "semi-naive", "planned", "parallel")

    def __init__(
        self,
        max_rounds: int = 10_000,
        strategy: str = "naive",
        processes: int | None = None,
    ):
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown chase strategy {strategy!r}; "
                f"choose from {self.STRATEGIES}"
            )
        self.max_rounds = max_rounds
        self.strategy = strategy
        self.processes = processes

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, program: Program, database: Database) -> ChaseResult:
        """Chase ``database`` with ``program`` until fixpoint.

        The input database is not modified; the result holds a copy that
        includes all derived facts.  Programs with negation are evaluated
        stratum by stratum (stratified semantics); negative constraints
        are checked against the final instance and reported as
        ``result.violations``.
        """
        if self.strategy == "parallel":
            return self._run_parallel(program, database)
        working = database.copy()
        result = ChaseResult(program=program, database=working)
        nulls = NullFactory()
        # Latest fact per (aggregate rule, group key), for supersession.
        aggregate_state: dict[tuple[str, tuple[Term, ...]], Fact] = {}

        if program.has_negation:
            rule_groups = stratify(program).strata
        else:
            rule_groups = (program.rules,)

        stats = result.stats
        flight = obs.current_flight()
        with obs.span(
            "chase.run", program=program.name, strategy=self.strategy
        ) as run_span:
            total_rounds = 0
            chase_phase = (
                flight.phase("chase") if flight is not None else None
            )
            if chase_phase is not None:
                chase_phase.__enter__()
            try:
                for stratum_index, rules in enumerate(rule_groups):
                    with obs.span(
                        "chase.stratum", stratum=stratum_index, rules=len(rules)
                    ) as stratum_span:
                        stratum_rounds = self._run_stratum(
                            rules, result, nulls, aggregate_state, total_rounds
                        )
                        stratum_span.set(rounds=stratum_rounds)
                    stats.rounds_per_stratum.append(stratum_rounds)
                    total_rounds += stratum_rounds
                result.rounds = total_rounds
                stats.rounds = total_rounds
                stats.strata = len(rule_groups)
                with obs.span(
                    "chase.constraints", constraints=len(program.constraints)
                ):
                    self._check_constraints(program, result)
            finally:
                if chase_phase is not None:
                    chase_phase.__exit__(None, None, None)
            stats.violations = len(result.violations)
            stats.symbols = len(working.symbols)
            run_span.set(
                rounds=total_rounds,
                facts_derived=stats.facts_derived,
                violations=stats.violations,
            )
        if flight is not None:
            flight.count("chase_runs")
            flight.count("chase_rounds", stats.rounds)
            flight.count("chase_facts_derived", stats.facts_derived)
            if stats.violations:
                flight.event(
                    "constraint_violations",
                    program=program.name,
                    violations=stats.violations,
                )
        self._flush_metrics(stats)
        return result

    def update(
        self,
        program: Program,
        previous: ChaseResult,
        adds: tuple[Fact, ...] | list[Fact] = (),
        retracts: tuple[Fact, ...] | list[Fact] = (),
    ):
        """Apply an extensional add/retract delta to a previous result.

        Returns an :class:`repro.engine.incremental.UpdateOutcome` whose
        ``result`` is byte-identical (facts, records, explanations) to a
        fresh :meth:`run` over the post-delta EDB.  The delta is replayed
        incrementally (:mod:`repro.engine.incremental`) at a cost
        proportional to its consequences; programs outside the replayable
        fragment (existential rules) fall back to a full chase
        transparently.
        """
        from .incremental import (
            IncrementalFallback,
            UpdateOutcome,
            flush_update_metrics,
            incremental_update,
            resolve_delta,
        )

        try:
            return incremental_update(
                program, previous, adds, retracts, max_rounds=self.max_rounds
            )
        except IncrementalFallback:
            obs.incr("incremental.fallbacks")
            started = time.perf_counter()
            new_edb, added, retracted = resolve_delta(
                previous, adds, retracts
            )
            if not added and not retracted:
                return UpdateOutcome(
                    result=previous, mode="noop", added=(), retracted=()
                )
            result = self.run(program, Database(new_edb))
            outcome = UpdateOutcome(
                result=result,
                mode="full",
                added=added,
                retracted=retracted,
                elapsed_s=time.perf_counter() - started,
            )
            flush_update_metrics(outcome)
            return outcome

    def _run_parallel(self, program: Program, database: Database) -> ChaseResult:
        """Shard-parallel chase: partition, chase per shard, merge.

        Falls back to single-shard ``planned`` (same engine settings)
        when the program is outside the shard-safe fragment or the EDB
        forms a single component — the fallback is a correctness choice,
        never an error, and is visible through the
        ``engine.parallel_fallback`` / ``engine.parallel_single_shard``
        counters and a flight event.
        """
        from .partition import (
            analyze_program,
            merge_shard_results,
            partition_database,
            run_shard,
            _run_shard_payload,
        )

        flight = obs.current_flight()
        analysis = analyze_program(program, database)
        if not analysis.shardable:
            obs.incr("engine.parallel_fallback")
            if flight is not None:
                flight.event(
                    "parallel_fallback",
                    program=program.name,
                    reasons=list(analysis.reasons[:4]),
                )
            return self._single_shard_engine().run(program, database)
        partition = partition_database(database, analysis)
        if partition.count <= 1:
            obs.incr("engine.parallel_single_shard")
            return self._single_shard_engine().run(program, database)

        stats: ChaseStats
        with obs.span(
            "chase.run",
            program=program.name,
            strategy=self.strategy,
            shards=partition.count,
        ) as run_span:
            chase_phase = (
                flight.phase("chase") if flight is not None else None
            )
            if chase_phase is not None:
                chase_phase.__enter__()
            try:
                width = min(self.processes or 1, partition.count)
                with obs.span(
                    "chase.shards", shards=partition.count, processes=width
                ):
                    if width > 1:
                        import multiprocessing
                        from concurrent.futures import ProcessPoolExecutor

                        payloads = [
                            (program, facts, self.max_rounds)
                            for facts in partition.shards
                        ]
                        with ProcessPoolExecutor(
                            max_workers=width,
                            mp_context=multiprocessing.get_context("spawn"),
                        ) as pool:
                            outcomes = list(
                                pool.map(_run_shard_payload, payloads)
                            )
                    else:
                        outcomes = [
                            run_shard(program, facts, self.max_rounds)
                            for facts in partition.shards
                        ]
                with obs.span("chase.merge", shards=partition.count):
                    result = merge_shard_results(program, database, outcomes)
                stats = result.stats
                with obs.span(
                    "chase.constraints", constraints=len(program.constraints)
                ):
                    self._check_constraints(program, result)
            finally:
                if chase_phase is not None:
                    chase_phase.__exit__(None, None, None)
            stats.violations = len(result.violations)
            stats.symbols = len(result.database.symbols)
            run_span.set(
                rounds=result.rounds,
                facts_derived=stats.facts_derived,
                violations=stats.violations,
            )
        obs.incr("engine.parallel_runs")
        obs.set_gauge("engine.parallel_shards", partition.count)
        if flight is not None:
            flight.count("chase_runs")
            flight.count("chase_rounds", stats.rounds)
            flight.count("chase_facts_derived", stats.facts_derived)
            if stats.violations:
                flight.event(
                    "constraint_violations",
                    program=program.name,
                    violations=stats.violations,
                )
        self._flush_metrics(stats)
        return result

    def _single_shard_engine(self) -> "ChaseEngine":
        return ChaseEngine(max_rounds=self.max_rounds, strategy="planned")

    @staticmethod
    def _flush_metrics(stats: ChaseStats) -> None:
        """Publish one run's aggregate counts to the ambient registry.

        Flushed once per run (not per fact) so the hot loop only touches
        the lock-free :class:`ChaseStats` dicts.
        """
        obs.incr("chase.runs")
        obs.incr("chase.facts_derived", stats.facts_derived)
        obs.incr("chase.facts_deduplicated", stats.facts_deduplicated)
        obs.incr("chase.constraint_checks", stats.constraint_checks)
        obs.incr("chase.constraint_violations", stats.violations)
        for label, firings in stats.rule_firings.items():
            obs.incr(f"chase.firings.{label}", firings)
        obs.observe("chase.rounds", stats.rounds)
        obs.set_gauge("chase.symbols", stats.symbols)
        if stats.kernels_compiled:
            obs.incr("chase.kernels_compiled", stats.kernels_compiled)
            obs.observe("chase.kernel_compile_s", stats.kernel_compile_s)
            obs.incr(
                "chase.kernel_execs",
                sum(
                    entry.get("kernel_execs", 0)
                    for entry in stats.plans.values()
                ),
            )
        if stats.plans_compiled:
            obs.incr("chase.plan_compiled", stats.plans_compiled)
            for key in ("probes", "scanned", "matches", "pruned"):
                total = sum(
                    entry.get(key, 0) for entry in stats.plans.values()
                )
                obs.incr(f"chase.plan_{key}", total)
            obs.incr(
                "chase.plan_hoisted_conditions",
                sum(
                    entry.get("hoisted_conditions", 0)
                    for entry in stats.plans.values()
                ),
            )

    def _run_stratum(
        self,
        rules,
        result: ChaseResult,
        nulls: NullFactory,
        aggregate_state: dict[tuple[str, tuple[Term, ...]], Fact],
        rounds_so_far: int,
    ) -> int:
        if self.strategy == "semi-naive":
            return self._run_stratum_semi_naive(
                rules, result, nulls, aggregate_state, rounds_so_far
            )
        if self.strategy == "planned":
            return self._run_stratum_planned(
                rules, result, nulls, aggregate_state, rounds_so_far
            )
        for round_number in range(1, self.max_rounds + 1):
            changed = False
            for rule in rules:
                if rule.has_aggregate:
                    changed |= self._apply_aggregate_rule(
                        rule, result, aggregate_state,
                        rounds_so_far + round_number,
                    )
                else:
                    changed |= self._apply_plain_rule(
                        rule, result, nulls, rounds_so_far + round_number
                    )
            if not changed:
                return round_number
        raise ChaseError(
            f"chase did not reach fixpoint within {self.max_rounds} rounds "
            f"for program {result.program.name!r}"
        )

    def _run_stratum_semi_naive(
        self,
        rules,
        result: ChaseResult,
        nulls: NullFactory,
        aggregate_state: dict[tuple[str, tuple[Term, ...]], Fact],
        rounds_so_far: int,
    ) -> int:
        """Semi-naive evaluation: after the first round, a plain rule only
        re-joins homomorphisms that touch at least one fact derived in the
        previous round (the delta).  Aggregate rules are re-evaluated only
        when the delta intersects their body predicates (their set-at-a-
        time semantics needs the whole group anyway)."""
        delta: frozenset[Fact] = frozenset(result.database.facts())
        for round_number in range(1, self.max_rounds + 1):
            before = len(result.records)
            delta_predicates = {current.predicate for current in delta}
            for rule in rules:
                touched = any(
                    predicate in delta_predicates
                    for predicate in rule.body_predicates()
                )
                if not touched and round_number > 1:
                    continue
                if rule.has_aggregate:
                    self._apply_aggregate_rule(
                        rule, result, aggregate_state,
                        rounds_so_far + round_number,
                    )
                else:
                    self._apply_plain_rule(
                        rule, result, nulls, rounds_so_far + round_number,
                        delta=None if round_number == 1 else delta,
                    )
            new_records = result.records[before:]
            result.stats.delta_sizes.append(len(new_records))
            if not new_records:
                return round_number
            delta = frozenset(record.fact for record in new_records)
        raise ChaseError(
            f"chase did not reach fixpoint within {self.max_rounds} rounds "
            f"for program {result.program.name!r}"
        )

    def _run_stratum_planned(
        self,
        rules,
        result: ChaseResult,
        nulls: NullFactory,
        aggregate_state: dict[tuple[str, tuple[Term, ...]], Fact],
        rounds_so_far: int,
    ) -> int:
        """Delta-driven evaluation over compiled join plans.

        Each rule body is compiled once at stratum entry
        (:func:`repro.engine.planner.plan_rule`, cardinalities read from
        the live instance), then lowered to a closure kernel
        (:func:`repro.engine.kernels.compile_rule_kernel`) that is reused
        every round — kernels close over live column and symbol-table
        views, so database growth never invalidates them.  Unlike the
        classic semi-naive round delta, each rule keeps a **rolling
        window**: the facts added since that rule's own last match
        materialization.  Naive evaluation lets a rule see facts fired by
        earlier rules *within the same round*, so a per-round delta would
        discover some derivations one round late; the rolling window
        reproduces naive's visibility — and hence round numbers, firing
        order and provenance — exactly, while still never re-joining old
        facts against old facts.
        """
        stats = result.stats
        plans: list[RulePlan] = []
        kernels: list[RuleKernel] = []
        with obs.span("chase.plan", rules=len(rules)):
            for rule in rules:
                compiled = plan_rule(rule, result.database)
                plans.append(compiled)
                stats.plans_compiled += 1
                entry = stats.plans.setdefault(rule.label, {})
                entry.update(compiled.snapshot())
                started = time.perf_counter()
                kernels.append(
                    compile_rule_kernel(compiled, result.database)
                )
                stats.kernel_compile_s += time.perf_counter() - started
                stats.kernels_compiled += 1
        # Insertion-ordered view of the instance; windows are slices of it.
        timeline: list[Fact] = list(result.database.facts())
        last_seen = [0] * len(rules)
        body_predicates = [frozenset(rule.body_predicates()) for rule in rules]
        for round_number in range(1, self.max_rounds + 1):
            before_round = len(result.records)
            for index, (rule, compiled, kernel) in enumerate(
                zip(rules, plans, kernels)
            ):
                seen_at_start = len(timeline)
                window = timeline[last_seen[index]:]
                last_seen[index] = seen_at_start
                delta_map: dict[str, list[Fact]] | None = None
                if round_number > 1:
                    if not window:
                        continue
                    delta_map = group_by_predicate(window)
                    if not any(
                        predicate in delta_map
                        for predicate in body_predicates[index]
                    ):
                        continue
                before_rule = len(result.records)
                if rule.has_aggregate:
                    # Aggregates are always re-evaluated whole (their
                    # set-at-a-time semantics needs every group member),
                    # but only when the window touches their body.
                    self._apply_aggregate_rule(
                        rule, result, aggregate_state,
                        rounds_so_far + round_number, plan=compiled,
                        kernel=kernel,
                    )
                else:
                    self._apply_plain_rule(
                        rule, result, nulls, rounds_so_far + round_number,
                        plan=compiled, delta_map=delta_map, kernel=kernel,
                    )
                timeline.extend(
                    record.fact for record in result.records[before_rule:]
                )
            new_this_round = len(result.records) - before_round
            stats.delta_sizes.append(new_this_round)
            if not new_this_round:
                return round_number
        raise ChaseError(
            f"chase did not reach fixpoint within {self.max_rounds} rounds "
            f"for program {result.program.name!r}"
        )

    # ------------------------------------------------------------------
    # Negative constraints
    # ------------------------------------------------------------------
    def _check_constraints(self, program: Program, result: ChaseResult) -> None:
        exclude = frozenset(result.superseded)
        for constraint in program.constraints:
            result.stats.constraint_checks += 1
            for binding, used in self._match_conjunction(
                constraint.body, constraint.conditions, constraint.negated,
                result, exclude,
            ):
                result.violations.append(
                    ConstraintViolation(
                        constraint=constraint,
                        binding=dict(binding),
                        witnesses=used,
                    )
                )

    # ------------------------------------------------------------------
    # Body matching
    # ------------------------------------------------------------------
    def _body_matches(
        self,
        rule: Rule,
        result: ChaseResult,
        conditions: tuple[Comparison, ...],
        delta: frozenset[Fact] | None = None,
        plan: RulePlan | None = None,
        delta_map: dict[str, list[Fact]] | None = None,
        kernel: RuleKernel | None = None,
    ) -> Iterator[tuple[MutableSubstitution, tuple[Fact, ...]]]:
        """Enumerate homomorphisms of the rule body into the active facts,
        filtered by the given (pre-aggregation) conditions and by the
        rule's negated atoms (no matching active fact may exist).

        With ``delta``, only homomorphisms using at least one delta fact
        are produced (semi-naive evaluation), each exactly once.  With a
        compiled ``plan``, the kernel executor replaces the
        tuple-at-a-time walk (conditions and delta restriction are baked
        into the compiled closures; ``delta_map`` carries the delta
        grouped by predicate; ``kernel`` reuses the stratum's compiled
        kernel) — matches come back in naive enumeration order.
        """
        exclude = frozenset(result.superseded)
        if plan is not None:
            yield from execute_rule_plan(
                plan, result.database, exclude, delta_map,
                stats=result.stats.plans.get(rule.label),
                kernel=kernel,
            )
            return
        if delta is None:
            yield from self._match_conjunction(
                rule.body, conditions, rule.negated, result, exclude,
                assignments=rule.assignments,
            )
            return
        seen: set[tuple[Fact, ...]] = set()
        for pivot in range(len(rule.body)):
            if not any(f.predicate == rule.body[pivot].predicate for f in delta):
                continue
            for binding, used in self._match_conjunction(
                rule.body, conditions, rule.negated, result, exclude,
                delta=delta, pivot=pivot, assignments=rule.assignments,
            ):
                if used not in seen:
                    seen.add(used)
                    yield binding, used

    def _match_conjunction(
        self,
        atoms: tuple[Atom, ...],
        conditions: tuple[Comparison, ...],
        negated: tuple[Atom, ...],
        result: ChaseResult,
        exclude: frozenset[Fact],
        delta: frozenset[Fact] | None = None,
        pivot: int | None = None,
        assignments: tuple = (),
    ) -> Iterator[tuple[MutableSubstitution, tuple[Fact, ...]]]:
        database = result.database

        def negation_holds(binding: MutableSubstitution) -> bool:
            for pattern in negated:
                if next(database.match(pattern, binding, exclude), None) is not None:
                    return False
            return True

        def recurse(
            index: int, binding: MutableSubstitution, used: tuple[Fact, ...]
        ) -> Iterator[tuple[MutableSubstitution, tuple[Fact, ...]]]:
            if index == len(atoms):
                for variable, expression in assignments:
                    binding[variable] = evaluate_assignment(
                        expression, binding
                    )
                if all(condition.holds(binding) for condition in conditions):
                    if negation_holds(binding):
                        yield binding, used
                return
            pattern = atoms[index]
            for matched, extended in database.match(pattern, binding, exclude):
                if index == pivot and delta is not None and matched not in delta:
                    continue
                yield from recurse(index + 1, extended, used + (matched,))

        yield from recurse(0, {}, ())

    # ------------------------------------------------------------------
    # Plain (non-aggregate) rules
    # ------------------------------------------------------------------
    def _apply_plain_rule(
        self,
        rule: Rule,
        result: ChaseResult,
        nulls: NullFactory,
        round_number: int,
        delta: frozenset[Fact] | None = None,
        plan: RulePlan | None = None,
        delta_map: dict[str, list[Fact]] | None = None,
        kernel: RuleKernel | None = None,
    ) -> bool:
        changed = False
        # Materialize matches first: firing must not see this round's output.
        matches = list(
            self._body_matches(
                rule, result, rule.conditions, delta,
                plan=plan, delta_map=delta_map, kernel=kernel,
            )
        )
        for binding, used in matches:
            if rule.is_existential:
                # Restricted chase: skip when the head is already satisfied
                # (indexed lookup; pattern variables are the existentials).
                head_pattern = apply_substitution(rule.head, binding)
                if next(result.database.match(head_pattern), None) is not None:
                    continue
                for variable in rule.existentials:
                    binding[variable] = nulls.fresh()
            derived = apply_substitution(rule.head, binding)
            if not derived.is_fact():
                raise EvaluationError(
                    f"rule {rule.label} produced non-ground head {derived}"
                )
            if result.database.add(derived):
                changed = True
                record = ChaseStepRecord(
                    index=len(result.records),
                    round=round_number,
                    rule=rule,
                    fact=derived,
                    parents=used,
                    binding=dict(binding),
                )
                result.records.append(record)
                result.derivation[derived] = record
                result.stats.record_firing(rule.label, derived.predicate)
            else:
                result.stats.facts_deduplicated += 1
        return changed

    # ------------------------------------------------------------------
    # Aggregate rules
    # ------------------------------------------------------------------
    def _apply_aggregate_rule(
        self,
        rule: Rule,
        result: ChaseResult,
        aggregate_state: dict[tuple[str, tuple[Term, ...]], Fact],
        round_number: int,
        plan: RulePlan | None = None,
        kernel: RuleKernel | None = None,
    ) -> bool:
        aggregate = rule.aggregate
        assert aggregate is not None
        pre = tuple(
            c for c in rule.conditions if aggregate.result not in c.variables()
        )
        post = tuple(
            c for c in rule.conditions if aggregate.result in c.variables()
        )
        # Group by the head variables plus any body variable a
        # post-aggregation condition needs (e.g. the creditor's capital p2
        # in σ7's "l > p2") — those must be fixed within a group for the
        # condition to be evaluable.
        key_vars = list(aggregate.group_by)
        for condition in post:
            for variable in sorted(condition.variables(), key=lambda v: v.name):
                if variable != aggregate.result and variable not in key_vars:
                    key_vars.append(variable)

        groups: dict[tuple[Term, ...], list[Contribution]] = {}
        for binding, used in self._body_matches(
            rule, result, pre, plan=plan, kernel=kernel
        ):
            key = tuple(binding[v] for v in key_vars)
            value = evaluate_expression(aggregate.argument, binding)
            groups.setdefault(key, []).append(
                Contribution(facts=used, value=value, binding=dict(binding))
            )

        changed = False
        for key, contributions in groups.items():
            value = aggregate.evaluate(c.value for c in contributions)
            group_binding: MutableSubstitution = dict(zip(key_vars, key))
            group_binding[aggregate.result] = Constant(value)
            if not all(condition.holds(group_binding) for condition in post):
                continue
            derived = apply_substitution(rule.head, group_binding)
            if not derived.is_fact():
                raise EvaluationError(
                    f"aggregate rule {rule.label} produced non-ground head "
                    f"{derived}; check that all head variables are grouped"
                )
            state_key = (rule.label, key)
            previous = aggregate_state.get(state_key)
            if derived == previous:
                continue
            if result.database.add(derived):
                changed = True
                parents = self._dedupe_parents(contributions)
                record = ChaseStepRecord(
                    index=len(result.records),
                    round=round_number,
                    rule=rule,
                    fact=derived,
                    parents=parents,
                    binding=group_binding,
                    contributors=tuple(contributions),
                    aggregate_value=value,
                )
                result.records.append(record)
                result.derivation[derived] = record
                result.stats.record_firing(rule.label, derived.predicate)
                # Monotonic supersession: the refreshed aggregate replaces
                # the stale value for future rule applications.
                if previous is not None and previous != derived:
                    result.superseded.add(previous)
                aggregate_state[state_key] = derived
            else:
                result.stats.facts_deduplicated += 1
        return changed

    @staticmethod
    def _dedupe_parents(contributions: list[Contribution]) -> tuple[Fact, ...]:
        seen: dict[Fact, None] = {}
        for contribution in contributions:
            for parent in contribution.facts:
                seen.setdefault(parent, None)
        return tuple(seen)


def chase(
    program: Program,
    database: Database,
    max_rounds: int = 10_000,
    strategy: str = "naive",
) -> ChaseResult:
    """Convenience wrapper: run the chase with a fresh engine."""
    return ChaseEngine(max_rounds=max_rounds, strategy=strategy).run(
        program, database
    )
