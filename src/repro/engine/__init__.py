"""Chase-based reasoning engine with full provenance.

This subpackage is the reproduction's stand-in for the Vadalog system: it
materializes Vadalog programs over fact databases with the chase procedure,
recording per-step provenance from which chase graphs, proof DAGs and
derivation spines are extracted.
"""

from .chase import (
    ChaseEngine,
    ChaseError,
    ChaseResult,
    ChaseStepRecord,
    ConstraintViolation,
    Contribution,
    chase,
)
from .chase_graph import ChaseEdge, ChaseGraph
from .database import Database
from .partition import (
    Partition,
    PartitionAnalysis,
    ShardOutcome,
    analyze_program,
    merge_shard_results,
    partition_database,
    run_shard,
)
from .join import execute_rule_plan
from .kernels import RuleKernel, compile_rule_kernel
from .planner import JoinPlan, JoinStep, RulePlan, plan_conjunction, plan_rule
from .provenance import DerivationSpine, ProvenanceTracker, SpineStep
from .provenance_index import ProvenanceIndex
from .reasoning import ReasoningResult, reason
from .symbols import SymbolTable

__all__ = [
    "ChaseEdge",
    "ChaseEngine",
    "ChaseError",
    "ChaseGraph",
    "ChaseResult",
    "ChaseStepRecord",
    "ConstraintViolation",
    "Contribution",
    "Database",
    "DerivationSpine",
    "JoinPlan",
    "JoinStep",
    "Partition",
    "PartitionAnalysis",
    "ProvenanceIndex",
    "ProvenanceTracker",
    "ReasoningResult",
    "RuleKernel",
    "RulePlan",
    "ShardOutcome",
    "SpineStep",
    "SymbolTable",
    "analyze_program",
    "chase",
    "compile_rule_kernel",
    "execute_rule_plan",
    "merge_shard_results",
    "partition_database",
    "plan_conjunction",
    "plan_rule",
    "reason",
    "run_shard",
]
