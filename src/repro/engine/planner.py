"""Per-rule join planning for the chase's ``planned`` strategy.

The tuple-at-a-time engine (:mod:`repro.engine.chase`) matches body atoms
in written order, re-probing single-constant indexes per candidate.  This
module compiles each rule body into a :class:`JoinPlan` instead:

* **atom ordering** — atoms are reordered greedily by estimated
  selectivity: at each step the planner picks the remaining atom with the
  highest bound-position score (constants count double, already-bound
  variables once — constants > bound variables > free atoms), breaking
  ties by the predicate's current cardinality and then by the original
  body position (determinism);
* **condition / assignment / negation hoisting** — every comparison,
  body assignment and negated-atom check is attached to the earliest step
  at which its variables are bound, so non-matching partial bindings are
  pruned before further joins instead of after the full cartesian walk;
* **probe compilation** — each step pre-computes which argument positions
  form the hash-join key (constants plus bound variables), which
  positions bind new variables, and which repeat a variable bound earlier
  in the same atom (equality checks), so the executor
  (:mod:`repro.engine.join`) never calls the generic matcher.

Plans are compiled at stratum entry (cardinalities are read from the live
:class:`~repro.engine.database.Database`) and each plain rule also gets
one **delta variant** per body atom for semi-naive evaluation: the pivot
atom is forced to the front of the order (the delta is small) and
restricted to delta facts at execution time.

Planning is pure computation over the rule structure — execution,
ordering guarantees and provenance parity live in
:mod:`repro.engine.join`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.analysis import atom_binding_profile, canonical_binding_order
from ..datalog.atoms import Atom
from ..datalog.conditions import Comparison, Expression, expression_variables
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Term, Variable
from .database import Database


@dataclass(frozen=True, slots=True)
class JoinStep:
    """One hash-join step of a compiled plan.

    ``probe_positions``/``probe_terms`` describe the composite-index key:
    the term is either a :class:`Constant` (fixed for the whole run) or a
    :class:`Variable` already bound by earlier steps (looked up per
    partial binding).  ``bind_positions`` are first occurrences of new
    variables; ``check_positions`` are repeated occurrences of variables
    first bound *within this atom*, verified by equality after binding.
    """

    atom_index: int
    atom: Atom
    probe_positions: tuple[int, ...]
    probe_terms: tuple[Term, ...]
    bind_positions: tuple[tuple[int, Variable], ...]
    check_positions: tuple[tuple[int, Variable], ...]
    assignments: tuple[tuple[Variable, Expression], ...]
    conditions: tuple[Comparison, ...]
    negated: tuple[Atom, ...]
    #: Predicate cardinality observed at planning time (observability).
    estimated_cardinality: int = 0


@dataclass(frozen=True, slots=True)
class JoinPlan:
    """A fully ordered execution plan for one rule body conjunction."""

    rule_label: str
    steps: tuple[JoinStep, ...]
    #: Original body index of the atom executed at each step.
    order: tuple[int, ...]
    #: ``step_of_atom[original_index]`` = step executing that atom, used
    #: to restore the body-order parents tuple the provenance expects.
    step_of_atom: tuple[int, ...]
    #: Naive first-binding order of all rule variables (see
    #: :func:`repro.datalog.analysis.canonical_binding_order`).
    canonical_variables: tuple[Variable, ...]
    #: Body index of the delta-restricted atom, or ``None`` for the full plan.
    pivot: int | None = None

    @property
    def hoisted_conditions(self) -> int:
        """Conditions evaluated before the final step."""
        return sum(len(step.conditions) for step in self.steps[:-1])

    @property
    def hoisted_assignments(self) -> int:
        return sum(len(step.assignments) for step in self.steps[:-1])

    def describe(self) -> str:
        parts = []
        for step in self.steps:
            probe = ",".join(str(p) for p in step.probe_positions)
            extras = []
            if step.assignments:
                extras.append(f"{len(step.assignments)} assign")
            if step.conditions:
                extras.append(f"{len(step.conditions)} cond")
            if step.negated:
                extras.append(f"{len(step.negated)} neg")
            suffix = f" [{', '.join(extras)}]" if extras else ""
            parts.append(f"{step.atom.predicate}({probe}){suffix}")
        pivot = f" pivot={self.pivot}" if self.pivot is not None else ""
        return f"{self.rule_label}: " + " ⋈ ".join(parts) + pivot


@dataclass(frozen=True)
class RulePlan:
    """A rule's full plan plus its per-pivot delta variants."""

    rule: Rule
    full: JoinPlan
    #: One variant per body atom (same length as the body); aggregates,
    #: whose groups are always re-evaluated whole, carry no variants.
    delta_variants: tuple[JoinPlan, ...] = ()

    def snapshot(self) -> dict:
        """Static plan facts for the ``repro-stats/1`` document."""
        return {
            "order": list(self.full.order),
            "steps": len(self.full.steps),
            "hoisted_conditions": self.full.hoisted_conditions,
            "hoisted_assignments": self.full.hoisted_assignments,
            "delta_variants": len(self.delta_variants),
            "plan": self.full.describe(),
        }


def _pre_aggregate_conditions(rule: Rule) -> tuple[Comparison, ...]:
    """The conditions evaluable on body bindings (aggregate result excluded)."""
    aggregate = rule.aggregate
    if aggregate is None:
        return rule.conditions
    return tuple(
        c for c in rule.conditions if aggregate.result not in c.variables()
    )


def _choose_order(
    atoms: tuple[Atom, ...], database: Database, pivot: int | None
) -> tuple[int, ...]:
    """Greedy selectivity ordering of the body atoms.

    Rank at each step: bound-position score descending (constants weighted
    2, bound variables 1), predicate cardinality ascending, original body
    position ascending.  A ``pivot`` atom is forced to the front: under
    semi-naive evaluation it enumerates only the (small) delta.
    """
    remaining = list(range(len(atoms)))
    order: list[int] = []
    bound: set[Variable] = set()
    if pivot is not None:
        remaining.remove(pivot)
        order.append(pivot)
        bound.update(atoms[pivot].variables())

    def rank(index: int) -> tuple[int, int, int]:
        constants, bound_positions, _free = atom_binding_profile(
            atoms[index], bound
        )
        score = 2 * constants + bound_positions
        return (-score, database.count(atoms[index].predicate), index)

    while remaining:
        best = min(remaining, key=rank)
        remaining.remove(best)
        order.append(best)
        bound.update(atoms[best].variables())
    return tuple(order)


def _compile_steps(
    rule: Rule,
    conditions: tuple[Comparison, ...],
    order: tuple[int, ...],
    database: Database,
) -> tuple[JoinStep, ...]:
    """Attach probes, hoisted conditions/assignments/negations to each step."""
    bound: set[Variable] = set()
    pending_assignments = list(rule.assignments)
    pending_conditions = list(conditions)
    pending_negated = list(rule.negated)
    steps: list[JoinStep] = []
    for atom_index in order:
        atom = rule.body[atom_index]
        probe_positions: list[int] = []
        probe_terms: list[Term] = []
        bind_positions: list[tuple[int, Variable]] = []
        check_positions: list[tuple[int, Variable]] = []
        new_here: set[Variable] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term in bound:
                    probe_positions.append(position)
                    probe_terms.append(term)
                elif term in new_here:
                    check_positions.append((position, term))
                else:
                    new_here.add(term)
                    bind_positions.append((position, term))
            else:
                probe_positions.append(position)
                probe_terms.append(term)
        bound.update(new_here)

        # Assignments hoist prefix-greedily (later ones may read earlier
        # targets); each hoisted target may unlock further assignments
        # and conditions at this same step.
        step_assignments: list[tuple[Variable, Expression]] = []
        while pending_assignments:
            variable, expression = pending_assignments[0]
            if not set(expression_variables(expression)) <= bound:
                break
            pending_assignments.pop(0)
            step_assignments.append((variable, expression))
            bound.add(variable)

        step_conditions = [
            c for c in pending_conditions if c.variables() <= bound
        ]
        for condition in step_conditions:
            pending_conditions.remove(condition)
        step_negated = [
            a for a in pending_negated if a.variable_set() <= bound
        ]
        for negated_atom in step_negated:
            pending_negated.remove(negated_atom)

        steps.append(
            JoinStep(
                atom_index=atom_index,
                atom=atom,
                probe_positions=tuple(probe_positions),
                probe_terms=tuple(probe_terms),
                bind_positions=tuple(bind_positions),
                check_positions=tuple(check_positions),
                assignments=tuple(step_assignments),
                conditions=tuple(step_conditions),
                negated=tuple(step_negated),
                estimated_cardinality=database.count(atom.predicate),
            )
        )
    # Safety (rules.Rule) guarantees every variable is body-bound, so
    # nothing can remain pending after the last step.
    assert not pending_assignments and not pending_conditions, (
        f"rule {rule.label}: unplaceable conditions/assignments"
    )
    return tuple(steps)


def plan_conjunction(
    rule: Rule,
    database: Database,
    conditions: tuple[Comparison, ...],
    pivot: int | None = None,
) -> JoinPlan:
    """Compile one ordered plan for the rule body (optionally delta-pivoted)."""
    order = _choose_order(rule.body, database, pivot)
    steps = _compile_steps(rule, conditions, order, database)
    step_of_atom = [0] * len(order)
    for step_index, atom_index in enumerate(order):
        step_of_atom[atom_index] = step_index
    return JoinPlan(
        rule_label=rule.label,
        steps=steps,
        order=order,
        step_of_atom=tuple(step_of_atom),
        canonical_variables=canonical_binding_order(rule),
        pivot=pivot,
    )


def plan_rule(rule: Rule, database: Database) -> RulePlan:
    """Compile a rule's full plan and (for plain rules) its delta variants.

    Aggregate plans are built over the *pre-aggregation* conditions only;
    post-aggregation conditions need the aggregate result and stay with
    the engine's group evaluation.
    """
    conditions = _pre_aggregate_conditions(rule)
    full = plan_conjunction(rule, database, conditions)
    if rule.has_aggregate:
        return RulePlan(rule=rule, full=full)
    variants = tuple(
        plan_conjunction(rule, database, conditions, pivot=index)
        for index in range(len(rule.body))
    )
    return RulePlan(rule=rule, full=full, delta_variants=variants)
