"""Simulated-LLM substrate.

Offline, deterministic stand-in for the ChatGPT usage of the paper: a
rule-based rewriting engine (paraphrase / summary / rephrase) plus a
calibrated omission model reproducing the length-dependent information
loss of Section 6.3.
"""

from ..resilience.faults import FaultInjectingLLM
from .client import (
    LLMClient,
    PARAPHRASE_PROMPT,
    PermanentLLMError,
    PromptKind,
    REPHRASE_PROMPT,
    SUMMARY_PROMPT,
    TransientLLMError,
    classify_prompt,
)
from .omission import (
    OmissionModel,
    OmissionProfile,
    PARAPHRASE_PROFILE,
    REPHRASE_PROFILE,
    SUMMARY_PROFILE,
)
from .rewriting import ParsedSentence, RewritingEngine, parse_sentence, split_sentences
from .simulated import LLMUsage, SimulatedLLM

__all__ = [
    "FaultInjectingLLM",
    "LLMClient",
    "LLMUsage",
    "PermanentLLMError",
    "TransientLLMError",
    "OmissionModel",
    "OmissionProfile",
    "PARAPHRASE_PROFILE",
    "PARAPHRASE_PROMPT",
    "ParsedSentence",
    "PromptKind",
    "REPHRASE_PROFILE",
    "REPHRASE_PROMPT",
    "RewritingEngine",
    "SUMMARY_PROFILE",
    "SUMMARY_PROMPT",
    "SimulatedLLM",
    "classify_prompt",
    "parse_sentence",
    "split_sentences",
]
