"""Deterministic sentence-rewriting engine.

This module is the linguistic heart of the simulated LLM: a rule-based
rewriter that turns the verbalizer's rigid *"Since ..., then ..."* prose
into the kind of fluent text an instruction-tuned model produces when asked
to rephrase, paraphrase or summarize.

It understands the verbalizer's sentence shape (body clauses joined by
", and ", an optional aggregation clause introduced by ", with ", a head
introduced by ", then ") and rewrites at three levels:

* **sentence patterns** — varied connective frames ("Because ..., ...",
  "..., as ...", "...; as a result, ...") chosen pseudo-randomly but
  deterministically from a seeded RNG;
* **lexical variation** — operator phrases and domain verbs swapped for
  synonyms ("is higher than" → "exceeds");
* **discourse compression** (summaries) — clauses already stated verbatim
  earlier in the text are dropped, head restatements removed.

By construction the reliable rewriter never deletes a ``<token>`` or a
constant that is not a verbatim repetition — omissions are injected
separately by :mod:`repro.llm.omission`, which models the LLM failure mode
the paper studies.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")

#: Synonym pools for lexical variation.  Every alternative preserves the
#: surrounding tokens, so rewriting is always guard-safe.
_SYNONYMS: dict[str, tuple[str, ...]] = {
    "is higher than": ("is higher than", "exceeds", "is above", "is greater than"),
    "is lower than": ("is lower than", "falls below", "is under", "does not reach"),
    "is at least": ("is at least", "is no less than"),
    "is at most": ("is at most", "is no more than"),
    "is in default": ("is in default", "defaults", "goes into default"),
    "is given by the sum of": (
        "is given by the sum of",
        "results from adding up",
        "is the total of",
    ),
    "amounting to": ("amounting to", "of", "worth"),
}

_PARAPHRASE_FRAMES = (
    "Because {body}, {head}.",
    "Given that {body}, {head}.",
    "{Body}; as a result, {head}.",
    "{Body}, and therefore {head}.",
    "As {body}, {head}.",
)

_SUMMARY_FRAMES = (
    "{body}, so {head}.",
    "{body}; hence {head}.",
    "{body} — thus {head}.",
)


@dataclass(frozen=True)
class ParsedSentence:
    """A verbalizer sentence decomposed into body clauses and head."""

    clauses: tuple[str, ...]
    head: str
    raw: str

    @property
    def is_canonical(self) -> bool:
        """Whether the sentence had the 'Since ..., then ...' shape."""
        return bool(self.head)


def split_sentences(text: str) -> list[str]:
    return [part for part in _SENTENCE_RE.split(text.strip()) if part]


def parse_sentence(sentence: str) -> ParsedSentence:
    """Decompose one sentence produced by the verbalizer.

    Sentences not matching the canonical shape are passed through whole
    (clauses empty, head empty) — the rewriter leaves them untouched.
    """
    stripped = sentence.strip().rstrip(".")
    if not stripped.lower().startswith("since "):
        return ParsedSentence((), "", sentence.strip())
    remainder = stripped[len("since "):]
    if ", then " not in remainder:
        return ParsedSentence((), "", sentence.strip())
    body, head = remainder.rsplit(", then ", 1)
    clauses: list[str] = []
    for part in body.split(", and "):
        for index, sub in enumerate(part.split(", with ")):
            sub = sub.strip()
            if not sub:
                continue
            if index > 0 and " given by " in sub and " is given by " not in sub:
                # ", with <e> given by ..." loses its "with" when the
                # clause is re-framed; restore grammaticality.
                sub = sub.replace(" given by ", " is given by ", 1)
            clauses.append(sub)
    return ParsedSentence(tuple(clauses), head.strip(), sentence.strip())


def _capitalize(text: str) -> str:
    for index, char in enumerate(text):
        if char.isalpha():
            return text[:index] + char.upper() + text[index + 1:]
        if char == "<":
            return text  # token-initial: leave casing to the token value
    return text


class RewritingEngine:
    """Seeded, deterministic paraphrase/summary rewriter."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    # ------------------------------------------------------------------
    # Lexical layer
    # ------------------------------------------------------------------
    def _vary_lexicon(self, text: str) -> str:
        for phrase, alternatives in _SYNONYMS.items():
            while phrase in text:
                text = text.replace(phrase, self._rng.choice(alternatives), 1)
        return text

    # ------------------------------------------------------------------
    # Sentence layer
    # ------------------------------------------------------------------
    def _frame(self, parsed: ParsedSentence, frames: tuple[str, ...]) -> str:
        # Independent clauses are joined with semicolons (a comma here
        # would be a comma splice — and would also blur the boundary with
        # the comma-separated value enumerations inside clauses).
        if len(parsed.clauses) > 1:
            body = "; ".join(parsed.clauses[:-1]) + f"; and {parsed.clauses[-1]}"
        else:
            body = parsed.clauses[-1]
        frame = self._rng.choice(frames)
        return frame.format(
            body=body, Body=_capitalize(body), head=parsed.head
        )

    def paraphrase(self, text: str) -> str:
        """A fluent restatement keeping every clause of every sentence."""
        output: list[str] = []
        for sentence in split_sentences(text):
            parsed = parse_sentence(sentence)
            if not parsed.is_canonical:
                output.append(parsed.raw)
                continue
            framed = self._frame(parsed, _PARAPHRASE_FRAMES)
            output.append(self._vary_lexicon(framed))
        return " ".join(output)

    def summarize(self, text: str) -> str:
        """A compressed restatement.

        Clauses already stated verbatim earlier in the text are dropped
        (they carry no new information), as are body clauses restating the
        previous sentence's head — the discourse-level redundancy the
        verbalizer introduces between chained rules.
        """
        output: list[str] = []
        seen_clauses: set[str] = set()
        previous_head = ""
        for sentence in split_sentences(text):
            parsed = parse_sentence(sentence)
            if not parsed.is_canonical:
                output.append(parsed.raw)
                continue
            kept = []
            for clause in parsed.clauses:
                if clause in seen_clauses or clause == previous_head:
                    continue
                kept.append(clause)
                seen_clauses.add(clause)
            previous_head = parsed.head
            if not kept:
                # Everything was already said: restate only the conclusion.
                output.append(f"Consequently, {parsed.head}.")
                continue
            framed = self._frame(
                ParsedSentence(tuple(kept), parsed.head, parsed.raw),
                _SUMMARY_FRAMES,
            )
            output.append(self._vary_lexicon(_capitalize(framed)))
        return " ".join(output)

    def rephrase(self, text: str) -> str:
        """Template enhancement: like a paraphrase, with the first
        sentence framed for a smoother opening."""
        return self.paraphrase(text)
