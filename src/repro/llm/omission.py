"""The calibrated omission model.

Section 6.3 of the paper measures how ChatGPT, asked to paraphrase or
summarize deterministic proof verbalizations, *omits* information — and
how the omission ratio grows with proof length, with summaries worse than
paraphrases and, for company control, share amounts dropped most often.

Running the real model offline is impossible, so the simulated LLM
reproduces the *behaviour*: after rewriting, each distinct constant of the
input may be dropped with a probability that grows with the input length
(sentence count ≈ chase steps).  Numeric constants (amounts, shares) are
dropped more readily than entity names, matching the paper's qualitative
finding; a dropped number is replaced by a vague phrase ("a certain
amount" — exactly the "owns a majority stake" failure visible in the
paper's Figure 15 GPT summary), a dropped entity by an anaphoric one.

The profiles below are calibrated to the trends of Figure 17, not to its
absolute values (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

_NUMBER_RE = re.compile(r"(?<![\w.<])(\d+(?:\.\d+)?)(?!\w|[.>]\d|>)")
_ENTITY_RE = re.compile(r"(?<![\w<])([A-Z][A-Za-z0-9_]*)(?!\w|>)")

#: Replacement phrases, in rotation, for dropped constants.
_NUMBER_FILLERS = ("a certain amount", "a significant amount", "some amount")
_ENTITY_FILLERS = ("one of the entities involved", "another company", "the counterparty")

#: Capitalized words that are prose, not entity constants.
_ENTITY_STOPWORDS = frozenset({
    "A", "An", "The", "As", "Because", "Given", "Since", "Consequently",
    "Hence", "Thus", "Therefore", "With", "Despite", "This", "That", "It",
    "And", "But", "So", "If", "When", "Then", "Result", "Moreover",
})


@dataclass(frozen=True)
class OmissionProfile:
    """Length-dependent drop probabilities for one prompt kind.

    ``p(number) = min(cap, base + slope * max(0, sentences - 1))`` and
    entities are dropped at ``entity_factor`` times that rate.
    """

    base: float
    slope: float
    cap: float
    entity_factor: float

    def number_probability(self, sentences: int) -> float:
        return min(self.cap, self.base + self.slope * max(0, sentences - 1))

    def entity_probability(self, sentences: int) -> float:
        return self.number_probability(sentences) * self.entity_factor


#: Paraphrasing loses less information than summarizing (paper, §6.3).
PARAPHRASE_PROFILE = OmissionProfile(base=0.0, slope=0.030, cap=0.80, entity_factor=0.35)
SUMMARY_PROFILE = OmissionProfile(base=0.05, slope=0.045, cap=0.90, entity_factor=0.50)

#: Template enhancement operates on short rule-level texts; a small flat
#: rate models the rare token drops the Section 4.4 guard exists to catch.
REPHRASE_PROFILE = OmissionProfile(base=0.02, slope=0.0, cap=0.02, entity_factor=1.0)


class OmissionModel:
    """Applies length-calibrated constant drops to rewritten text."""

    def __init__(self, profile: OmissionProfile, rng: random.Random):
        self.profile = profile
        self._rng = rng

    def apply(self, text: str, sentences: int) -> str:
        """Drop constants from ``text`` given the input length.

        All mentions of a dropped constant disappear together — the model
        "forgot" that piece of information, it did not merely skip one
        mention.
        """
        p_number = self.profile.number_probability(sentences)
        p_entity = self.profile.entity_probability(sentences)
        text = self._drop(text, _NUMBER_RE, p_number, _NUMBER_FILLERS)
        text = self._drop(
            text, _ENTITY_RE, p_entity, _ENTITY_FILLERS, skip=_ENTITY_STOPWORDS
        )
        return text

    def apply_to_tokens(self, text: str, probability: float | None = None) -> str:
        """Drop ``<token>`` placeholders (template-enhancement failure
        mode: variables deleted from the template, paper §4.4)."""
        p = self.profile.base if probability is None else probability
        dropped: dict[str, str] = {}

        def substitute(match: re.Match[str]) -> str:
            token = match.group(0)
            if token not in dropped:
                drop = self._rng.random() < p
                dropped[token] = "" if drop else token
            return dropped[token]

        collapsed = re.sub(r"<[A-Za-z_][A-Za-z0-9_]*>", substitute, text)
        return re.sub(r"  +", " ", collapsed)

    def _drop(
        self,
        text: str,
        pattern: re.Pattern[str],
        probability: float,
        fillers: tuple[str, ...],
        skip: frozenset[str] = frozenset(),
    ) -> str:
        distinct = [
            value for value in dict.fromkeys(pattern.findall(text))
            if value not in skip
        ]
        decisions: dict[str, str | None] = {}
        for index, constant in enumerate(distinct):
            if self._rng.random() < probability:
                decisions[constant] = fillers[index % len(fillers)]
            else:
                decisions[constant] = None

        def substitute(match: re.Match[str]) -> str:
            replacement = decisions.get(match.group(1))
            return match.group(0) if replacement is None else replacement

        return pattern.sub(substitute, text)
