"""The simulated LLM: an offline, deterministic stand-in for ChatGPT.

:class:`SimulatedLLM` implements the :class:`~repro.llm.client.LLMClient`
protocol by dispatching on the paper's three prompts (rephrase /
paraphrase / summarize) to the rule-based rewriting engine, then applying
the calibrated omission model for the corresponding task.

Behavioural properties, mirroring the real-model observations the paper
reports:

* **fluency** — rigid "Since ..., then ..." prose is reframed with varied
  connectives and synonyms;
* **variability** — repeated calls on the same input give different (but
  deterministic, given the seed) outputs, like resampling a model;
* **omissions** — information loss grows with input length, summaries
  lose more than paraphrases, numbers are dropped more often than entity
  names (§6.3); ``faithful=True`` disables this for ablations.

Everything is local: no data ever leaves the process, which is precisely
the confidentiality property the paper's template approach is designed
around — the simulator exists so that the *baselines* can be run offline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .client import PromptKind, classify_prompt
from .omission import (
    OmissionModel,
    OmissionProfile,
    PARAPHRASE_PROFILE,
    REPHRASE_PROFILE,
    SUMMARY_PROFILE,
)
from .rewriting import RewritingEngine, split_sentences


@dataclass
class LLMUsage:
    """Bookkeeping of simulator calls (handy in tests and benchmarks)."""

    calls: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: PromptKind) -> None:
        self.calls += 1
        self.by_kind[kind.value] = self.by_kind.get(kind.value, 0) + 1


class SimulatedLLM:
    """Deterministic, seedable ChatGPT stand-in.

    Parameters
    ----------
    seed:
        Master seed; two simulators with the same seed produce identical
        call-for-call outputs.
    faithful:
        When ``True``, the omission model is disabled entirely — the
        simulator never loses information (useful as a "perfect LLM"
        ablation and for tests of the rewriting layer alone).
    profiles:
        Optional per-task override of the omission profiles.
    """

    def __init__(
        self,
        seed: int = 0,
        faithful: bool = False,
        profiles: dict[PromptKind, OmissionProfile] | None = None,
    ):
        self.seed = seed
        self.faithful = faithful
        self.usage = LLMUsage()
        self._call_counter = 0
        self._profiles = {
            PromptKind.REPHRASE: REPHRASE_PROFILE,
            PromptKind.PARAPHRASE: PARAPHRASE_PROFILE,
            PromptKind.SUMMARY: SUMMARY_PROFILE,
        }
        if profiles:
            self._profiles.update(profiles)

    def signature(self) -> str:
        """Stable identity for compile fingerprints (see
        :func:`repro.core.compiler.llm_signature`); kept byte-identical
        to the knob-derived fallback so existing artifacts stay valid."""
        return f"SimulatedLLM:seed={self.seed}:faithful={self.faithful}"

    # ------------------------------------------------------------------
    # LLMClient protocol
    # ------------------------------------------------------------------
    def complete(self, prompt: str) -> str:
        """Answer one prompt; unknown prompts are echoed unchanged, like a
        model politely returning the text it cannot act on."""
        kind, payload = classify_prompt(prompt)
        self.usage.record(kind)
        self._call_counter += 1
        rng = random.Random(f"{self.seed}:{self._call_counter}")
        engine = RewritingEngine(rng)

        if kind is PromptKind.UNKNOWN:
            return payload

        if kind is PromptKind.REPHRASE:
            rewritten = engine.rephrase(payload)
        elif kind is PromptKind.PARAPHRASE:
            rewritten = engine.paraphrase(payload)
        else:
            rewritten = engine.summarize(payload)

        if self.faithful:
            return rewritten

        profile = self._profiles[kind]
        omission = OmissionModel(profile, rng)
        length = len(split_sentences(payload))
        if kind is PromptKind.REPHRASE:
            # Enhancement operates on templates: the failure mode is a
            # dropped <token>, which the §4.4 guard must catch.
            return omission.apply_to_tokens(rewritten)
        return omission.apply(rewritten, length)
