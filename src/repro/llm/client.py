"""LLM client protocol and prompt taxonomy.

The paper uses ChatGPT through three prompts:

* ``"Rephrase the following text: ..."`` — template enhancement (§4.2);
* ``"Generate a paraphrased version of the following text: ..."`` — the
  pure-LLM paraphrase baseline (§6.2);
* ``"Generate a summarized version of the following text: ..."`` — the
  pure-LLM summarization baseline (§6.2).

Any object exposing ``complete(prompt) -> str`` can stand in for the
model; this repository ships :class:`repro.llm.simulated.SimulatedLLM`, an
offline deterministic simulator (see DESIGN.md for the substitution
rationale).

A client signals backend trouble through the typed taxonomy of
:mod:`repro.resilience` (re-exported here): raise
:class:`TransientLLMError` for retryable conditions (timeouts, rate
limits, 5xx) and :class:`PermanentLLMError` for non-retryable ones — the
enhancement path retries the former per policy behind a circuit breaker
and degrades to the deterministic base template when it gives up.
"""

from __future__ import annotations

from enum import Enum
from typing import Protocol, runtime_checkable

from ..resilience.policy import (  # noqa: F401  (re-exported taxonomy)
    PermanentLLMError,
    TransientLLMError,
)

#: The paper's exact prompt strings.
REPHRASE_PROMPT = "Rephrase the following text: "
PARAPHRASE_PROMPT = "Generate a paraphrased version of the following text: "
SUMMARY_PROMPT = "Generate a summarized version of the following text: "


class PromptKind(Enum):
    """The text-manipulation task a prompt requests."""

    REPHRASE = "rephrase"
    PARAPHRASE = "paraphrase"
    SUMMARY = "summary"
    UNKNOWN = "unknown"


def classify_prompt(prompt: str) -> tuple[PromptKind, str]:
    """Split a prompt into its task kind and its payload text."""
    for prefix, kind in (
        (REPHRASE_PROMPT, PromptKind.REPHRASE),
        (PARAPHRASE_PROMPT, PromptKind.PARAPHRASE),
        (SUMMARY_PROMPT, PromptKind.SUMMARY),
    ):
        if prompt.startswith(prefix):
            return kind, prompt[len(prefix):]
    return PromptKind.UNKNOWN, prompt


@runtime_checkable
class LLMClient(Protocol):
    """Minimal LLM interface used throughout the repository."""

    def complete(self, prompt: str) -> str:  # pragma: no cover - protocol
        """Return the model's completion for ``prompt``."""
        ...
