"""Figure 18: running time of explanation generation vs proof length.

Measures the time to select, parse and combine templates (the full
explanation query, given a materialized instance) for proofs of increasing
chase-step length — company control on 1..21 steps, stress test on 1..22
steps, 15 distinct proofs per length, matching the paper's panels.

Absolute numbers differ from the paper's Ryzen laptop; the expected shape
is that runtime grows with the number of inference steps and that the
syntactically richer stress-test application costs more than company
control at comparable lengths.
"""

from __future__ import annotations

import time

from repro import obs
from repro.apps import generators
from repro.core import Explainer, ExplanationService
from repro.render import format_boxplot_series

from _harness import emit, emit_stats, once

CONTROL_STEPS = (1, 3, 5, 7, 9, 11, 13, 16, 18, 21)
STRESS_STEPS = (1, 4, 7, 10, 13, 16, 19, 22)
PROOFS_PER_LENGTH = 15


def _stress_scenario(steps, seed):
    """Realistic stress workload: each hop's exposure split over two
    loans, so the channel aggregations combine several contributors —
    the syntactic richness behind the paper's cross-application gap."""
    return generators.stress_with_steps(steps, seed=seed, debts_per_hop=2)


def _prepare(scenario_builder, steps_list, metrics=None):
    """Materialize all workloads up front: Figure 18 times explanation
    generation, not the chase.  The service compiles each program once
    (content-hash cache) and every workload binds the shared artifact —
    the compile/runtime split keeps the measurement pure."""
    service = ExplanationService(metrics=metrics)
    prepared = []
    for steps in steps_list:
        for sample in range(PROOFS_PER_LENGTH):
            scenario = scenario_builder(steps, seed=sample)
            session = service.session(scenario.application, scenario.database)
            prepared.append((steps, session.explainer, scenario.target))
    return prepared


def _measure(prepared):
    timings: dict[int, list[float]] = {}
    for steps, explainer, target in prepared:
        started = time.perf_counter()
        explainer.explain(target, prefer_enhanced=False)
        elapsed = time.perf_counter() - started
        timings.setdefault(steps, []).append(elapsed)
    return timings


def _quartiles(values):
    ordered = sorted(values)

    def pct(fraction):
        position = fraction * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    return pct(0.25), pct(0.5), pct(0.75)


def _assert_grows(timings):
    steps = sorted(timings)
    early = sum(sorted(timings[steps[0]])[len(timings[steps[0]]) // 2:][:1])
    late = sum(sorted(timings[steps[-1]])[len(timings[steps[-1]]) // 2:][:1])
    assert late > early, "explanation time must grow with proof length"


def test_figure18a_company_control_runtime(benchmark):
    # The preparation phase (chase + compile) runs observed so the
    # emitted stats document carries rule firings and cache telemetry;
    # the measured explain loop itself has no instrumented call sites,
    # keeping the figure comparable with pre-observability runs.
    tracer = obs.Tracer()
    metrics = obs.ServiceMetrics()
    with obs.observed(tracer=tracer, metrics=metrics):
        prepared = _prepare(
            generators.control_with_steps, CONTROL_STEPS, metrics=metrics
        )
        timings = once(benchmark, _measure, prepared)
    series = [(s, _quartiles(timings[s])) for s in sorted(timings)]
    emit(
        "fig18a_runtime_company_control",
        format_boxplot_series(
            "Figure 18a — explanation generation time (seconds), company control",
            series,
        ),
    )
    emit_stats(
        "BENCH_fig18a", metrics, tracer=tracer,
        meta={"benchmark": "fig18a_runtime_company_control"},
    )
    _assert_grows(timings)


def test_figure18b_stress_test_runtime(benchmark):
    prepared = _prepare(_stress_scenario, STRESS_STEPS)
    timings = once(benchmark, _measure, prepared)
    series = [(s, _quartiles(timings[s])) for s in sorted(timings)]
    emit(
        "fig18b_runtime_stress_test",
        format_boxplot_series(
            "Figure 18b — explanation generation time (seconds), stress test",
            series,
        ),
    )
    _assert_grows(timings)


def test_figure18_stress_costs_more_than_control(benchmark):
    """The paper's observation: the stress test, with multiple aggregating
    rules, is the more expensive application at comparable proof lengths.
    Compared over a sweep of lengths to smooth per-length noise."""
    sweep = (7, 10, 16, 19)

    def compare():
        control = _prepare(generators.control_with_steps, sweep)
        stress = _prepare(_stress_scenario, sweep)
        control_times = [t for times in _measure(control).values() for t in times]
        stress_times = [t for times in _measure(stress).values() for t in times]
        return (
            sum(control_times) / len(control_times),
            sum(stress_times) / len(stress_times),
        )

    control_mean, stress_mean = once(benchmark, compare)
    emit(
        "fig18_cross_application",
        f"mean explanation time over {sweep} steps: company control "
        f"{control_mean * 1000:.2f} ms, stress test {stress_mean * 1000:.2f} ms",
    )
    assert stress_mean > control_mean


def test_single_explanation_latency(benchmark):
    """A conventional pytest-benchmark microbenchmark: one 21-step control
    explanation, timed with full calibration (the 'interactive latency'
    the paper reports as a few seconds at worst on its hardware)."""
    scenario = generators.control_with_steps(21, seed=0)
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary)

    def explain_uncached():
        explainer._cache.clear()  # measure generation, not the cache
        return explainer.explain(scenario.target, prefer_enhanced=False)

    explanation = benchmark(explain_uncached)
    assert explanation.text
