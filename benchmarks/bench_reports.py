"""Business-report generation at portfolio scale.

Not a paper figure: measures the end-to-end cost of the §1/§5 use case —
"natural language business reports" covering *every* conclusion of a
reasoning task — and checks the report stays complete as the instance
grows.
"""

from __future__ import annotations

import time

from repro.apps import generators
from repro.core import ExplanationService, ReportBuilder, completeness_ratio
from repro.render import format_table

from _harness import emit, once

CASCADE_HOPS = (2, 5, 8, 11)


def test_full_cascade_reports(benchmark):
    def run_all():
        service = ExplanationService()
        rows = []
        for hops in CASCADE_HOPS:
            scenario = generators.stress_cascade(hops, seed=1, debts_per_hop=2)
            session = service.session(scenario.application, scenario.database)
            explainer = session.explainer
            started = time.perf_counter()
            report = ReportBuilder(explainer).build(prefer_enhanced=False)
            elapsed = time.perf_counter() - started
            complete = all(
                completeness_ratio(
                    section.explanation.text,
                    explainer.proof_constants(section.target),
                ) == 1.0
                for section in report.sections
            )
            rows.append([
                hops, len(report), round(elapsed * 1000, 2), complete,
            ])
        return rows

    rows = once(benchmark, run_all)
    emit(
        "reports_scaling",
        format_table(
            ["cascade hops", "sections", "report time (ms)", "complete"],
            rows,
            title="Business-report generation over whole default cascades",
        ),
    )
    assert all(row[3] for row in rows)
    # Sections = one default per cascade member.
    assert [row[1] for row in rows] == [h + 1 for h in CASCADE_HOPS]
