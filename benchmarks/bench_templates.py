"""Figures 6, 7 and 11: glossaries, deterministic and enhanced templates.

Regenerates the explanation templates for the simplified stress test
(Figure 6) from the Figure 7 glossary, and the glossary/templates for the
production applications (Figure 11), with LLM enhancement under the token
guard.
"""

from __future__ import annotations

from repro.apps import company_control, stress_test
from repro.core import StructuralAnalysis, TemplateStore, extract_tokens
from repro.core.enhancer import TemplateEnhancer
from repro.llm import SimulatedLLM

from _harness import emit, once


def test_figure7_and_11_glossaries(benchmark):
    applications = [
        stress_test.build_simple(), company_control.build(), stress_test.build(),
    ]

    def validate_all():
        for app in applications:
            app.glossary.validate_against(app.program)
        return [app.glossary.describe() for app in applications]

    descriptions = once(benchmark, validate_all)
    emit("fig07_11_glossaries", "\n\n".join(descriptions))


def test_figure6_templates(benchmark):
    """The Figure 6 table: deterministic + enhanced template per path."""
    application = stress_test.build_simple()
    llm = SimulatedLLM(seed=0, faithful=True)

    def build():
        analysis = StructuralAnalysis(application.program)
        store = TemplateStore(analysis, application.glossary)
        report = TemplateEnhancer(llm).enhance_store(store)
        return store, report

    store, report = once(benchmark, build)
    lines = []
    for template in store.templates():
        lines.append(f"--- {template.path.notation()}")
        lines.append(f"Deterministic: {template.deterministic_text}")
        for enhanced in template.enhanced_texts:
            lines.append(f"Enhanced:      {enhanced}")
        lines.append("")
    emit("fig06_templates", "\n".join(lines))

    # Shape assertions: 5 path variants (Π1, Π2, Π2*, Γ1, Γ1*), every
    # template enhanced, no token lost anywhere.
    assert len(store) == 5
    assert report.enhanced == 5
    for template in store.templates():
        for text in template.enhanced_texts:
            assert extract_tokens(text) >= extract_tokens(
                template.deterministic_text
            )


def test_production_template_stores(benchmark):
    """Template pre-computation for the deployed applications: the
    once-for-all step of Section 4.4 stays cheap."""
    control = company_control.build()
    stress = stress_test.build()

    def build_both():
        control_store = TemplateStore(
            StructuralAnalysis(control.program), control.glossary
        )
        stress_store = TemplateStore(
            StructuralAnalysis(stress.program), stress.glossary
        )
        return control_store, stress_store

    control_store, stress_store = once(benchmark, build_both)
    emit(
        "fig11_production_templates",
        control_store.describe() + "\n\n" + stress_store.describe(),
    )
    assert len(control_store) >= 6
    assert len(stress_store) >= 7
