"""Multi-core scale-out: process-backed serving + shard-parallel chase.

Two claims under measurement, both capped by the GIL before this PR:

1. **Serving throughput** — a CPU-bound request mix (distinct why-not
   probes, every one a memo miss doing real counterfactual search) is
   driven against the same snapshot twice: once on the ``thread``
   backend (all sessions behind one GIL) and once on the ``process``
   backend at 1/2/4 workers.  On a ≥4-core machine the process backend
   must clear **2x** the thread backend's throughput at 4 workers; on
   smaller machines the speedup keys are omitted and the gate skips
   (``optional: true`` in ``gates.json``).
2. **Chase wall time** — a multi-component ownership workload (disjoint
   renamed copies of a recursive control chain) is chased with
   ``strategy="planned"`` and ``strategy="parallel"`` at 1/2/4
   processes, with a full result-signature parity check.

A byte-parity sweep then proves determinism where it matters: for every
bundled application instance (and the multi-component unions) the
parallel chase must reproduce the planned chase **exactly** — records,
order, rounds, delta sizes, stats, violations — with zero fallbacks on
shardable programs.

Emits ``BENCH_parallel.json`` + ``BENCH_parallel_stats.json``; CI gates
parity/fallbacks (and throughput on big-enough runners) via the
``parallel`` suite in ``benchmarks/gates.json``.

Runs standalone (``python benchmarks/bench_parallel.py [--quick]``) or
under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import threading
import time

from repro import obs
from repro.apps import figures, generators
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.engine import ChaseEngine, Database
from repro.io import dumps_database
from repro.obs.metrics import MetricsRegistry, ServiceMetrics
from repro.serve import ExplanationServer, ServeConfig

from _harness import RESULTS_DIR, Phases, append_history, emit_stats

#: Worker counts swept on the process backend.
WORKER_SWEEP = (1, 2, 4)

#: Every bundled application instance, for the chase parity sweep.
PARITY_SCENARIOS = (
    lambda: figures.figure8_instance(),
    lambda: figures.figure12_stress_instance(),
    lambda: figures.figure12_control_instance(),
    lambda: figures.figure15_instance(),
    lambda: generators.close_links_common_control(seed=0),
    lambda: generators.control_with_steps(6, seed=1),
    lambda: generators.stress_with_steps(6, seed=1),
)

#: Multi-component workloads: disjoint renamed unions, so the EDB
#: decomposes into as many weakly-connected components as copies.
UNION_WORKLOADS = (
    ("control_union", lambda: generators.control_with_steps(7, seed=2), 6),
    ("stress_union", lambda: generators.stress_with_steps(5, seed=2), 4),
)


def _suffix(term, copy):
    if isinstance(term, Constant) and isinstance(term.value, str):
        return Constant(f"{term.value}@{copy}")
    return term


def _union_of(build, copies):
    base = build()
    facts = [
        Atom(f.predicate, tuple(_suffix(t, copy) for t in f.terms))
        for copy in range(copies)
        for f in base.database.facts()
    ]
    return base.application.program, Database(facts)


def _signature(result):
    """The full determinism contract: records, order, stats, violations."""
    return (
        tuple(
            (
                record.index, record.round, record.rule.label,
                str(record.fact),
                tuple(str(parent) for parent in record.parents),
                tuple(
                    (str(c.value), tuple(str(f) for f in c.facts))
                    for c in record.contributors
                ),
            )
            for record in result.records
        ),
        tuple(str(f) for f in result.database.facts()),
        result.stats.rounds,
        tuple(result.stats.rounds_per_stratum),
        tuple(result.stats.delta_sizes),
        dict(result.stats.rule_firings),
        tuple(
            (v.constraint.label, tuple(str(w) for w in v.witnesses))
            for v in result.violations
        ),
        tuple(sorted(str(f) for f in result.superseded)),
    )


# ----------------------------------------------------------------------
# Serving throughput: thread vs process backend
# ----------------------------------------------------------------------

class _ProbeClient(threading.Thread):
    """Closed-loop client issuing distinct (never-memoized) why-nots."""

    def __init__(self, host, port, predicate, arity, slot, stop_at):
        super().__init__(daemon=True)
        self.host = host
        self.port = port
        self.predicate = predicate
        self.arity = arity
        self.slot = slot
        self.stop_at = stop_at
        self.requests = 0
        self.errors = 0
        self.failures: list[str] = []

    def run(self):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=60
        )
        try:
            while time.perf_counter() < self.stop_at:
                arguments = ", ".join(
                    f"Probe{self.slot}x{self.requests}n{n}"
                    for n in range(self.arity)
                )
                body = json.dumps(
                    {"query": f"{self.predicate}({arguments})"}
                ).encode("utf-8")
                connection.request(
                    "POST", "/whynot", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                data = response.read()
                if response.status != 200:
                    self.errors += 1
                    if len(self.failures) < 3:
                        self.failures.append(
                            f"{response.status}: {data[:120]!r}"
                        )
                self.requests += 1
        except Exception as error:
            self.errors += 1
            self.failures.append(f"transport: {type(error).__name__}: {error}")
        finally:
            connection.close()


def _measure_backend(scenario, snapshot, backend, workers, duration_s,
                     concurrency):
    server = ExplanationServer(
        scenario.application, snapshot=snapshot,
        config=ServeConfig(
            workers=workers, backend=backend, strategy="planned",
            queue_limit=max(64, concurrency * 4), default_deadline_s=60.0,
            slo_period_s=60.0, slo_interval_requests=10_000,
        ),
        llm=None,
    )
    handle = server.run_in_thread()
    try:
        started = time.perf_counter()
        stop_at = started + duration_s
        clients = [
            _ProbeClient(
                server.host, server.port,
                scenario.target.predicate, scenario.target.arity,
                slot, stop_at,
            )
            for slot in range(concurrency)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=duration_s + 120)
        elapsed = time.perf_counter() - started
    finally:
        handle.stop()
    requests = sum(client.requests for client in clients)
    errors = sum(client.errors for client in clients)
    failures = [f for client in clients for f in client.failures]
    return {
        "backend": backend,
        "workers": workers,
        "duration_s": round(elapsed, 3),
        "requests": requests,
        "errors": errors,
        "failures": failures,
        "throughput_rps": round(requests / elapsed, 3) if elapsed else 0.0,
    }


def _serve_sweep(duration_s, concurrency, phases):
    scenario = generators.control_with_steps(7, seed=3)
    snapshot = dumps_database(scenario.database)
    runs = []
    with phases.phase("serve_thread"):
        thread_run = _measure_backend(
            scenario, snapshot, "thread", max(WORKER_SWEEP),
            duration_s, concurrency,
        )
        runs.append(thread_run)
    with phases.phase("serve_process"):
        process_runs = {
            workers: _measure_backend(
                scenario, snapshot, "process", workers,
                duration_s, concurrency,
            )
            for workers in WORKER_SWEEP
        }
        runs.extend(process_runs.values())
    cores = os.cpu_count() or 1
    section = {
        "cores": cores,
        "concurrency": concurrency,
        "thread_rps_4w": thread_run["throughput_rps"],
        "process_rps": {
            str(workers): run["throughput_rps"]
            for workers, run in process_runs.items()
        },
        "errors": sum(run["errors"] for run in runs),
        "failures": [f for run in runs for f in run["failures"]],
        "runs": runs,
    }
    # The ≥2x gate is only meaningful when 4 worker processes have 4
    # cores to land on; smaller runners omit the key and the optional
    # gate skips cleanly.
    if cores >= 4 and thread_run["throughput_rps"] > 0:
        section["speedup_process_vs_thread_4w"] = round(
            process_runs[4]["throughput_rps"]
            / thread_run["throughput_rps"],
            3,
        )
    return section


# ----------------------------------------------------------------------
# Chase wall time + parity
# ----------------------------------------------------------------------

def _chase_sweep(phases):
    name, build, copies = UNION_WORKLOADS[0]
    program, database = _union_of(build, copies)
    with phases.phase("chase_planned"):
        started = time.perf_counter()
        planned = ChaseEngine(strategy="planned").run(
            program, database.copy()
        )
        planned_s = time.perf_counter() - started
    reference = _signature(planned)
    times = {}
    identical = True
    cores = os.cpu_count() or 1
    with phases.phase("chase_parallel"):
        for processes in (1, 2, 4):
            started = time.perf_counter()
            result = ChaseEngine(
                strategy="parallel", processes=processes
            ).run(program, database.copy())
            times[str(processes)] = round(time.perf_counter() - started, 6)
            identical = identical and _signature(result) == reference
    section = {
        "workload": name,
        "components": copies,
        "facts": len(database.facts()),
        "records": len(planned.records),
        "planned_s": round(planned_s, 6),
        "parallel_s": times,
        "identical": identical,
        "cores": cores,
    }
    if cores >= 4 and times["4"] > 0:
        section["speedup_4p"] = round(planned_s / times["4"], 3)
    return section


def _parity_sweep(phases):
    """Planned-vs-parallel signature parity over every bundled app and
    the multi-component unions, counting unexpected fallbacks."""
    scenarios = 0
    fallbacks = 0
    divergences = []
    workloads = [
        (getattr(build, "__name__", f"scenario_{i}"),
         lambda build=build: (
             (lambda s: (s.application.program, s.database))(build())
         ))
        for i, build in enumerate(PARITY_SCENARIOS)
    ] + [
        (name, lambda build=build, copies=copies: _union_of(build, copies))
        for name, build, copies in UNION_WORKLOADS
    ]
    with phases.phase("parity"):
        for name, load in workloads:
            program, database = load()
            planned = ChaseEngine(strategy="planned").run(
                program, database.copy()
            )
            registry = MetricsRegistry()
            with obs.observed(metrics=registry):
                parallel = ChaseEngine(strategy="parallel").run(
                    program, database.copy()
                )
            fallbacks += registry.counter_value("engine.parallel_fallback")
            if _signature(planned) != _signature(parallel):
                divergences.append(name)
            scenarios += 1
    return {
        "scenarios": scenarios,
        "identical": not divergences,
        "divergences": divergences,
        "unexpected_fallbacks": fallbacks,
    }


def run(quick=False):
    duration_s = 2.0 if quick else 6.0
    concurrency = 4 if quick else 8
    payload = {"quick": quick}
    phases = Phases()
    metrics = ServiceMetrics()
    payload["serve"] = _serve_sweep(duration_s, concurrency, phases)
    payload["chase"] = _chase_sweep(phases)
    payload["parity"] = _parity_sweep(phases)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_parallel ({path}) =====")
    print(json.dumps(payload, indent=2))
    emit_stats(
        "BENCH_parallel", metrics,
        meta={"benchmark": "parallel", "quick": quick,
              "cores": os.cpu_count()},
        phases=phases,
    )
    append_history("parallel", payload, meta={"benchmark": "parallel"})
    return payload


def check(payload):
    """Determinism is unconditional; the speedups are core-gated."""
    serve = payload["serve"]
    assert serve["errors"] == 0, f"serve errors: {serve['failures']}"
    assert serve["thread_rps_4w"] > 0
    assert all(rps > 0 for rps in serve["process_rps"].values())
    chase = payload["chase"]
    assert chase["identical"], "parallel chase diverged from planned"
    assert chase["records"] > 0
    parity = payload["parity"]
    assert parity["identical"], f"parity diverged: {parity['divergences']}"
    assert parity["unexpected_fallbacks"] == 0, (
        f"{parity['unexpected_fallbacks']} shardable programs fell back"
    )
    assert parity["scenarios"] == len(PARITY_SCENARIOS) + len(UNION_WORKLOADS)
    if serve["cores"] >= 4:
        assert "speedup_process_vs_thread_4w" in serve


def test_parallel(benchmark):
    from _harness import once

    payload = once(benchmark, run, quick=True)
    check(payload)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter load duration / lower concurrency (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
