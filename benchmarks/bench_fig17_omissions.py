"""Figure 17: LLM omission ratios vs proof length.

For proofs of increasing chase-step length, the deterministic
verbalization is handed to the (simulated) LLM under the paraphrase and
summarize prompts; the plotted quantity is the ratio of proof constants
missing from the output, over 10 sampled proofs per length — company
control on 3..21 steps, stress test on 1..9 steps, matching the paper's
panels.  The expected shape: omissions grow with proof length, the summary
prompt loses more than the paraphrase prompt, and the template-based
system stays at exactly zero throughout.
"""

from __future__ import annotations

from repro.apps import generators
from repro.llm import PARAPHRASE_PROMPT, SUMMARY_PROMPT, SimulatedLLM
from repro.render import format_boxplot_series
from repro.study import measure_omissions, measure_template_omissions

from _harness import emit, once

CONTROL_STEPS = (3, 6, 9, 12, 15, 18, 21)
STRESS_STEPS = (1, 3, 5, 7, 9)
SAMPLES = 10


def _control_scenario(steps: int, sample: int):
    return generators.control_with_steps(steps, seed=sample)


def _stress_scenario(steps: int, sample: int):
    return generators.stress_with_steps(steps, seed=sample)


def _series(distributions):
    return [(d.steps, d.quartiles()) for d in distributions]


def _mean_trend(distributions):
    means = [d.mean for d in distributions]
    return means


def run_panel(scenario_builder, steps, llm_seed):
    llm = SimulatedLLM(seed=llm_seed)
    paraphrase = measure_omissions(
        scenario_builder, steps, llm, PARAPHRASE_PROMPT, samples=SAMPLES
    )
    summary = measure_omissions(
        scenario_builder, steps, llm, SUMMARY_PROMPT, samples=SAMPLES
    )
    template = measure_template_omissions(
        scenario_builder, steps, samples=3
    )
    return paraphrase, summary, template


def _assert_panel_shape(paraphrase, summary, template):
    # (1) omissions grow with proof length (first vs last third).
    for distributions in (paraphrase, summary):
        means = _mean_trend(distributions)
        early = sum(means[: max(1, len(means) // 3)]) / max(1, len(means) // 3)
        late = sum(means[-max(1, len(means) // 3):]) / max(1, len(means) // 3)
        assert late > early, "omission ratio must grow with proof length"
    # (2) summarization loses more than paraphrasing overall.
    assert sum(_mean_trend(summary)) > sum(_mean_trend(paraphrase))
    # (3) the template approach never omits anything.
    for distribution in template:
        assert all(ratio == 0.0 for ratio in distribution.ratios)


def test_figure17a_company_control(benchmark):
    paraphrase, summary, template = once(
        benchmark, run_panel, _control_scenario, CONTROL_STEPS, 17
    )
    artifact = "\n\n".join([
        format_boxplot_series(
            "Figure 17a — Paraphrasis GPT (company control)",
            _series(paraphrase), maximum=1.0,
        ),
        format_boxplot_series(
            "Figure 17a — Summary GPT (company control)",
            _series(summary), maximum=1.0,
        ),
        "Template-based approach: omission ratio = 0.0 at every length "
        "(complete by construction).",
    ])
    emit("fig17a_omissions_company_control", artifact)
    _assert_panel_shape(paraphrase, summary, template)


def test_figure17b_stress_test(benchmark):
    paraphrase, summary, template = once(
        benchmark, run_panel, _stress_scenario, STRESS_STEPS, 18
    )
    artifact = "\n\n".join([
        format_boxplot_series(
            "Figure 17b — Paraphrasis GPT (stress test)",
            _series(paraphrase), maximum=1.0,
        ),
        format_boxplot_series(
            "Figure 17b — Summary GPT (stress test)",
            _series(summary), maximum=1.0,
        ),
        "Template-based approach: omission ratio = 0.0 at every length "
        "(complete by construction).",
    ])
    emit("fig17b_omissions_stress_test", artifact)
    _assert_panel_shape(paraphrase, summary, template)


def test_figure17_omission_content_analysis(benchmark):
    """§6.3's qualitative finding: 'for the company control application,
    omissions refer, in most cases, to ownership share amounts' — numbers
    are dropped far more often than entity names."""
    from repro.core import Explainer, constants_omitted
    from repro.llm import SimulatedLLM, SUMMARY_PROMPT

    def measure():
        llm = SimulatedLLM(seed=19)
        number_drops = 0
        entity_drops = 0
        for sample in range(12):
            scenario = generators.control_with_steps(15, seed=sample)
            result = scenario.run()
            explainer = Explainer(result, scenario.application.glossary)
            deterministic = explainer.deterministic_explanation(scenario.target)
            constants = explainer.proof_constants(scenario.target)
            output = llm.complete(SUMMARY_PROMPT + deterministic)
            for constant in constants_omitted(output, constants):
                if constant.replace(".", "", 1).isdigit():
                    number_drops += 1
                else:
                    entity_drops += 1
        return number_drops, entity_drops

    number_drops, entity_drops = once(benchmark, measure)
    emit(
        "fig17_omission_content",
        f"omitted constants over 12 summarized control proofs: "
        f"{number_drops} share amounts vs {entity_drops} entity names "
        f"(paper: omissions are mostly share amounts)",
    )
    assert number_drops > entity_drops
