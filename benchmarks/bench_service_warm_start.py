"""Service-layer warm starts: cold vs. warm compile and explanation
latency, plus batched serving throughput.

Not a paper figure: quantifies the compile/runtime split.  A cold start
pays structural analysis, template construction and one-shot enhancement
on every explainer; a warm start binds a previously compiled program (in
memory via the service cache, or from a serialized artifact) and only
pays instantiation.  Emits ``BENCH_service.json`` with the measurements
for the company-control and stress-test applications.

Runs standalone (``python benchmarks/bench_service_warm_start.py
[--quick]``) for CI, or under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.apps import generators
from repro.core import Explainer, ExplanationService, compile_program
from repro.io import load_compiled_program, save_compiled_program
from repro.llm import SimulatedLLM

from _harness import RESULTS_DIR, append_history, emit_stats

WORKLOADS = {
    "company_control": lambda: generators.control_with_steps(9, seed=3),
    "stress_test": lambda: generators.stress_with_steps(
        9, seed=3, debts_per_hop=2
    ),
}


def _llm():
    return SimulatedLLM(seed=0, faithful=True)


def _median_seconds(function, repeats):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _measure_workload(builder, repeats, metrics):
    scenario = builder()
    application = scenario.application
    result = scenario.run()

    # Compile: cold (full pipeline incl. enhancement) vs. service cache
    # hit vs. loading the serialized artifact (templates rebuilt, no LLM).
    cold_compile_s = _median_seconds(
        lambda: compile_program(
            application.program, application.glossary, llm=_llm()
        ),
        repeats,
    )
    service = ExplanationService(llm=_llm(), metrics=metrics)
    compiled = service.compile(application.program, application.glossary)
    warm_hit_s = _median_seconds(
        lambda: service.compile(application.program, application.glossary),
        repeats,
    )
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "program.compiled.json"
        save_compiled_program(compiled, artifact)
        artifact_load_s = _median_seconds(
            lambda: load_compiled_program(
                artifact, application.program, application.glossary
            ),
            repeats,
        )

    # Explanation latency for the scenario target: a cold start compiles
    # on the fly (the historical one-object construction); a warm start
    # binds the shared compiled program.  Fresh explainers each round so
    # the per-binding cache never short-circuits the measurement.
    cold_explain_s = _median_seconds(
        lambda: Explainer(
            result, application.glossary, llm=_llm()
        ).explain(scenario.target),
        repeats,
    )
    warm_explain_s = _median_seconds(
        lambda: Explainer(result, compiled=compiled).explain(scenario.target),
        repeats,
    )

    # Batched serving over every derived conclusion (thread pool), then a
    # cached re-run through the shared LRU.
    session = service.bind(application, result)
    queries = [
        query for query in result.answers()
        if result.chase_result.is_derived(query)
    ]
    started = time.perf_counter()
    session.explain_batch(queries)
    batch_elapsed_s = time.perf_counter() - started
    started = time.perf_counter()
    session.explain_batch(queries)
    cached_rerun_s = time.perf_counter() - started
    service.shutdown()

    return {
        "description": scenario.description,
        "compile": {
            "cold_s": cold_compile_s,
            "warm_hit_s": warm_hit_s,
            "artifact_load_s": artifact_load_s,
        },
        "explain": {
            "cold_start_s": cold_explain_s,
            "warm_start_s": warm_explain_s,
            "speedup": (
                cold_explain_s / warm_explain_s if warm_explain_s else None
            ),
        },
        "batch": {
            "queries": len(queries),
            "elapsed_s": batch_elapsed_s,
            "throughput_qps": (
                len(queries) / batch_elapsed_s if batch_elapsed_s else None
            ),
            "cached_rerun_s": cached_rerun_s,
        },
    }


def run(quick=False):
    repeats = 3 if quick else 9
    payload = {"quick": quick, "repeats": repeats, "workloads": {}}
    # Observe the whole run: service latency histograms, cache telemetry
    # and ambient chase/compile counters land in one registry; the stats
    # document is written alongside the measurement payload.
    tracer = obs.Tracer()
    metrics = obs.ServiceMetrics()
    with obs.observed(tracer=tracer, metrics=metrics):
        for name, builder in WORKLOADS.items():
            payload["workloads"][name] = _measure_workload(
                builder, repeats, metrics
            )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_service ({path}) =====")
    print(json.dumps(payload, indent=2))
    emit_stats(
        "BENCH_service", metrics, tracer=tracer,
        meta={"benchmark": "service_warm_start", "quick": quick},
    )
    append_history(
        "service", payload, meta={"benchmark": "service_warm_start"},
    )
    return payload


def check(payload):
    """Warm starts must beat cold starts on every workload."""
    for name, data in payload["workloads"].items():
        explain = data["explain"]
        assert explain["warm_start_s"] < explain["cold_start_s"], (
            f"{name}: warm explanation not faster than cold start"
        )
        compile_times = data["compile"]
        assert compile_times["warm_hit_s"] < compile_times["cold_s"], (
            f"{name}: compile-cache hit not faster than cold compile"
        )
        assert data["batch"]["queries"] > 0


def test_service_warm_start(benchmark):
    from _harness import once

    payload = once(benchmark, run, quick=True)
    check(payload)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repeats per measurement (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
