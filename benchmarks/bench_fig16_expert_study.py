"""Figure 16: the expert user study.

14 simulated Central-Bank experts grade the three explanation
methodologies (GPT paraphrase, GPT summary, templates) over four scenarios
— 168 Likert data points.  The paper reports means 3.78 / 3.765 / 3.69
with standard deviations 1.09 / 1.25 / 0.94 and pairwise Wilcoxon tests
far from significance (p1 = 0.5851, p2 = 0.404); the reproduction must
show the same *shape*: statistically indistinguishable means, templates
with the lowest variance.
"""

from __future__ import annotations

from repro.llm import SimulatedLLM
from repro.render import format_table
from repro.study import (
    METHODS,
    likert_summary,
    run_expert_study,
    wilcoxon_signed_rank,
)

from _harness import emit, once


def test_figure16_expert_study(benchmark):
    study = once(benchmark, run_expert_study, SimulatedLLM(seed=7), 14, 0)

    summaries = {method: likert_summary(study.ratings[method]) for method in METHODS}
    p_paraphrase = wilcoxon_signed_rank(
        study.ratings["paraphrase"], study.ratings["template"]
    )
    p_summary = wilcoxon_signed_rank(
        study.ratings["summary"], study.ratings["template"]
    )
    table = format_table(
        ["", "Paraphrasis", "Summary", "Templates"],
        [
            ["Mean"] + [round(summaries[m].mean, 3) for m in METHODS],
            ["Std. Dev."] + [round(summaries[m].std, 3) for m in METHODS],
        ],
        title="Figure 16 — mean Likert value and standard deviation per methodology",
    )
    table += (
        f"\nWilcoxon signed-rank (two-sided): "
        f"paraphrase vs templates p1 = {p_paraphrase:.4f}, "
        f"summary vs templates p2 = {p_summary:.4f} "
        f"(paper: p1 = 0.5851, p2 = 0.404 — both not significant)"
    )
    emit("fig16_expert_study", table)

    # Shape assertions.
    assert study.data_points() == 168
    for method in METHODS:
        assert 3.2 <= summaries[method].mean <= 4.2
    assert summaries["template"].std <= summaries["paraphrase"].std + 0.05
    assert summaries["template"].std <= summaries["summary"].std + 0.05
    assert p_paraphrase > 0.05
    assert p_summary > 0.05
