"""Figure 15: the four explanation versions of the Irish Bank case.

Regenerates, for the same fact (Irish Bank exercises control over Madrid
Credit): the deterministic explanation, the GPT paraphrase and GPT summary
of it (simulated LLM), and the template-based text.
"""

from __future__ import annotations

from repro.apps import figures
from repro.core import Explainer, completeness_ratio
from repro.llm import PARAPHRASE_PROMPT, SUMMARY_PROMPT, SimulatedLLM

from _harness import emit, once


def test_figure15_four_versions(benchmark):
    scenario = figures.figure15_instance()
    result = scenario.run()
    llm = SimulatedLLM(seed=3)

    def build_versions():
        explainer = Explainer(
            result, scenario.application.glossary,
            llm=SimulatedLLM(seed=3, faithful=True),
        )
        deterministic = explainer.deterministic_explanation(scenario.target)
        return explainer, {
            "Deterministic Explanation": deterministic,
            "GPT Paraphrasis of Deterministic Explanation":
                llm.complete(PARAPHRASE_PROMPT + deterministic),
            "GPT Summary of Deterministic Explanation":
                llm.complete(SUMMARY_PROMPT + deterministic),
            "Template-based Approach":
                explainer.explain(scenario.target).text,
        }

    explainer, versions = once(benchmark, build_versions)
    artifact = "\n\n".join(
        f"### {title}\n{text}" for title, text in versions.items()
    )
    emit("fig15_four_versions", artifact)

    constants = explainer.proof_constants(scenario.target)
    # The deterministic and template versions are complete by construction.
    assert completeness_ratio(
        versions["Deterministic Explanation"], constants
    ) == 1.0
    assert completeness_ratio(
        versions["Template-based Approach"], constants
    ) == 1.0
    # The joint 57% stake is explained by the template version, like the
    # paper's "thereby owns 57% of Madrid Credit".
    assert "0.57" in versions["Template-based Approach"]
    # All four versions mention the controlled entity.
    for text in versions.values():
        assert "MadridCredit" in text or "Madrid" in text
