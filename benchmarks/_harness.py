"""Shared helpers for the benchmark/reproduction harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
asserting the expected *shape* of the result, each benchmark writes its
artifact (a table or a textual boxplot) to ``benchmarks/results/`` and
prints it, so a plain ``pytest benchmarks/ --benchmark-only -s`` run leaves
a complete experimental record behind.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class Phases:
    """Per-phase wall-clock accounting for a benchmark run.

    Benchmarks wrap their stages (chase, compile, measurement sweeps,
    parity checks) in :meth:`phase` blocks; the accumulated seconds are
    attached to the run's stats document by :func:`emit_stats`, so a slow
    CI run says *which* stage regressed without re-profiling.  Re-entering
    a name accumulates (phases may run once per workload).
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> dict:
        return {
            name: round(seconds, 6)
            for name, seconds in self._seconds.items()
        }


def emit(name: str, artifact: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(artifact + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(artifact)


def once(benchmark, function, *args, **kwargs):
    """Run a heavyweight experiment exactly once under pytest-benchmark.

    The studies and sweeps take seconds; timing them repeatedly would not
    sharpen the measurement, so a single round is recorded.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def emit_stats(name, metrics, tracer=None, chase=None, meta=None, phases=None,
               profile=None):
    """Write a run's observability stats document next to its artifact.

    Benchmarks emit ``<name>_stats.json`` alongside their ``BENCH_*.json``
    so every recorded measurement carries its trajectory context (per-rule
    firing counts, cache hit rates, stage latency percentiles).  Passing a
    :class:`Phases` (or a plain mapping of name -> seconds) adds a
    ``phases`` section with per-stage wall times; passing a
    :class:`~repro.obs.KernelProfiler` fills the ``profile`` section with
    per-kernel attribution.
    """
    from repro import obs

    document = obs.stats_document(
        metrics, tracer=tracer, chase=chase, meta=meta, profile=profile
    )
    if phases is not None:
        document["phases"] = (
            phases.snapshot() if hasattr(phases, "snapshot") else dict(phases)
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}_stats.json"
    obs.write_stats(document, path)
    print(f"stats document: {path}")
    return path


def append_history(name, payload, meta=None):
    """Append one benchmark run to ``BENCH_<name>_history.jsonl``.

    Each run of a benchmark appends a single JSON line — timestamp,
    optional meta (git ref, CI run id), and the full result payload —
    so ``repro obs diff`` can compare any run against any earlier one
    and CI accumulates a longitudinal record instead of overwriting it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}_history.jsonl"
    entry: dict = {"ts": round(time.time(), 3), "benchmark": name}
    if meta:
        entry["meta"] = dict(meta)
    entry["payload"] = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
    print(f"history: {path}")
    return path
