"""Explanation serving: cold vs. warm vs. batched latency off the
provenance index and the memoized sub-explanation cache.

Not a paper figure: quantifies the serve-many fast path.  A *cold* serve
pays the per-session provenance index build plus spine extraction,
mapping and verbalization; a *warm* serve of the same query is a bounded
LRU hit; a warm *batch* re-run serves every conclusion from memoized
subtrees.  The parity sweep proves the fast path is a pure acceleration:
over every bundled application instance, explanations served with the
cache disabled (capacity 0) are byte-identical to the cached ones.

Emits ``BENCH_explain.json`` plus a stats document with per-phase wall
times.  Runs standalone (``python benchmarks/bench_explain_serving.py
[--quick]``) for CI, or under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro import obs
from repro.apps import figures, generators
from repro.core import Explainer, ExplanationService
from repro.core.cache import LRUCache
from repro.engine.reasoning import ReasoningResult

from _harness import RESULTS_DIR, Phases, append_history, emit_stats

WORKLOADS = {
    "company_control": lambda: generators.control_with_steps(9, seed=3),
    "stress_test": lambda: generators.stress_with_steps(
        9, seed=3, debts_per_hop=2
    ),
}

#: Every bundled application instance, for the byte-parity sweep.
PARITY_SCENARIOS = (
    lambda: figures.figure8_instance(),
    lambda: figures.figure12_stress_instance(),
    lambda: figures.figure12_control_instance(),
    lambda: figures.figure15_instance(),
    lambda: generators.close_links_common_control(seed=0),
    lambda: generators.control_with_steps(6, seed=1),
    lambda: generators.stress_with_steps(6, seed=1),
)


def _median_seconds(function, repeats):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _fresh_result(result: ReasoningResult) -> ReasoningResult:
    """A result sharing the materialized chase but nothing derived from
    it — forcing the next explain to rebuild the provenance index (the
    honest definition of a cold serve)."""
    return ReasoningResult(
        program=result.program, chase_result=result.chase_result
    )


def _measure_workload(builder, repeats, phases):
    scenario = builder()
    application = scenario.application
    with phases.phase("chase"):
        result = scenario.run()
    with phases.phase("compile"):
        compiled = application.compile()

    # Cold: fresh index, fresh binding, first touch of the target.
    with phases.phase("cold_serve"):
        cold_s = _median_seconds(
            lambda: Explainer(
                _fresh_result(result), compiled=compiled
            ).explain(scenario.target),
            repeats,
        )

    # Warm: same binding, the LRU serves the rendered explanation.
    explainer = Explainer(result, compiled=compiled)
    cold_text = explainer.explain(scenario.target).text
    with phases.phase("warm_serve"):
        warm_s = _median_seconds(
            lambda: explainer.explain(scenario.target), repeats
        )
    assert explainer.explain(scenario.target).text == cold_text

    # Batch: first pass generates (grouped by shared subtrees), the
    # re-run is served entirely from the memoized regions.
    with phases.phase("batch"):
        service = ExplanationService()
        session = service.bind(application, _fresh_result(result))
        queries = [
            query for query in session.answers()
            if session.result.chase_result.is_derived(query)
        ]
        started = time.perf_counter()
        first = session.explain_batch(queries)
        batch_cold_s = time.perf_counter() - started
        # The warm re-run is pure cache hits; best-of-N isolates the
        # serving path from scheduler jitter on small batches.
        batch_warm_s = None
        for _ in range(max(3, repeats)):
            started = time.perf_counter()
            second = session.explain_batch(queries)
            elapsed = time.perf_counter() - started
            if batch_warm_s is None or elapsed < batch_warm_s:
                batch_warm_s = elapsed
            assert [e.text for e in first] == [e.text for e in second]
        service.shutdown()

    index = session.result.index
    return {
        "description": scenario.description,
        "index": index.snapshot(),
        "explain": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s else None,
        },
        "batch": {
            "queries": len(queries),
            "cold_s": batch_cold_s,
            "warm_s": batch_warm_s,
            "speedup": batch_cold_s / batch_warm_s if batch_warm_s else None,
            "throughput_qps": (
                len(queries) / batch_cold_s if batch_cold_s else None
            ),
        },
    }


def _parity_sweep():
    """Cached and uncached serving must render byte-identical text.

    ``LRUCache(0)`` disables storage entirely (every lookup misses), so
    the uncached explainer re-runs the full recursion per query — the
    ground truth the memoized path must reproduce exactly.
    """
    scenarios = 0
    queries = 0
    for build in PARITY_SCENARIOS:
        scenario = build()
        result = scenario.run()
        compiled = scenario.application.compile()
        cached = Explainer(result, compiled=compiled)
        uncached = Explainer(result, compiled=compiled, cache=LRUCache(0))
        targets = [
            query for query in result.derived()
            if query.predicate == scenario.target.predicate
        ] or [scenario.target]
        for query in targets:
            baseline = uncached.explain(query)
            served_cold = cached.explain(query)
            served_warm = cached.explain(query)
            if not (
                baseline.text == served_cold.text == served_warm.text
            ):
                return {
                    "scenarios": scenarios, "queries": queries,
                    "identical": False,
                    "divergence": {
                        "scenario": scenario.description,
                        "query": str(query),
                    },
                }
            queries += 1
        scenarios += 1
    return {"scenarios": scenarios, "queries": queries, "identical": True}


def run(quick=False):
    repeats = 3 if quick else 9
    payload = {"quick": quick, "repeats": repeats, "workloads": {}}
    phases = Phases()
    tracer = obs.Tracer()
    metrics = obs.ServiceMetrics()
    with obs.observed(tracer=tracer, metrics=metrics):
        for name, builder in WORKLOADS.items():
            payload["workloads"][name] = _measure_workload(
                builder, repeats, phases
            )
        with phases.phase("parity"):
            payload["parity"] = _parity_sweep()
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_explain.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_explain ({path}) =====")
    print(json.dumps(payload, indent=2))
    emit_stats(
        "BENCH_explain", metrics, tracer=tracer,
        meta={"benchmark": "explain_serving", "quick": quick},
        phases=phases,
    )
    append_history(
        "explain", payload, meta={"benchmark": "explain_serving"},
    )
    return payload


def check(payload):
    """Warm serving must beat cold by 5x and parity must be exact."""
    for name, data in payload["workloads"].items():
        explain = data["explain"]
        assert explain["speedup"] and explain["speedup"] >= 5.0, (
            f"{name}: warm serve only {explain['speedup']}x faster than cold"
        )
        batch = data["batch"]
        assert batch["queries"] > 0
        assert batch["speedup"] and batch["speedup"] >= 5.0, (
            f"{name}: warm batch only {batch['speedup']}x faster than cold"
        )
        assert data["index"]["records"] > 0
    parity = payload["parity"]
    assert parity["identical"], f"parity diverged: {parity}"
    assert parity["queries"] > 0


def test_explain_serving(benchmark):
    from _harness import once

    payload = once(benchmark, run, quick=True)
    check(payload)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repeats per measurement (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
