"""Figures 3, 9 and 10: dependency graphs and reasoning paths.

Regenerates the dependency graphs of the financial applications (Figures 3
and 9) and the reasoning-path table of Figure 10, asserting that the
computed paths coincide with the published ones.
"""

from __future__ import annotations

from repro.apps import close_links, company_control, stress_test
from repro.core import StructuralAnalysis
from repro.datalog import DependencyGraph
from repro.render import dependency_graph_dot, format_table

from _harness import emit, once

#: Figure 10, company control (paper's global numbering Π1–Π5, Γ1).
FIG10_CONTROL_SIMPLE = {
    frozenset({"sigma1"}),
    frozenset({"sigma1", "sigma3"}),
    frozenset({"sigma2"}),
    frozenset({"sigma2", "sigma3"}),
    frozenset({"sigma1", "sigma2", "sigma3"}),
}
FIG10_CONTROL_CYCLES = {frozenset({"sigma3"})}

#: Figure 10, stress test (paper's Π6–Π9, Γ2–Γ4).
FIG10_STRESS_SIMPLE = {
    frozenset({"sigma4"}),
    frozenset({"sigma4", "sigma5", "sigma7"}),
    frozenset({"sigma4", "sigma6", "sigma7"}),
    frozenset({"sigma4", "sigma5", "sigma6", "sigma7"}),
}
FIG10_STRESS_CYCLES = {
    frozenset({"sigma5", "sigma7"}),
    frozenset({"sigma6", "sigma7"}),
    frozenset({"sigma5", "sigma6", "sigma7"}),
}


def test_figure3_and_9_dependency_graphs(benchmark):
    """Emit the dependency graphs of all applications as DOT (Figs. 3/9)."""
    applications = [
        stress_test.build_simple(), company_control.build(),
        stress_test.build(), close_links.build(),
    ]

    def build_all():
        return [DependencyGraph(app.program) for app in applications]

    graphs = once(benchmark, build_all)
    artifact = "\n\n".join(
        dependency_graph_dot(graph, name=app.name)
        for graph, app in zip(graphs, applications)
    )
    emit("fig03_09_dependency_graphs", artifact)
    # Shape assertions from the paper: all dependency graphs are cyclic.
    for graph, app in zip(graphs, applications):
        assert graph.is_recursive(), f"{app.name} must be recursive"


def test_figure10_reasoning_paths(benchmark):
    """Recompute Figure 10's table and check it against the paper."""
    control = company_control.build()
    stress = stress_test.build()

    def analyse_both():
        return (
            StructuralAnalysis(control.program),
            StructuralAnalysis(stress.program),
        )

    control_analysis, stress_analysis = once(benchmark, analyse_both)

    rows = []
    for name, analysis in (
        ("Company Control", control_analysis), ("Stress Test", stress_analysis),
    ):
        simple = ";  ".join(
            p.notation() + ("*" if p.has_aggregation_variants else "")
            for p in analysis.simple_paths
        )
        cycles = ";  ".join(
            c.notation() + ("*" if c.has_aggregation_variants else "")
            for c in analysis.cycles
        )
        rows.append([name, simple, cycles])
    emit(
        "fig10_reasoning_paths",
        format_table(
            ["KG Application", "Simple Reasoning Paths", "Reasoning Cycles"],
            rows,
            title="Figure 10 — reasoning paths of the financial KG applications",
        ),
    )

    assert {frozenset(p.labels) for p in control_analysis.simple_paths} \
        == FIG10_CONTROL_SIMPLE
    assert {frozenset(c.labels) for c in control_analysis.cycles} \
        == FIG10_CONTROL_CYCLES
    assert {frozenset(p.labels) for p in stress_analysis.simple_paths} \
        == FIG10_STRESS_SIMPLE
    assert {frozenset(c.labels) for c in stress_analysis.cycles} \
        == FIG10_STRESS_CYCLES


def test_figure4_5_simplified_stress_paths(benchmark):
    """Example 4.3's paths (Figures 4/5), including the dashed variants."""
    simple_app = stress_test.build_simple()
    analysis = once(benchmark, StructuralAnalysis, simple_app.program)
    assert {frozenset(p.labels) for p in analysis.simple_paths} == {
        frozenset({"alpha"}), frozenset({"alpha", "beta", "gamma"}),
    }
    assert {frozenset(c.labels) for c in analysis.cycles} == {
        frozenset({"beta", "gamma"}),
    }
    # Figure 5: one dashed variant each for the β-containing paths.
    variants = [v for v in analysis.all_variants if v.multi_rules]
    assert {frozenset(v.labels) for v in variants} == {
        frozenset({"alpha", "beta", "gamma"}), frozenset({"beta", "gamma"}),
    }
    emit("fig04_05_simplified_paths", analysis.describe())
