"""Figure 14: the comprehension user study.

24 simulated non-expert participants answer five multi-choice questions
(one correct KG visualization among archetype-corrupted alternatives).
The paper reports 96% overall accuracy with no dominant error archetype;
the reproduction must land in the same regime.
"""

from __future__ import annotations

from repro.render import format_percent, format_table
from repro.study import ErrorArchetype, run_comprehension_study

from _harness import emit, once


def test_figure14_comprehension_study(benchmark):
    study = once(benchmark, run_comprehension_study, 24, 0)

    rows = []
    for case in study.cases:
        rows.append([
            case.case_id,
            format_percent(case.error_rate(ErrorArchetype.WRONG_EDGE)),
            format_percent(case.error_rate(ErrorArchetype.WRONG_VALUE)),
            format_percent(case.error_rate(ErrorArchetype.WRONG_AGGREGATION)),
            format_percent(case.error_rate(ErrorArchetype.WRONG_CHAIN)),
            format_percent(case.accuracy),
        ])
    table = format_table(
        ["Case", "Wrong Edge", "Wrong Value", "Incorrect Aggregation",
         "Incorrect Chain", "Correct Answers"],
        rows,
        title=(
            "Figure 14 — comprehension study "
            f"(overall accuracy {format_percent(study.overall_accuracy)}; "
            "paper: 96%)"
        ),
    )
    emit("fig14_comprehension", table)

    # Shape assertions (paper: ≈96% overall, every case ≥ 92%, errors
    # scattered across archetypes rather than concentrated).
    assert study.overall_accuracy >= 0.90
    assert sum(case.answers for case in study.cases) == 120
    totals = {archetype: 0 for archetype in ErrorArchetype}
    for case in study.cases:
        for archetype, count in case.errors.items():
            totals[archetype] += count
    assert all(count <= 6 for count in totals.values())


def test_figure14_stability_across_cohorts(benchmark):
    """Three independent cohorts stay in the high-accuracy band, both on
    the deterministic reports and on the LLM-enhanced fluent reports the
    paper's participants actually read."""
    from repro.llm import SimulatedLLM

    def run_cohorts():
        deterministic = [
            run_comprehension_study(participants=24, seed=seed)
            for seed in (0, 1, 2)
        ]
        enhanced = [
            run_comprehension_study(
                participants=24, seed=seed,
                llm=SimulatedLLM(seed=seed + 1, faithful=True),
            )
            for seed in (0, 1, 2)
        ]
        return deterministic, enhanced

    deterministic, enhanced = once(benchmark, run_cohorts)
    lines = []
    for label, studies in (
        ("deterministic reports", deterministic),
        ("enhanced reports", enhanced),
    ):
        for seed, study in zip((0, 1, 2), studies):
            lines.append(
                f"{label}, cohort seed {seed}: "
                f"{format_percent(study.overall_accuracy)}"
            )
    emit("fig14_cohort_stability", "\n".join(lines))
    for studies in (deterministic, enhanced):
        accuracies = [study.overall_accuracy for study in studies]
        assert min(accuracies) >= 0.80
        assert sum(accuracies) / len(accuracies) >= 0.90
