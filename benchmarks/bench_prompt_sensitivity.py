"""Section 6.5: prompt engineering does not buy consistency.

The paper's discussion: "while prompt engineering can greatly influence
results, no prompt guarantees perfect consistency [60], which, in our
case, refers to the absence of omissions."  We model differently
engineered prompts as omission profiles of different aggressiveness
(a "careful" prompt loses less than the defaults, a "terse" one more)
and show that on long proofs every profile still omits information in
some runs — only the template-based approach is structurally at zero.
"""

from __future__ import annotations

from repro.apps import generators
from repro.core import Explainer, omission_ratio
from repro.llm import (
    OmissionProfile,
    PARAPHRASE_PROFILE,
    PARAPHRASE_PROMPT,
    PromptKind,
    SUMMARY_PROFILE,
    SimulatedLLM,
)
from repro.render import format_table

from _harness import emit, once

#: "Engineered prompts", modelled by their effect on information loss.
PROMPT_PROFILES = {
    "default paraphrase prompt": PARAPHRASE_PROFILE,
    "carefully engineered prompt": OmissionProfile(
        base=0.0, slope=0.012, cap=0.5, entity_factor=0.25
    ),
    "terse summarization prompt": SUMMARY_PROFILE,
}

STEPS = 21
SAMPLES = 10


def test_no_prompt_reaches_zero_omissions(benchmark):
    def run_all():
        outcomes = {}
        for name, profile in PROMPT_PROFILES.items():
            llm = SimulatedLLM(
                seed=31, profiles={PromptKind.PARAPHRASE: profile}
            )
            ratios = []
            for sample in range(SAMPLES):
                scenario = generators.control_with_steps(STEPS, seed=sample)
                result = scenario.run()
                explainer = Explainer(result, scenario.application.glossary)
                deterministic = explainer.deterministic_explanation(
                    scenario.target
                )
                constants = explainer.proof_constants(scenario.target)
                output = llm.complete(PARAPHRASE_PROMPT + deterministic)
                ratios.append(omission_ratio(output, constants))
            outcomes[name] = ratios
        # Template reference on the same workloads.
        template_ratios = []
        for sample in range(SAMPLES):
            scenario = generators.control_with_steps(STEPS, seed=sample)
            result = scenario.run()
            explainer = Explainer(result, scenario.application.glossary)
            explanation = explainer.explain(scenario.target)
            constants = explainer.proof_constants(scenario.target)
            template_ratios.append(omission_ratio(explanation.text, constants))
        outcomes["template-based approach"] = template_ratios
        return outcomes

    outcomes = once(benchmark, run_all)
    rows = [
        [
            name,
            round(min(ratios), 3),
            round(sum(ratios) / len(ratios), 3),
            round(max(ratios), 3),
        ]
        for name, ratios in outcomes.items()
    ]
    emit(
        "sec6_5_prompt_sensitivity",
        format_table(
            ["prompt / method", "min omission", "mean", "max"],
            rows,
            title=(
                f"Section 6.5 — omission over {SAMPLES} runs at {STEPS} "
                "chase steps: prompts shift the level, none guarantee zero"
            ),
        ),
    )

    template = outcomes.pop("template-based approach")
    assert all(ratio == 0.0 for ratio in template)
    for name, ratios in outcomes.items():
        # every engineered prompt still loses information in some run
        assert max(ratios) > 0.0, name
    # but engineering does shift the level (careful < terse on average)
    careful = outcomes["carefully engineered prompt"]
    terse = outcomes["terse summarization prompt"]
    assert sum(careful) < sum(terse)
