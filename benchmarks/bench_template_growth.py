"""Section 4.2's complexity remark: templates can grow exponentially.

"As the number of templates can grow exponentially with the complexity of
the Vadalog program ... we can instead add a step of enhancement via
LLMs" — the once-for-all analysis must therefore stay automated.  We
quantify the growth on generalized multi-channel stress programs: with n
exposure channels, every non-empty channel subset is a joint reasoning
story, so simple paths and cycles both number ``2^n`` and ``2^n - 1``
respectively (before aggregation variants), while the per-program
pre-computation stays fast enough to be a non-issue in deployment.
"""

from __future__ import annotations

import time

from repro.apps import generators
from repro.core import StructuralAnalysis, TemplateStore, draft_glossary
from repro.render import format_table

from _harness import emit, once

CHANNELS = (1, 2, 3, 4, 5)


def test_reasoning_path_growth(benchmark):
    def measure():
        rows = []
        for channels in CHANNELS:
            program = generators.multi_channel_stress_program(channels)
            started = time.perf_counter()
            analysis = StructuralAnalysis(program)
            simple = len(analysis.simple_paths)
            cycles = len(analysis.cycles)
            variants = len(analysis.all_variants)
            store = TemplateStore(analysis, draft_glossary(program))
            elapsed = time.perf_counter() - started
            rows.append([
                channels, simple, cycles, variants, len(store),
                round(elapsed * 1000, 1),
            ])
        return rows

    rows = once(benchmark, measure)
    emit(
        "template_growth",
        format_table(
            ["channels", "simple paths", "cycles", "variants",
             "templates", "analysis+templates (ms)"],
            rows,
            title="Section 4.2 — reasoning-path and template growth "
                  "with program complexity",
        ),
    )
    # The combinatorial shape: 2^n simple paths (σ4 alone plus one per
    # non-empty channel subset), 2^n - 1 cycles.
    for channels, simple, cycles, variants, templates, __ in rows:
        assert simple == 2 ** channels
        assert cycles == 2 ** channels - 1
        assert variants == templates
        assert variants > simple + cycles  # aggregation variants multiply
