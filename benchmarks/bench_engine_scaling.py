"""Engine ablation: naive vs semi-naive chase evaluation.

Not a paper figure — an ablation of the reproduction's own substrate
(DESIGN.md §5 spirit).  On recursive workloads (transitive-closure-style
control chains and dense random ownership graphs) the semi-naive strategy
performs the same derivations with markedly less join work; the benchmark
asserts result equality and reports the speedup.
"""

from __future__ import annotations

import time

from repro.apps import company_control, generators
from repro.datalog import fact, parse_program
from repro.engine import Database, chase

from _harness import emit, once

TRANSITIVE = parse_program(
    "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
    name="tc", goal="T",
)


def _random_edges(nodes: int, edges: int, seed: int) -> Database:
    import random

    rng = random.Random(seed)
    names = [f"N{i}" for i in range(nodes)]
    chosen: set[tuple[str, str]] = set()
    while len(chosen) < edges:
        a, b = rng.sample(names, 2)
        chosen.add((a, b))
    return Database([fact("E", a, b) for a, b in chosen])


def _timed(program, database, strategy):
    started = time.perf_counter()
    result = chase(program, database, strategy=strategy)
    return time.perf_counter() - started, result


def test_transitive_closure_scaling(benchmark):
    database = _random_edges(nodes=50, edges=120, seed=7)

    def compare():
        naive_time, naive = _timed(TRANSITIVE, database, "naive")
        semi_time, semi = _timed(TRANSITIVE, database, "semi-naive")
        return naive_time, naive, semi_time, semi

    naive_time, naive, semi_time, semi = once(benchmark, compare)
    emit(
        "engine_scaling_transitive_closure",
        f"random graph (50 nodes, 120 edges): "
        f"naive {naive_time * 1000:.0f} ms, semi-naive {semi_time * 1000:.0f} ms "
        f"({naive_time / semi_time:.1f}x), {len(naive.records)} derivations",
    )
    assert set(naive.database.facts("T")) == set(semi.database.facts("T"))
    assert semi_time < naive_time


def test_ownership_network_scaling(benchmark):
    """The same comparison on the company-control program over a dense
    random ownership network (aggregation-heavy recursion)."""
    application = company_control.build()
    database = generators.random_ownership_database(
        entities=30, edges=90, seed=11
    )

    def compare():
        naive_time, naive = _timed(application.program, database, "naive")
        semi_time, semi = _timed(application.program, database, "semi-naive")
        return naive_time, naive, semi_time, semi

    naive_time, naive, semi_time, semi = once(benchmark, compare)
    emit(
        "engine_scaling_ownership",
        f"ownership network (30 entities, 90 stakes): "
        f"naive {naive_time * 1000:.0f} ms, semi-naive {semi_time * 1000:.0f} ms; "
        f"controls derived: {len(naive.facts('Control'))}",
    )
    assert set(naive.facts("Control")) == set(semi.facts("Control"))


def test_long_chain_scaling(benchmark):
    """Control chains: the semi-naive delta shrinks to one fact per round,
    where naive re-joins the whole instance every round."""
    scenario = generators.control_chain(40, seed=3)

    def compare():
        naive_time, naive = _timed(
            scenario.application.program, scenario.database, "naive"
        )
        semi_time, semi = _timed(
            scenario.application.program, scenario.database, "semi-naive"
        )
        return naive_time, semi_time, naive, semi

    naive_time, semi_time, naive, semi = once(benchmark, compare)
    emit(
        "engine_scaling_chain",
        f"40-hop control chain: naive {naive_time * 1000:.0f} ms, "
        f"semi-naive {semi_time * 1000:.0f} ms",
    )
    assert set(naive.facts("Control")) == set(semi.facts("Control"))
