"""Engine ablation: naive vs semi-naive vs planned chase evaluation.

Not a paper figure — an ablation of the reproduction's own substrate
(DESIGN.md §5 spirit).  On recursive workloads (transitive-closure-style
control chains and dense random ownership graphs) the semi-naive strategy
performs the same derivations with markedly less join work, and the
``planned`` strategy (compiled join plans + hash joins, DESIGN.md §9)
beats both by replacing the tuple-at-a-time nested-loop walk with
selectivity-ordered indexed joins.

Emits ``BENCH_engine.json`` with per-strategy wall-clock at each workload
size.  Runs standalone (``python benchmarks/bench_engine_scaling.py
[--quick]``) for CI — where regression gates assert the planned
strategy stays ≥ 2x faster than naive on the largest transitive-closure
size and at least matches semi-naive on the ownership-network and
control-chain workloads — or under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import obs
from repro.apps import company_control, generators
from repro.datalog import fact, parse_program
from repro.engine import Database, chase

from _harness import RESULTS_DIR, append_history, emit, emit_stats, once

STRATEGIES = ("naive", "semi-naive", "planned")

TRANSITIVE = parse_program(
    "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
    name="tc", goal="T",
)

#: (nodes, edges) per transitive-closure size, ascending.
TC_SIZES = ((30, 70), (50, 120), (80, 200))
TC_SIZES_QUICK = ((30, 70), (50, 120))


def _random_edges(nodes: int, edges: int, seed: int) -> Database:
    import random

    rng = random.Random(seed)
    names = [f"N{i}" for i in range(nodes)]
    chosen: set[tuple[str, str]] = set()
    while len(chosen) < edges:
        a, b = rng.sample(names, 2)
        chosen.add((a, b))
    return Database([fact("E", a, b) for a, b in chosen])


def _timed(program, database, strategy):
    started = time.perf_counter()
    result = chase(program, database, strategy=strategy)
    return time.perf_counter() - started, result


def _compare(program, database, goal, repeats=1):
    """Time every strategy on one workload; assert identical results.

    With ``repeats`` > 1 each strategy runs that many times and the best
    wall-clock is reported (the workloads feeding the planned-vs-semi-naive
    CI gate use best-of-2 to keep the ratio stable against scheduler
    noise).
    """
    timings = {}
    results = {}
    for strategy in STRATEGIES:
        best, result = _timed(program, database, strategy)
        for _ in range(repeats - 1):
            seconds, result = _timed(program, database, strategy)
            best = min(best, seconds)
        timings[strategy], results[strategy] = best, result
    baseline = set(results["naive"].database.facts(goal))
    for strategy in STRATEGIES[1:]:
        assert set(results[strategy].database.facts(goal)) == baseline, (
            f"{strategy} diverged from naive on {goal}"
        )
    return timings, results["naive"]


def _with_speedups(seconds):
    """A workload payload entry: raw seconds plus the gated ratios."""
    return {
        "seconds": seconds,
        "planned_speedup_vs_naive": (
            seconds["naive"] / seconds["planned"]
            if seconds["planned"] else None
        ),
        "planned_speedup_vs_seminaive": (
            seconds["semi-naive"] / seconds["planned"]
            if seconds["planned"] else None
        ),
    }


def _measure_obs_overhead(repeats=5):
    """Quantify the flight-recorder/profiler tax on the planned chase.

    Three best-of-``repeats`` measurements of the same workload:

    * ``baseline_s`` — instrumented code, ambient obs disabled (the
      shipping default);
    * ``disabled_s`` — a second identical pass, so the disabled number
      carries its own noise estimate (the no-op path has no switch to
      flip — disabled *is* the baseline);
    * ``enabled_s`` — flight recorder and kernel profiler both live.

    Returns the overhead payload plus the recorder/profiler from the
    enabled pass (their contents become the flight artifact).
    """
    database = _random_edges(nodes=50, edges=120, seed=7)

    def plain():
        chase(TRANSITIVE, database, strategy="planned")

    recorder = obs.FlightRecorder(capacity=64)
    profiler = obs.KernelProfiler()

    def recorded():
        with obs.observed(flight=recorder, profile=profiler):
            with recorder.record("bench", query="tc(50,120)"):
                chase(TRANSITIVE, database, strategy="planned")

    def timed(run_once):
        started = time.perf_counter()
        run_once()
        return time.perf_counter() - started

    # Warm up compile/index caches, then interleave the three modes so
    # scheduler and thermal drift land on all of them equally — the
    # best-of-N minima compare like with like.
    plain()
    recorded()
    samples = {"baseline": [], "disabled": [], "enabled": []}
    for _ in range(repeats):
        samples["baseline"].append(timed(plain))
        samples["disabled"].append(timed(plain))
        samples["enabled"].append(timed(recorded))
    baseline_s = min(samples["baseline"])
    disabled_s = min(samples["disabled"])
    enabled_s = min(samples["enabled"])

    def pct(seconds):
        if not baseline_s:
            return None
        return round(max(0.0, (seconds - baseline_s) / baseline_s) * 100, 2)

    overhead = {
        "workload": "transitive_closure(50 nodes, 120 edges, planned)",
        "repeats": repeats,
        "baseline_s": round(baseline_s, 6),
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "disabled_overhead_pct": pct(disabled_s),
        "enabled_overhead_pct": pct(enabled_s),
    }
    return overhead, recorder, profiler


def run(quick=False):
    """Measure all strategies across the workloads; emit BENCH_engine.json."""
    sizes = TC_SIZES_QUICK if quick else TC_SIZES
    payload = {"quick": quick, "transitive_closure": [], "workloads": {}}
    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    with obs.observed(tracer=tracer, metrics=metrics):
        for nodes, edges in sizes:
            database = _random_edges(nodes=nodes, edges=edges, seed=7)
            timings, reference = _compare(TRANSITIVE, database, "T")
            payload["transitive_closure"].append({
                "nodes": nodes,
                "edges": edges,
                "derivations": len(reference.records),
                "seconds": timings,
                "planned_speedup_vs_naive": (
                    timings["naive"] / timings["planned"]
                    if timings["planned"] else None
                ),
            })

        application = company_control.build()
        ownership = generators.random_ownership_database(
            entities=30, edges=90, seed=11
        )
        timings, reference = _compare(
            application.program, ownership, "Control", repeats=2
        )
        payload["workloads"]["ownership_network"] = {
            "entities": 30,
            "edges": 90,
            "controls": len(reference.database.facts("Control")),
            **_with_speedups(timings),
        }

        scenario = generators.control_chain(40, seed=3)
        timings, reference = _compare(
            scenario.application.program, scenario.database, "Control",
            repeats=2,
        )
        payload["workloads"]["control_chain"] = {
            "hops": 40,
            **_with_speedups(timings),
        }

    overhead, recorder, profiler = _measure_obs_overhead()
    payload["obs_overhead"] = overhead

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_engine ({path}) =====")
    print(json.dumps(payload, indent=2))
    emit_stats(
        "BENCH_engine", metrics, tracer=tracer, profile=profiler,
        meta={"benchmark": "engine_scaling", "quick": quick},
    )
    obs.write_flight(
        recorder, RESULTS_DIR / "BENCH_engine_flight.json",
        meta={"benchmark": "engine_scaling", "quick": quick},
    )
    append_history(
        "engine", payload, meta={"benchmark": "engine_scaling"},
    )
    return payload


def check(payload):
    """The regression gates.

    * planned ≥ 2x naive on the largest transitive-closure size;
    * planned ≥ 1.0x semi-naive on the ownership-network and
      control-chain workloads — the compiled kernels must never lose to
      the tuple-at-a-time semi-naive walk on any bundled workload.
    """
    largest = payload["transitive_closure"][-1]
    speedup = largest["planned_speedup_vs_naive"]
    assert speedup is not None and speedup >= 2.0, (
        f"planned strategy regressed: {speedup:.2f}x vs naive on "
        f"{largest['nodes']} nodes / {largest['edges']} edges (need ≥ 2x)"
    )
    for entry in payload["transitive_closure"]:
        seconds = entry["seconds"]
        assert seconds["planned"] <= seconds["naive"], (
            f"planned slower than naive at {entry['nodes']} nodes"
        )
    for name, workload in payload["workloads"].items():
        ratio = workload["planned_speedup_vs_seminaive"]
        assert ratio is not None and ratio >= 1.0, (
            f"planned strategy lost to semi-naive on {name}: "
            f"{ratio:.2f}x (need ≥ 1.0x)"
        )


def test_transitive_closure_scaling(benchmark):
    database = _random_edges(nodes=50, edges=120, seed=7)
    timings, reference = once(benchmark, _compare, TRANSITIVE, database, "T")
    emit(
        "engine_scaling_transitive_closure",
        f"random graph (50 nodes, 120 edges): "
        f"naive {timings['naive'] * 1000:.0f} ms, "
        f"semi-naive {timings['semi-naive'] * 1000:.0f} ms, "
        f"planned {timings['planned'] * 1000:.0f} ms "
        f"({timings['naive'] / timings['planned']:.1f}x), "
        f"{len(reference.records)} derivations",
    )
    assert timings["planned"] < timings["naive"]


def test_ownership_network_scaling(benchmark):
    """The same comparison on the company-control program over a dense
    random ownership network (aggregation-heavy recursion)."""
    application = company_control.build()
    database = generators.random_ownership_database(
        entities=30, edges=90, seed=11
    )
    timings, reference = once(
        benchmark, _compare, application.program, database, "Control"
    )
    emit(
        "engine_scaling_ownership",
        f"ownership network (30 entities, 90 stakes): "
        f"naive {timings['naive'] * 1000:.0f} ms, "
        f"semi-naive {timings['semi-naive'] * 1000:.0f} ms, "
        f"planned {timings['planned'] * 1000:.0f} ms; "
        f"controls derived: {len(reference.database.facts('Control'))}",
    )


def test_long_chain_scaling(benchmark):
    """Control chains: the semi-naive delta shrinks to one fact per round,
    where naive re-joins the whole instance every round."""
    scenario = generators.control_chain(40, seed=3)
    timings, _reference = once(
        benchmark, _compare,
        scenario.application.program, scenario.database, "Control",
    )
    emit(
        "engine_scaling_chain",
        f"40-hop control chain: naive {timings['naive'] * 1000:.0f} ms, "
        f"semi-naive {timings['semi-naive'] * 1000:.0f} ms, "
        f"planned {timings['planned'] * 1000:.0f} ms",
    )


def test_engine_benchmark_payload(benchmark):
    payload = once(benchmark, run, quick=True)
    check(payload)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer workload sizes (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
