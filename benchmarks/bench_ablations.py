"""Ablation benches for the design choices called out in DESIGN.md.

* **Longest-prefix vs first-match** path selection (Section 4.3 picks the
  simple path covering the *most* chase steps; Example 4.7 explicitly
  prefers the three-rule path over the single-rule one) — first-match
  yields more, shorter segments and a longer, choppier explanation.
* **Aggregation variants on/off** — without the dashed paths, multi-input
  aggregations have no structurally matching template.
* **Token-presence guard on/off** — how many enhanced templates would
  silently lose tokens if the Section 4.4 preventive check were absent.
"""

from __future__ import annotations

from repro.apps import figures, generators
from repro.core import Explainer, StructuralAnalysis, TemplateStore, extract_tokens
from repro.core.enhancer import ENHANCEMENT_PROMPT, TemplateEnhancer
from repro.core.mapping import SegmentMatch, TemplateMapper
from repro.llm import SimulatedLLM

from _harness import emit, once


class FirstMatchMapper(TemplateMapper):
    """Ablated mapper: accepts the first full match instead of the
    longest-covering one."""

    @staticmethod
    def _prefer(challenger: SegmentMatch, incumbent: SegmentMatch) -> bool:
        return False  # keep whatever was found first


def test_ablation_longest_prefix_selection(benchmark):
    scenario = figures.figure8_instance()
    result = scenario.run()
    analysis = StructuralAnalysis(scenario.application.program)
    spine = result.spine(scenario.target)
    derivation = result.chase_result.derivation

    def run_both():
        greedy = TemplateMapper(analysis).map_spine(spine, derivation)
        first_match = FirstMatchMapper(analysis).map_spine(spine, derivation)
        return greedy, first_match

    greedy, first_match = once(benchmark, run_both)
    emit(
        "ablation_longest_prefix",
        "greedy (paper):      " + ", ".join(str(s) for s in greedy)
        + "\nfirst-match ablation: " + ", ".join(str(s) for s in first_match),
    )
    # The paper's greedy selection explains the same spine with fewer,
    # larger segments — the compactness the approach is designed around.
    assert len(greedy) <= len(first_match)
    assert greedy[0].coverage >= first_match[0].coverage
    # Example 4.7 specifically: greedy covers 3 steps with the first path.
    assert greedy[0].coverage == 3
    assert first_match[0].coverage == 1


def test_ablation_aggregation_variants(benchmark):
    """Disable the dashed variants: multi-input aggregation steps lose
    their structurally matching candidates and the mapper must fall back,
    mis-verbalizing the aggregation (or failing outright)."""
    scenario = figures.figure8_instance()
    result = scenario.run()
    analysis = StructuralAnalysis(scenario.application.program)

    class NoVariantAnalysis:
        """Proxy exposing only the base (plain) variants."""

        program = analysis.program
        critical_nodes = analysis.critical_nodes

        @staticmethod
        def simple_variants():
            return tuple(p.base_variant() for p in analysis.simple_paths)

        @staticmethod
        def cycle_variants():
            return tuple(c.base_variant() for c in analysis.cycles)

    def map_without_variants():
        mapper = TemplateMapper(NoVariantAnalysis())  # type: ignore[arg-type]
        spine = result.spine(scenario.target)
        try:
            return mapper.map_spine(spine, result.chase_result.derivation)
        except Exception as error:  # noqa: BLE001 - ablation probes failure
            return error

    outcome = once(benchmark, map_without_variants)
    full = TemplateMapper(analysis).map_spine(
        result.spine(scenario.target), result.chase_result.derivation
    )
    multi_covered = any(segment.path.multi_rules for segment in full)
    emit(
        "ablation_aggregation_variants",
        f"with variants: {[str(s) for s in full]}\n"
        f"without variants: {outcome if isinstance(outcome, Exception) else [str(s) for s in outcome]}",
    )
    assert multi_covered, "the full system must use a dashed variant here"
    # Without variants the multi-input β step can no longer be matched by
    # a structurally faithful candidate.
    if not isinstance(outcome, Exception):
        assert all(not s.path.multi_rules for s in outcome)


def test_ablation_token_guard(benchmark):
    """Quantify what the Section 4.4 guard prevents: enhance every
    template of both production applications with the *lossy* LLM and
    count raw outputs that drop tokens."""
    from repro.apps import company_control, stress_test

    applications = [company_control.build(), stress_test.build()]
    lossy = SimulatedLLM(seed=23, faithful=False)

    def measure():
        attempts = 0
        silent_losses = 0
        for application in applications:
            store = TemplateStore(
                StructuralAnalysis(application.program), application.glossary
            )
            for template in store.templates():
                for _ in range(5):
                    attempts += 1
                    raw = lossy.complete(
                        ENHANCEMENT_PROMPT + template.deterministic_text
                    )
                    if not extract_tokens(raw) >= extract_tokens(
                        template.deterministic_text
                    ):
                        silent_losses += 1
        return attempts, silent_losses

    attempts, silent_losses = once(benchmark, measure)
    emit(
        "ablation_token_guard",
        f"raw enhancement outputs: {attempts}; outputs that silently lost "
        f"tokens (caught only by the guard): {silent_losses} "
        f"({silent_losses / attempts:.1%})",
    )
    # The guard exists because this is non-zero with a real(istic) LLM.
    assert silent_losses > 0

    # And with the guard in place, the stored templates never lose tokens.
    application = generators.control_chain(3, seed=0).application
    store = TemplateStore(
        StructuralAnalysis(application.program), application.glossary
    )
    TemplateEnhancer(lossy, max_attempts=6).enhance_store(store)
    for template in store.templates():
        for text in template.enhanced_texts:
            assert extract_tokens(text) >= extract_tokens(
                template.deterministic_text
            )
