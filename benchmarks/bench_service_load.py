"""Sustained concurrent load against the HTTP explanation server.

The serving claims of the last PRs are single-query microbenchmarks;
this harness measures the network-facing story under concurrency: a
closed-loop load generator (N keep-alive clients over real sockets)
drives a mixed workload — cold sweeps over distinct derived facts,
warm repeats of one hot query, deadline-bounded batches, why-not
probes — against an :class:`~repro.serve.server.ExplanationServer`
booted from a ``repro-db/1`` snapshot.

Measured (server-side, from the obs histograms): throughput,
p50/p95/p99 request latency, shed and error counts, worker warm-start
seconds.  A parity sweep then proves the HTTP path is a pure
transport: for every bundled application instance, the body served by
``POST /explain`` is **byte-identical** to the canonical serialization
of the direct in-process :class:`~repro.core.service.ExplanationService`
result (one batch and one why-not body are byte-checked too).

Emits ``BENCH_load.json`` + ``BENCH_load_stats.json`` (repro-stats/1)
+ ``BENCH_load_flight.json`` (repro-flight/1) and appends a history
line; CI gates throughput/p99/shed-rate via the ``load`` suite in
``benchmarks/gates.json`` (``repro-explain obs diff --check``).

Runs standalone (``python benchmarks/bench_service_load.py [--quick]``)
or under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time

from repro import obs
from repro.apps import figures, generators
from repro.core import ExplanationService
from repro.io import dumps_database, loads_database, parse_fact
from repro.resilience.policy import Deadline
from repro.serve import (
    ExplanationServer,
    ServeConfig,
    batch_payload,
    encode_body,
    explanation_payload,
    whynot_payload,
)

from _harness import RESULTS_DIR, Phases, append_history, emit_stats

#: The load scenario: a recursive control chain with enough distinct
#: derived facts for a meaningful cold sweep.
LOAD_SCENARIO = lambda: generators.control_with_steps(9, seed=3)  # noqa: E731

#: Every bundled application instance, for the HTTP byte-parity sweep.
PARITY_SCENARIOS = (
    lambda: figures.figure8_instance(),
    lambda: figures.figure12_stress_instance(),
    lambda: figures.figure12_control_instance(),
    lambda: figures.figure15_instance(),
    lambda: generators.close_links_common_control(seed=0),
    lambda: generators.control_with_steps(6, seed=1),
    lambda: generators.stress_with_steps(6, seed=1),
)

def _absent_fact(scenario) -> str:
    """A fact of the scenario's goal predicate that nothing derives:
    the target's shape with constants no bundled instance mentions."""
    arity = scenario.target.arity
    arguments = ", ".join(f"Absentia{n}" for n in range(arity))
    return f"{scenario.target.predicate}({arguments})"


class _Client(threading.Thread):
    """One closed-loop client: issue, account, repeat until the bell."""

    def __init__(self, host, port, queries, hot_query, absent, stop_at):
        super().__init__(daemon=True)
        self.host = host
        self.port = port
        self.queries = queries
        self.hot_query = hot_query
        self.absent = absent
        self.stop_at = stop_at
        self.counts = {
            "explain_cold": 0, "explain_warm": 0, "batch": 0, "whynot": 0,
        }
        self.statuses: dict[int, int] = {}
        self.shed = 0
        self.errors = 0
        self.failures: list[str] = []

    def _post(self, connection, path, payload):
        body = json.dumps(payload).encode("utf-8")
        connection.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        data = response.read()
        return response.status, data

    def run(self) -> None:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=30
        )
        sequence = 0
        try:
            while time.perf_counter() < self.stop_at:
                slot = sequence % 8
                sequence += 1
                if slot in (0, 2):  # 25% cold sweep over distinct facts
                    kind = "explain_cold"
                    query = self.queries[sequence % len(self.queries)]
                    status, _data = self._post(
                        connection, "/explain", {"query": str(query)}
                    )
                elif slot == 7:  # 12.5% why-not probes
                    kind = "whynot"
                    status, _data = self._post(
                        connection, "/whynot", {"query": self.absent}
                    )
                elif slot == 5:  # 12.5% deadline-bounded batches
                    kind = "batch"
                    chosen = [
                        str(self.queries[(sequence + n) % len(self.queries)])
                        for n in range(3)
                    ]
                    status, _data = self._post(
                        connection, "/explain/batch",
                        {"queries": chosen, "deadline_s": 10.0},
                    )
                else:  # 50% warm repeats of the hot query
                    kind = "explain_warm"
                    status, _data = self._post(
                        connection, "/explain", {"query": str(self.hot_query)}
                    )
                self.counts[kind] += 1
                self.statuses[status] = self.statuses.get(status, 0) + 1
                if status == 503:
                    self.shed += 1
                elif status != 200:
                    self.errors += 1
                    if len(self.failures) < 5:
                        self.failures.append(
                            f"{kind} -> {status}: {_data[:120]!r}"
                        )
        except Exception as error:  # connection-level failure
            self.errors += 1
            self.failures.append(f"transport: {type(error).__name__}: {error}")
        finally:
            connection.close()


def _run_load(duration_s, concurrency, workers, phases):
    scenario = LOAD_SCENARIO()
    snapshot = dumps_database(scenario.database)

    # The query population: every derived goal fact of the scenario.
    probe = ExplanationService(llm=None)
    session = probe.session(
        scenario.application, loads_database(snapshot), strategy="planned"
    )
    queries = [
        query for query in session.answers()
        if session.result.chase_result.is_derived(query)
    ]
    probe.shutdown()
    assert queries, "load scenario derived nothing"

    server = ExplanationServer(
        scenario.application, snapshot=snapshot,
        config=ServeConfig(
            workers=workers, queue_limit=max(64, concurrency * 4),
            default_deadline_s=30.0, strategy="planned",
        ),
        llm=None,
    )
    with phases.phase("spin_up"):
        handle = server.run_in_thread()
    try:
        with phases.phase("load"):
            started = time.perf_counter()
            stop_at = started + duration_s
            clients = [
                _Client(
                    server.host, server.port, queries,
                    hot_query=scenario.target,
                    absent=_absent_fact(scenario), stop_at=stop_at,
                )
                for _ in range(concurrency)
            ]
            for client in clients:
                client.start()
            for client in clients:
                client.join(timeout=duration_s + 60)
            elapsed = time.perf_counter() - started
        request_summary = server.metrics.histogram("serve.request").summary()
        snapshot_metrics = server.metrics
        shed = (
            snapshot_metrics.counter_value("serve.shed_queue")
            + snapshot_metrics.counter_value("serve.shed_breaker")
        )
        server_errors = snapshot_metrics.counter_value("serve.errors")
        warm_start = (
            server.pool.snapshot_stats() if server.pool is not None else {}
        )
        flight_document = server.flight.document(
            meta={"benchmark": "service_load", "app": scenario.application.name}
        )
    finally:
        handle.stop()

    requests = sum(sum(c.counts.values()) for c in clients)
    statuses: dict[str, int] = {}
    counts = {key: 0 for key in clients[0].counts}
    failures: list[str] = []
    for client in clients:
        for status, count in client.statuses.items():
            statuses[str(status)] = statuses.get(str(status), 0) + count
        for kind, count in client.counts.items():
            counts[kind] += count
        failures.extend(client.failures)
    client_errors = sum(client.errors for client in clients)
    load = {
        "duration_s": round(elapsed, 3),
        "concurrency": concurrency,
        "workers": workers,
        "distinct_queries": len(queries),
        "requests": requests,
        "mix": counts,
        "statuses": statuses,
        "throughput_rps": round(requests / elapsed, 3) if elapsed else 0.0,
        "latency": {
            "count": request_summary["count"],
            "mean_s": request_summary["mean"],
            "max_s": request_summary["max"],
            "p50_s": request_summary["p50"],
            "p95_s": request_summary["p95"],
            "p99_s": request_summary["p99"],
        },
        "shed": shed,
        "shed_rate": round(shed / requests, 5) if requests else 0.0,
        "errors": max(server_errors, client_errors),
        "failures": failures,
    }
    warm = {
        "workers": warm_start.get("workers"),
        "seconds": warm_start.get("warm_start_s"),
        "max_s": warm_start.get("warm_start_max_s"),
    }
    return load, warm, snapshot_metrics, flight_document


def _parity_sweep():
    """Served bytes must equal canonical in-process serialization.

    For each bundled instance the server and a direct session are built
    from the *same* snapshot string with the same configuration (no LLM,
    planned strategy), so any byte difference is a transport bug, not
    nondeterminism.
    """
    scenarios = 0
    queries = 0
    for build in PARITY_SCENARIOS:
        scenario = build()
        snapshot = dumps_database(scenario.database)
        direct_service = ExplanationService(llm=None)
        direct = direct_service.session(
            scenario.application, loads_database(snapshot),
            strategy="planned",
        )
        targets = [
            query for query in direct.answers()
            if query.predicate == scenario.target.predicate
            and direct.result.chase_result.is_derived(query)
        ] or [scenario.target]
        server = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(workers=1, strategy="planned"),
            llm=None,
        )
        handle = server.run_in_thread()
        try:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            for query in targets:
                connection.request(
                    "POST", "/explain",
                    body=json.dumps({"query": str(query)}),
                )
                response = connection.getresponse()
                served = response.read()
                expected = encode_body(
                    explanation_payload(direct.explain(query))
                )
                if response.status != 200 or served != expected:
                    return {
                        "scenarios": scenarios, "queries": queries,
                        "identical": False,
                        "divergence": {
                            "scenario": scenario.description,
                            "query": str(query),
                            "status": response.status,
                        },
                    }
                queries += 1
            # One batch and one why-not body per scenario ride along.
            chosen = [str(query) for query in targets[:3]]
            connection.request(
                "POST", "/explain/batch",
                body=json.dumps({"queries": chosen, "deadline_s": 30.0}),
            )
            response = connection.getresponse()
            served = response.read()
            expected = encode_body(batch_payload(direct.explain_batch(
                [targets[n] for n in range(len(chosen))],
                deadline=Deadline(30.0),
            )))
            if response.status != 200 or served != expected:
                return {
                    "scenarios": scenarios, "queries": queries,
                    "identical": False,
                    "divergence": {
                        "scenario": scenario.description,
                        "kind": "batch", "status": response.status,
                    },
                }
            absent = _absent_fact(scenario)
            connection.request(
                "POST", "/whynot", body=json.dumps({"query": absent})
            )
            response = connection.getresponse()
            served = response.read()
            expected = encode_body(
                whynot_payload(direct.why_not(parse_fact(absent)))
            )
            if response.status != 200 or served != expected:
                return {
                    "scenarios": scenarios, "queries": queries,
                    "identical": False,
                    "divergence": {
                        "scenario": scenario.description,
                        "kind": "whynot", "status": response.status,
                    },
                }
            queries += 2
            connection.close()
        finally:
            handle.stop()
            direct_service.shutdown()
        scenarios += 1
    return {"scenarios": scenarios, "queries": queries, "identical": True}


def run(quick=False):
    duration_s = 2.0 if quick else 8.0
    concurrency = 4 if quick else 8
    workers = 2 if quick else 4
    payload = {"quick": quick}
    phases = Phases()
    load, warm, metrics, flight_document = _run_load(
        duration_s, concurrency, workers, phases
    )
    payload["load"] = load
    payload["warm_start"] = warm
    with phases.phase("parity"):
        payload["parity"] = _parity_sweep()

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_load.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_load ({path}) =====")
    print(json.dumps(payload, indent=2))
    flight_path = RESULTS_DIR / "BENCH_load_flight.json"
    flight_path.write_text(
        json.dumps(flight_document, indent=2) + "\n", encoding="utf-8"
    )
    print(f"flight document: {flight_path}")
    emit_stats(
        "BENCH_load", metrics,
        meta={"benchmark": "service_load", "quick": quick},
        phases=phases,
    )
    append_history("load", payload, meta={"benchmark": "service_load"})
    return payload


def check(payload):
    """Mixed traffic must complete with zero parity violations."""
    load = payload["load"]
    assert load["requests"] > 0, "load generator issued no requests"
    assert load["errors"] == 0, f"server errors under load: {load['failures']}"
    assert load["throughput_rps"] > 0
    assert load["latency"]["count"] >= load["requests"] - load["shed"]
    assert all(count > 0 for count in load["mix"].values()), (
        f"a mix class never ran: {load['mix']}"
    )
    warm = payload["warm_start"]
    assert warm["workers"] == load["workers"]
    assert warm["max_s"] is not None and warm["max_s"] >= 0
    parity = payload["parity"]
    assert parity["identical"], f"HTTP parity diverged: {parity}"
    assert parity["queries"] > 0
    assert parity["scenarios"] == len(PARITY_SCENARIOS)


def test_service_load(benchmark):
    from _harness import once

    payload = once(benchmark, run, quick=True)
    check(payload)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter duration / lower concurrency (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
