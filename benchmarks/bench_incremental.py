"""Incremental maintenance: delta add/retract vs full re-chase.

The live-update story (DESIGN.md §13): a shareholding edge changes and
the session absorbs it through :meth:`ChaseEngine.update` — semi-naive
delta insertion plus DRed-style delete–rederive — while the
:class:`~repro.engine.provenance_index.ProvenanceIndex` is rebound in
place.  This benchmark measures that path against the status quo it
replaces (a fresh planned chase plus a from-scratch index build) on the
largest bundled workload, and sweeps randomized add/retract schedules
across the bundled applications asserting byte-identical results.

Emits ``BENCH_incremental.json`` with single-edge add/retract timings,
their speedups over full re-chase, and the parity verdict.  Runs
standalone (``python benchmarks/bench_incremental.py [--quick]``) for CI
— where the ``incremental`` gate suite asserts both speedups stay ≥ 5x
and parity holds — or under pytest with the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro import obs
from repro.apps import (
    company_control,
    generators,
    golden_powers,
    integrated_ownership,
)
from repro.engine.chase import ChaseEngine
from repro.engine.database import Database
from repro.engine.incremental import extensional_facts
from repro.engine.reasoning import reason

from _harness import RESULTS_DIR, append_history, emit_stats, once

#: The largest bundled workload (same instance the engine-scaling bench
#: calls ``ownership_network``): 30 entities, 90 ownership edges.
LARGEST = {"app": "company_control", "entities": 30, "edges": 90, "seed": 11}


def _largest_workload():
    application = company_control.build()
    database = generators.random_ownership_database(
        entities=LARGEST["entities"], edges=LARGEST["edges"],
        seed=LARGEST["seed"],
    )
    return application, database


def _measure_single_edge(repeats: int) -> dict:
    """Best-of-``repeats`` single-edge add and retract on the largest
    workload, incremental (update + index rebind) vs full (fresh chase +
    fresh index build).

    Each trial adds one new ownership edge then retracts it again, so
    every repetition starts from the same materialized base state; the
    incremental side times :meth:`ChaseEngine.update` *plus*
    :meth:`ReasoningResult.apply_update` (the provenance index is part
    of what must stay fresh), and the full side times the chase plus the
    index build it would replace.
    """
    application, database = _largest_workload()
    engine = ChaseEngine(strategy="planned")
    result = reason(application.program, database, strategy="planned")
    result.index  # materialize: updates maintain it in place
    edge = company_control.own("Invest0", "Gruppo1", 0.55)

    def timed(action) -> float:
        started = time.perf_counter()
        action()
        return time.perf_counter() - started

    samples: dict[str, list[float]] = {
        "add_incremental": [], "add_full": [],
        "retract_incremental": [], "retract_full": [],
    }
    modes: dict[str, int] = {}
    for _ in range(repeats):
        def apply_add() -> None:
            outcome = engine.update(
                application.program, result.chase_result, adds=[edge]
            )
            modes[outcome.mode] = modes.get(outcome.mode, 0) + 1
            result.apply_update(outcome.result)

        samples["add_incremental"].append(timed(apply_add))
        post_add = extensional_facts(result.chase_result)

        def full_add() -> None:
            fresh = reason(application.program, post_add, strategy="planned")
            fresh.index

        samples["add_full"].append(timed(full_add))

        def apply_retract() -> None:
            outcome = engine.update(
                application.program, result.chase_result, retracts=[edge]
            )
            modes[outcome.mode] = modes.get(outcome.mode, 0) + 1
            result.apply_update(outcome.result)

        samples["retract_incremental"].append(timed(apply_retract))
        post_retract = extensional_facts(result.chase_result)

        def full_retract() -> None:
            fresh = reason(
                application.program, post_retract, strategy="planned"
            )
            fresh.index

        samples["retract_full"].append(timed(full_retract))

    def entry(kind: str) -> dict:
        incremental_s = min(samples[f"{kind}_incremental"])
        full_s = min(samples[f"{kind}_full"])
        return {
            "incremental_s": round(incremental_s, 6),
            "full_s": round(full_s, 6),
            "speedup": (
                round(full_s / incremental_s, 2) if incremental_s else None
            ),
        }

    return {
        "workload": dict(LARGEST),
        "derivations": len(result.chase_result.records),
        "repeats": repeats,
        "modes": modes,
        "add": entry("add"),
        "retract": entry("retract"),
    }


def _parity_workloads(quick: bool):
    """(name, application, edb) triples for the randomized parity sweep
    — every bundled application family, including negation."""
    workloads = []
    workloads.append((
        "company_control",
        company_control.build(),
        generators.random_ownership_database(
            entities=24, edges=70, seed=11
        ).facts(),
    ))
    workloads.append((
        "integrated_ownership",
        integrated_ownership.build(),
        generators.random_ownership_database(
            entities=10, edges=26, seed=7
        ).facts(),
    ))
    scenario = generators.close_links_common_control(seed=3)
    workloads.append((
        "close_links", scenario.application, scenario.database.facts()
    ))
    gp_db = generators.random_ownership_database(entities=14, edges=40, seed=13)
    names = [
        f.terms[0].value for f in gp_db.facts() if f.predicate == "Company"
    ]
    gp_facts = list(gp_db.facts())
    gp_facts += [golden_powers.foreign(name) for name in names[::3]]
    gp_facts += [golden_powers.strategic(name) for name in names[1::3]]
    gp_facts += [golden_powers.exempt(name) for name in names[::5]]
    workloads.append((
        "golden_powers", golden_powers.build(), tuple(gp_facts)
    ))
    if quick:
        workloads = workloads[:2] + workloads[-1:]
    return workloads


def _parity_sweep(quick: bool) -> dict:
    """Randomized add/retract schedules: incremental must equal a fresh
    chase on the post-delta EDB — same fact tuple (order included), same
    records, same supersessions, same violations.  The reference runs
    the planned strategy (naive/planned record parity is a tier-1
    invariant asserted elsewhere; the test battery in
    ``tests/test_incremental.py`` also checks against naive)."""
    steps = 6 if quick else 10
    seeds = (0, 1) if quick else (0, 1, 2)
    engine = ChaseEngine(strategy="planned")
    reference = ChaseEngine(strategy="planned")
    schedules = 0
    mismatches: list[str] = []
    for name, application, edb in _parity_workloads(quick):
        program = application.program
        for seed in seeds:
            schedules += 1
            rng = random.Random(seed)
            current = engine.run(program, Database(edb))
            removed: list = []
            for step in range(steps):
                live = list(extensional_facts(current))
                adds, retracts = [], []
                roll = rng.random()
                if roll < 0.45 and live:
                    retracts = rng.sample(
                        live, k=min(len(live), rng.randint(1, 3))
                    )
                elif roll < 0.8 and removed:
                    adds = rng.sample(
                        removed, k=min(len(removed), rng.randint(1, 3))
                    )
                else:
                    if live:
                        retracts = rng.sample(live, k=1)
                    if removed:
                        adds = rng.sample(removed, k=1)
                outcome = engine.update(program, current, adds, retracts)
                current = outcome.result
                removed = [
                    fact for fact in removed + retracts
                    if fact not in set(adds)
                ]
                fresh = reference.run(
                    program, Database(extensional_facts(current))
                )
                identical = (
                    tuple(current.database.facts())
                    == tuple(fresh.database.facts())
                    and current.records == fresh.records
                    and current.superseded == fresh.superseded
                    and current.rounds == fresh.rounds
                )
                if not identical:
                    mismatches.append(f"{name}/seed{seed}/step{step}")
    return {
        "identical": not mismatches,
        "schedules": schedules,
        "steps_per_schedule": steps,
        "mismatches": mismatches,
    }


def run(quick: bool = False) -> dict:
    """Measure the update path and sweep parity; emit BENCH_incremental.json."""
    repeats = 3 if quick else 5
    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    profiler = obs.KernelProfiler(enabled=True)
    with obs.observed(tracer=tracer, metrics=metrics, profile=profiler):
        update = _measure_single_edge(repeats=repeats)
        parity = _parity_sweep(quick=quick)
    payload = {
        "quick": quick,
        "update": update,
        "parity": parity,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_incremental.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_incremental ({path}) =====")
    print(json.dumps(payload, indent=2))
    emit_stats(
        "BENCH_incremental", metrics, tracer=tracer, profile=profiler,
        meta={"benchmark": "incremental", "quick": quick},
    )
    append_history("incremental", payload, meta={"benchmark": "incremental"})
    return payload


def check(payload: dict) -> None:
    """The regression gates (mirrored by the ``incremental`` suite in
    ``benchmarks/gates.json``):

    * single-edge add ≥ 5x faster than full re-chase + index build;
    * single-edge retract ≥ 5x faster than the same baseline;
    * the randomized parity sweep found zero divergences.
    """
    for kind in ("add", "retract"):
        speedup = payload["update"][kind]["speedup"]
        assert speedup is not None and speedup >= 5.0, (
            f"incremental {kind} regressed: {speedup:.2f}x vs full "
            f"re-chase (need ≥ 5x)"
        )
    parity = payload["parity"]
    assert parity["identical"], (
        f"incremental/full divergence on {parity['mismatches']}"
    )
    full_runs = payload["update"]["modes"].get("full", 0)
    assert full_runs == 0, (
        f"single-edge updates fell back to full re-chase {full_runs} times"
    )


def test_incremental_benchmark_payload(benchmark):
    payload = once(benchmark, run, quick=True)
    check(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repeats and parity schedules (CI mode)",
    )
    arguments = parser.parse_args()
    check(run(quick=arguments.quick))


if __name__ == "__main__":
    main()
