"""Figure 8 and Examples 4.7/4.8: chase graph and template mapping.

Replays the paper's worked mapping: the chase over the Figure 8 EDB, the
chase path π = {α, β, γ, β, γ}, its decomposition into the three-rule
simple path plus the dashed cycle, and the final Example 4.8 text.
"""

from __future__ import annotations

from repro.apps import figures
from repro.core import Explainer, completeness_ratio
from repro.datalog.atoms import fact
from repro.render import chase_graph_dot

from _harness import emit, once


def test_figure8_chase_graph(benchmark):
    scenario = figures.figure8_instance()
    result = once(benchmark, scenario.run)
    emit("fig08_chase_graph", chase_graph_dot(result.graph))
    assert result.proof_size(fact("Default", "C")) == 5
    spine = result.spine(fact("Default", "C"))
    assert spine.rule_sequence == ("alpha", "beta", "gamma", "beta", "gamma")


def test_example_4_7_mapping_and_4_8_text(benchmark):
    scenario = figures.figure8_instance()
    result = scenario.run()
    explainer = Explainer(result, compiled=scenario.application.compile())

    explanation = once(
        benchmark, explainer.explain, fact("Default", "C"),
    )
    lines = [
        f"pi = {result.spine(fact('Default', 'C')).rule_sequence}",
        "segments: " + ", ".join(str(s) for s in explanation.segments),
        "",
        "Explanation (Example 4.8):",
        explanation.text,
    ]
    emit("ex4_7_4_8_mapping", "\n".join(lines))

    # The paper's composition: the three-rule simple path (single
    # contributor) followed by the dashed cycle (multi contributor).
    first, second = explanation.segments
    assert frozenset(first.path.labels) == frozenset({"alpha", "beta", "gamma"})
    assert first.path.multi_rules == frozenset()
    assert frozenset(second.path.labels) == frozenset({"beta", "gamma"})
    assert second.path.multi_rules == frozenset({"beta"})
    # Example 4.8's narrative content.
    assert "sum of 2 and 9" in explanation.text
    constants = explainer.proof_constants(fact("Default", "C"))
    assert completeness_ratio(explanation.text, constants) == 1.0


def test_section5_representative_scenario(benchmark):
    """Figures 12/13 and the Section 5 Default(F) narrative, composed from
    {Π, Γ, Γ} with a joint dual-channel final cycle."""
    scenario = figures.figure12_stress_instance()
    result = scenario.run()
    explainer = Explainer(result, compiled=scenario.application.compile())

    explanation = once(benchmark, explainer.explain, scenario.target)
    emit(
        "fig12_13_representative_scenario",
        "derived: " + ", ".join(str(f) for f in result.answers())
        + "\n\nExplanation of Default(F):\n" + explanation.text,
    )
    used = [frozenset(s.path.labels) for s in explanation.segments]
    assert used == [
        frozenset({"sigma4", "sigma5", "sigma7"}),
        frozenset({"sigma6", "sigma7"}),
        frozenset({"sigma5", "sigma6", "sigma7"}),
    ]
    constants = explainer.proof_constants(scenario.target)
    assert completeness_ratio(explanation.text, constants) == 1.0
