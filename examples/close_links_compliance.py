"""Close-links screening: a supervisory compliance check.

The third application of the paper's expert study.  Two counterparties
are *closely linked* (CRR Art. 4(1)(38)) through participation (≥ 20%),
control, or a common controller — relationships a supervisor must detect
before, e.g., accepting collateral.  This example screens a synthetic
portfolio and produces an explanation for every detected link.

Run with::

    python examples/close_links_compliance.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import close_links
from repro.apps.close_links import close_link, company, own
from repro.engine import Database


def main() -> None:
    application = close_links.build()
    database = Database([
        # Common controller: the fund fully controls both banks.
        own("UmbrellaFund", "NorthBank", 0.72),
        own("UmbrellaFund", "SouthBank", 0.66),
        # Participation just above the 20% threshold.
        own("NorthBank", "LeasingArm", 0.21),
        # Control chain: SouthBank -> Broker -> DealerDesk.
        own("SouthBank", "Broker", 0.81),
        own("Broker", "DealerDesk", 0.64),
        # Below threshold: not a close link.
        own("Outsider", "NorthBank", 0.12),
        company("UmbrellaFund"),
    ])

    result = application.reason(database)
    links = [
        fact for fact in result.answers()
        if str(fact.terms[0]) < str(fact.terms[1])  # one direction per pair
    ]
    print(f"Close links detected: {len(links)}")
    for fact in links:
        print(f"  {fact}")
    print()

    explainer = Explainer(
        result, application.glossary, llm=SimulatedLLM(seed=8, faithful=True)
    )
    for query in (
        close_link("NorthBank", "SouthBank"),     # common controller
        close_link("NorthBank", "LeasingArm"),    # participation
        close_link("SouthBank", "DealerDesk"),    # control chain
    ):
        explanation = explainer.explain(query)
        print(f"Q_e = {{{query}}}  (paths: {', '.join(explanation.paths_used())})")
        print(f"  {explanation.text}")
        print()

    negative = close_link("Outsider", "NorthBank")
    print(f"{negative}: derived -> {negative in result.answers()}")


if __name__ == "__main__":
    main()
