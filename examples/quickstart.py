"""Quickstart: explain a derived fact in four steps.

Replays the paper's running example (Example 4.3 / Figure 8): a financial
shock hits bank A, the default cascades to B and C, and we ask the system
*why C is in default* — the explanation query Q_e = {Default(C)} of
Example 4.8.

Run with::

    python examples/quickstart.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import figures


def main() -> None:
    # 1. A knowledge-graph application + extensional data (Figure 8's EDB).
    scenario = figures.figure8_instance()
    print(scenario.application.program.describe())
    print()
    print(scenario.database.describe())
    print()

    # 2. Reason: chase the rules to fixpoint, with full provenance.
    result = scenario.run()
    print("Derived knowledge:")
    for fact in result.derived():
        print(f"  {fact}")
    print()

    # 3. Build the explainer.  Templates are generated once per
    #    application; the (simulated) LLM enhances them under the token
    #    guard — instance data never reaches the model.
    explainer = Explainer(
        result,
        scenario.application.glossary,
        llm=SimulatedLLM(seed=0, faithful=True),
    )

    # 4. Ask the explanation query Q_e = {Default(C)}.
    explanation = explainer.explain(scenario.target)
    print(f"Q_e = {{{scenario.target}}}")
    print(f"Reasoning paths used: {', '.join(explanation.paths_used())}")
    print()
    print(explanation.text)
    print()
    print(
        "Every constant of the proof is covered:",
        sorted(explanation.constants(), key=str),
    )


if __name__ == "__main__":
    main()
