"""Integrated ownership: who ultimately owns how much of whom?

Figure 12 of the paper draws both ``Owns`` and ``IntOwns`` edges: besides
direct stakes, the EKG materializes each investor's *integrated* stake —
the sum over all ownership paths of the product of shares along the path.
This example runs the synthesized integrated-ownership application over a
pyramid structure, explains a multi-path stake, and contrasts the why and
why-not views.

Run with::

    python examples/integrated_ownership_analysis.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import integrated_ownership as io_app
from repro.core.whynot import WhyNotExplainer
from repro.datalog import fact


def main() -> None:
    application = io_app.build()
    print(application.program.describe())
    print()

    # A pyramid: the fund reaches the operating company through two
    # routes — a direct minority stake and an indirect one via a holding.
    result = application.reason([
        io_app.own("Fund", "Holding", 0.5),
        io_app.own("Holding", "OperCo", 0.4),
        io_app.own("Fund", "OperCo", 0.1),
        io_app.own("Rival", "OperCo", 0.25),
    ])

    print("Integrated stakes:")
    for derived in result.answers():
        print(f"  {derived}")
    print()

    explainer = Explainer(
        result, application.glossary, llm=SimulatedLLM(seed=9, faithful=True)
    )
    target = io_app.int_own("Fund", "OperCo", 0.3)
    explanation = explainer.explain(target)
    print(f"Q_e = {{{target}}}  (paths: {', '.join(explanation.paths_used())})")
    print(explanation.text)
    print()

    # Drill-down: just the last step.
    print("why(IntOwn):", explainer.why(target))
    print()

    # And the non-answer: why doesn't the rival hold an integrated 0.3?
    why_not = WhyNotExplainer(result, application.glossary)
    answer = why_not.explain_why_not(fact("IntOwn", "Rival", "OperCo", 0.3))
    print("why-not:", answer.text)


if __name__ == "__main__":
    main()
